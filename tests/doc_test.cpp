// Tests for the document model, vocabulary, corpus generator, and
// evaluation-time augmentations.
#include <gtest/gtest.h>

#include <set>

#include "doc/augment.hpp"
#include "doc/document.hpp"
#include "doc/generator.hpp"
#include "doc/vocab.hpp"
#include "text/detect.hpp"
#include "util/rng.hpp"

namespace adaparse::doc {
namespace {

// ----------------------------------------------------------- document ----

TEST(Document, EnumNamesAreDistinct) {
  std::set<std::string> names;
  for (std::size_t d = 0; d < kNumDomains; ++d) {
    names.insert(domain_name(static_cast<Domain>(d)));
  }
  EXPECT_EQ(names.size(), kNumDomains);
  names.clear();
  for (std::size_t p = 0; p < kNumPublishers; ++p) {
    names.insert(publisher_name(static_cast<Publisher>(p)));
  }
  EXPECT_EQ(names.size(), kNumPublishers);
}

TEST(Document, ImageQualityPerfectWhenPristine) {
  ImageLayer img;
  EXPECT_EQ(img.quality(), 1.0);
}

TEST(Document, ImageQualityDegradesMonotonically) {
  ImageLayer img;
  img.born_digital = false;
  const double base = img.quality();
  img.blur_sigma = 1.0;
  const double blurred = img.quality();
  img.rotation_deg = 4.0;
  const double rotated = img.quality();
  EXPECT_LT(base, 1.0);
  EXPECT_LT(blurred, base);
  EXPECT_LT(rotated, blurred);
  EXPECT_GE(rotated, 0.0);
}

TEST(Document, FullTextJoinsPages) {
  Document d;
  d.groundtruth_pages = {"one", "two"};
  EXPECT_EQ(d.full_groundtruth(), "one\ntwo");
  d.text_layer.pages = {"a", "b", "c"};
  EXPECT_EQ(d.full_text_layer(), "a\nb\nc");
}

// -------------------------------------------------------------- vocab ----

TEST(VocabTest, SentencesLookLikeProse) {
  Vocabulary vocab(Domain::kPhysics);
  util::Rng rng(1);
  const auto s = vocab.sentence(rng);
  EXPECT_GE(s.size(), 20U);
  EXPECT_EQ(s.back(), '.');
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s.front())));
}

TEST(VocabTest, LatexSnippetsContainMath) {
  Vocabulary vocab(Domain::kMathematics);
  util::Rng rng(2);
  const auto snippet = vocab.latex_snippet(rng);
  EXPECT_EQ(snippet.front(), '$');
  EXPECT_EQ(snippet.back(), '$');
  EXPECT_NE(snippet.find('\\'), std::string::npos);
}

TEST(VocabTest, EquationHasEnvironment) {
  Vocabulary vocab(Domain::kPhysics);
  util::Rng rng(3);
  const auto eq = vocab.latex_equation(rng);
  EXPECT_NE(eq.find("\\begin{equation}"), std::string::npos);
  EXPECT_NE(eq.find("\\end{equation}"), std::string::npos);
}

TEST(VocabTest, SmilesDetectable) {
  Vocabulary vocab(Domain::kChemistry);
  util::Rng rng(4);
  const auto s = vocab.smiles(rng);
  EXPECT_GE(text::smiles_like_count(s), 0U);  // may fall below len cutoff
  EXPECT_GE(s.size(), 6U);
}

TEST(VocabTest, DomainTermsDiffer) {
  util::Rng rng_a(5), rng_b(5);
  Vocabulary math(Domain::kMathematics);
  Vocabulary bio(Domain::kBiology);
  // Same RNG stream, different domains: term pools differ so long samples
  // should diverge.
  std::string a, b;
  for (int i = 0; i < 50; ++i) {
    a += math.word(rng_a) + " ";
    b += bio.word(rng_b) + " ";
  }
  EXPECT_NE(a, b);
}

TEST(VocabTest, ReferenceFormat) {
  Vocabulary vocab(Domain::kEconomics);
  util::Rng rng(6);
  const auto ref = vocab.reference(rng, 12);
  EXPECT_EQ(ref.find("[12]"), 0U);
  EXPECT_NE(ref.find('('), std::string::npos);
}

// ----------------------------------------------------------- generator ----

TEST(Generator, DeterministicAcrossCalls) {
  const CorpusGenerator gen(born_digital_config(5, 77));
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), 5U);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].full_groundtruth(), b[i].full_groundtruth());
    EXPECT_EQ(a[i].full_text_layer(), b[i].full_text_layer());
  }
}

TEST(Generator, GenerateOneMatchesBatch) {
  const CorpusGenerator gen(born_digital_config(4, 123));
  const auto batch = gen.generate();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto one = gen.generate_one(i);
    EXPECT_EQ(one.id, batch[i].id);
    EXPECT_EQ(one.full_groundtruth(), batch[i].full_groundtruth());
  }
}

TEST(Generator, SeedChangesCorpus) {
  const auto a = CorpusGenerator(born_digital_config(3, 1)).generate();
  const auto b = CorpusGenerator(born_digital_config(3, 2)).generate();
  EXPECT_NE(a[0].full_groundtruth(), b[0].full_groundtruth());
}

TEST(Generator, RespectsPageBounds) {
  GeneratorConfig config = born_digital_config(50, 9);
  config.min_pages = 3;
  config.max_pages = 7;
  for (const auto& d : CorpusGenerator(config).generate()) {
    EXPECT_GE(d.num_pages(), 3U);
    EXPECT_LE(d.num_pages(), 7U);
    EXPECT_EQ(d.meta.num_pages, static_cast<int>(d.num_pages()));
  }
}

TEST(Generator, BornDigitalConfigHasNoScans) {
  const auto docs = CorpusGenerator(born_digital_config(100, 21)).generate();
  for (const auto& d : docs) {
    EXPECT_TRUE(d.image_layer.born_digital);
    EXPECT_TRUE(d.text_layer.present);
    EXPECT_FALSE(d.corrupted);
  }
}

TEST(Generator, MixedCorpusContainsScans) {
  GeneratorConfig config = benchmark_config(300, 33);
  const auto docs = CorpusGenerator(config).generate();
  std::size_t scans = 0, no_layer = 0;
  for (const auto& d : docs) {
    if (!d.image_layer.born_digital) ++scans;
    if (!d.text_layer.present) ++no_layer;
  }
  EXPECT_GT(scans, 20U);   // ~18% of 300
  EXPECT_GT(no_layer, 0U); // some scans lack a text layer
  EXPECT_LT(no_layer, scans + 1);
}

TEST(Generator, CorruptedFractionHonored) {
  GeneratorConfig config = born_digital_config(400, 5);
  config.corrupted_fraction = 0.25;
  const auto docs = CorpusGenerator(config).generate();
  std::size_t corrupted = 0;
  for (const auto& d : docs) corrupted += d.corrupted ? 1 : 0;
  EXPECT_GT(corrupted, 60U);
  EXPECT_LT(corrupted, 140U);
}

TEST(Generator, TextLayerIsDegradedCopyOfGroundtruth) {
  const auto docs = CorpusGenerator(born_digital_config(20, 8)).generate();
  for (const auto& d : docs) {
    ASSERT_EQ(d.text_layer.pages.size(), d.groundtruth_pages.size());
    EXPECT_GT(d.text_layer.fidelity, 0.0);
    EXPECT_LE(d.text_layer.fidelity, 1.0);
    // The layer preserves the bulk of the content.
    EXPECT_GT(d.full_text_layer().size(),
              d.full_groundtruth().size() / 2);
  }
}

TEST(Generator, MathDomainsHaveMathDensity) {
  GeneratorConfig config = born_digital_config(200, 13);
  const auto docs = CorpusGenerator(config).generate();
  double math_sum = 0.0, med_sum = 0.0;
  std::size_t math_n = 0, med_n = 0;
  for (const auto& d : docs) {
    if (d.meta.domain == Domain::kMathematics) {
      math_sum += d.math_density;
      ++math_n;
    }
    if (d.meta.domain == Domain::kMedicine) {
      med_sum += d.math_density;
      ++med_n;
    }
  }
  if (math_n > 0 && med_n > 0) {
    EXPECT_GT(math_sum / static_cast<double>(math_n),
              med_sum / static_cast<double>(med_n));
  }
}

TEST(Generator, SubcategoriesSpanPaperRange) {
  const auto docs = CorpusGenerator(benchmark_config(800, 3)).generate();
  std::set<int> subcats;
  for (const auto& d : docs) {
    EXPECT_GE(d.meta.subcategory, 0);
    EXPECT_LT(d.meta.subcategory, 72);
    subcats.insert(d.meta.subcategory);
  }
  EXPECT_GT(subcats.size(), 40U);  // wide coverage of the ~67 subcategories
}

TEST(Generator, LastPageCarriesReferences) {
  const auto doc = CorpusGenerator(born_digital_config(1, 55)).generate_one(0);
  const auto& last = doc.groundtruth_pages.back();
  EXPECT_NE(last.find("[1]"), std::string::npos);
}

// ------------------------------------------------------------ augment ----

TEST(Augment, ImageAugmentationTouchesRequestedFraction) {
  auto docs = CorpusGenerator(born_digital_config(500, 17)).generate();
  util::Rng rng(2);
  ImageAugmentOptions options;
  options.fraction = 0.15;
  const std::size_t modified = augment_image_layer(docs, options, rng);
  EXPECT_GT(modified, 40U);
  EXPECT_LT(modified, 120U);
  std::size_t degraded = 0;
  for (const auto& d : docs) degraded += d.image_layer.born_digital ? 0 : 1;
  EXPECT_EQ(degraded, modified);
}

TEST(Augment, ImageAugmentationLowersQuality) {
  auto docs = CorpusGenerator(born_digital_config(100, 19)).generate();
  util::Rng rng(3);
  ImageAugmentOptions options;
  options.fraction = 1.0;
  augment_image_layer(docs, options, rng);
  for (const auto& d : docs) {
    EXPECT_LT(d.image_layer.quality(), 1.0);
  }
}

TEST(Augment, TextAugmentationReplacesLayer) {
  auto docs = CorpusGenerator(born_digital_config(60, 23)).generate();
  const auto original = docs[0].full_text_layer();
  util::Rng rng(4);
  TextAugmentOptions options;
  options.fraction = 1.0;
  const std::size_t modified = augment_text_layer(docs, options, rng);
  EXPECT_EQ(modified, docs.size());
  for (const auto& d : docs) {
    EXPECT_TRUE(d.text_layer.present);
    EXPECT_EQ(d.text_layer.pages.size(), d.groundtruth_pages.size());
    EXPECT_LT(d.text_layer.fidelity, 0.9);
  }
  EXPECT_NE(docs[0].full_text_layer(), original);
}

TEST(Augment, ZeroFractionIsNoOp) {
  auto docs = CorpusGenerator(born_digital_config(30, 29)).generate();
  const auto before = docs[5].full_text_layer();
  util::Rng rng(5);
  EXPECT_EQ(augment_image_layer(docs, {.fraction = 0.0}, rng), 0U);
  EXPECT_EQ(augment_text_layer(docs, {.fraction = 0.0}, rng), 0U);
  EXPECT_EQ(docs[5].full_text_layer(), before);
}

}  // namespace
}  // namespace adaparse::doc
