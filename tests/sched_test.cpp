// Tests for the concurrent runtime: thread pool, bounded queue, batcher,
// and the warm model cache — including contention stress tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "sched/batcher.hpp"
#include "sched/queue.hpp"
#include "sched/thread_pool.hpp"
#include "sched/warm_cache.hpp"

namespace adaparse::sched {
namespace {

// --------------------------------------------------------- thread pool ----

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
  // get() returns when the result is set, which precedes the worker's
  // bookkeeping update; wait_idle() synchronizes with it.
  pool.wait_idle();
  EXPECT_EQ(pool.completed(), 1000U);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1U);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TrySubmitRunsLikeSubmit) {
  ThreadPool pool(2);
  auto f = pool.try_submit([] { return 21 * 2; });
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get(), 42);
}

TEST(ThreadPoolTest, TrySubmitAfterShutdownRejectsInsteadOfThrowing) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.try_submit([] {}).has_value());
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, SubmitShutdownRaceNeverCrashesAndAcceptedTasksRun) {
  // Regression for the service-shutdown race: submitters racing shutdown()
  // must observe clean rejection, and every *accepted* task must still run
  // (shutdown drains the queue before joining).
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 2000; ++i) {
        auto f = pool.try_submit([&executed] { ++executed; });
        if (!f.has_value()) break;  // pool is gone: a normal outcome
        ++accepted;
      }
    });
  }
  go = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_FALSE(pool.try_submit([] {}).has_value());
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --concurrent;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GT(peak.load(), 1);
}

// -------------------------------------------------------------- queue ----

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2U);
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, NoLossUnderContention) {
  // 4 producers x 2500 items through a tiny queue into 4 consumers:
  // every item must arrive exactly once.
  BoundedQueue<int> q(8);
  constexpr int kProducers = 4, kPerProducer = 2500, kConsumers = 4;
  std::vector<std::thread> producers, consumers;
  std::mutex sink_mutex;
  std::multiset<int> sink;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        sink.insert(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(sink.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  // Exactly once: no duplicates.
  EXPECT_EQ(std::set<int>(sink.begin(), sink.end()).size(), sink.size());
}

TEST(BoundedQueueTest, BackpressureBlocksProducer) {
  BoundedQueue<int> q(1);
  q.push(0);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(1);  // blocks until a pop frees space
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  q.pop();
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, TryPopReturnsItemOrNullopt) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(7);
  EXPECT_EQ(q.try_pop().value(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(8);
  q.close();
  EXPECT_EQ(q.try_pop().value(), 8);  // close still drains
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, PopForTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(30)).has_value());
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(25));
  EXPECT_FALSE(q.closed());  // timeout, not shutdown
}

TEST(BoundedQueueTest, PopForReturnsEarlyWhenItemArrives) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(5);
  });
  // Far shorter than the 10s bound: the wait must end at the push.
  EXPECT_EQ(q.pop_for(std::chrono::seconds(10)).value(), 5);
  producer.join();
}

TEST(BoundedQueueTest, PopForUnblocksOnCloseWhileWaiting) {
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::seconds(10)).has_value());
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::seconds(5));  // not the full timeout
  EXPECT_TRUE(q.closed());
  closer.join();
}

TEST(BoundedQueueTest, PeakSizeTracksHighWater) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.push(3);
  q.pop();
  q.pop();
  q.push(4);
  EXPECT_EQ(q.peak_size(), 3U);
  EXPECT_EQ(q.capacity(), 8U);
}

// ------------------------------------------------- multi-stage chains ----
// The streaming pipeline connects stages with BoundedQueues; these tests
// exercise the chain properties it relies on: capacity-1 chains make
// progress, and closing the head mid-stream drains cleanly with no
// deadlock and no loss of already-enqueued items.

/// Relays every item from `in` to `out`, then closes `out`. A failed push
/// (downstream closed) also closes `in` so upstream producers unblock —
/// the same bidirectional shutdown cascade the pipeline stages use.
template <typename T>
std::thread relay_stage(BoundedQueue<T>& in, BoundedQueue<T>& out) {
  return std::thread([&in, &out] {
    while (auto v = in.pop()) {
      if (!out.push(std::move(*v))) {
        in.close();
        break;
      }
    }
    out.close();
  });
}

TEST(BoundedQueueTest, CapacityOneChainMakesProgress) {
  BoundedQueue<int> a(1), b(1), c(1);
  auto t1 = relay_stage(a, b);
  auto t2 = relay_stage(b, c);
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = c.pop()) received.push_back(*v);
  });
  constexpr int kItems = 200;
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(a.push(i));
  a.close();
  t1.join();
  t2.join();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);  // FIFO held
}

TEST(BoundedQueueTest, ChainCloseMidStreamDrainsCleanly) {
  BoundedQueue<int> a(2), b(2), c(2);
  auto t1 = relay_stage(a, b);
  auto t2 = relay_stage(b, c);
  std::atomic<int> accepted{0};
  std::thread producer([&] {
    for (int i = 0; i < 100000; ++i) {
      if (!a.push(i)) break;  // close() mid-stream lands here
      ++accepted;
    }
  });
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = c.pop()) received.push_back(*v);
  });
  while (accepted.load() < 50) std::this_thread::yield();
  a.close();  // shut the head down mid-stream
  producer.join();
  t1.join();
  t2.join();
  consumer.join();
  // Every accepted item must come out the far end, in order, exactly once.
  ASSERT_EQ(received.size(), static_cast<std::size_t>(accepted.load()));
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], static_cast<int>(i));
  }
}

TEST(BoundedQueueTest, ChainTailCloseUnblocksUpstream) {
  // Closing the *tail* must not wedge producers blocked mid-chain: the
  // relay sees push() fail and exits, closing its own output.
  BoundedQueue<int> a(1), b(1);
  auto t = relay_stage(a, b);
  std::thread producer([&] {
    for (int i = 0; i < 100000; ++i) {
      if (!a.push(i)) break;
    }
    // Relay stopped consuming; the producer must not deadlock.
    a.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  b.close();  // downstream consumer disappears
  t.join();
  producer.join();
  SUCCEED();  // reaching here means no deadlock
}

// ------------------------------------------------------------- batcher ----

TEST(BatcherTest, FlushesFullBatches) {
  std::vector<std::vector<int>> batches;
  Batcher<int> batcher(3, [&](std::vector<int>&& b) {
    batches.push_back(std::move(b));
  });
  for (int i = 0; i < 7; ++i) batcher.add(i);
  EXPECT_EQ(batches.size(), 2U);
  EXPECT_EQ(batcher.pending(), 1U);
  batcher.flush_now();
  ASSERT_EQ(batches.size(), 3U);
  EXPECT_EQ(batches[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(batches[2], (std::vector<int>{6}));
  EXPECT_EQ(batcher.batches_flushed(), 3U);
}

TEST(BatcherTest, FlushOnEmptyIsNoOp) {
  int flushes = 0;
  Batcher<int> batcher(4, [&](std::vector<int>&&) { ++flushes; });
  batcher.flush_now();
  EXPECT_EQ(flushes, 0);
}

TEST(BatcherTest, ZeroBatchSizeClampedToOne) {
  std::vector<std::vector<int>> batches;
  Batcher<int> batcher(0, [&](std::vector<int>&& b) {
    batches.push_back(std::move(b));
  });
  batcher.add(1);
  EXPECT_EQ(batches.size(), 1U);
  EXPECT_EQ(batcher.batch_size(), 1U);
}

// ---------------------------------------------------------- warm cache ----

TEST(WarmCacheTest, LoadsOncePerKey) {
  WarmModelCache cache(true);
  std::atomic<int> loads{0};
  auto loader = [&loads] {
    ++loads;
    return std::make_shared<int>(1);
  };
  for (int i = 0; i < 100; ++i) {
    cache.get_or_load("nougat", loader, 15.0);
  }
  EXPECT_EQ(loads.load(), 1);
  const auto stats = cache.stats("nougat");
  EXPECT_EQ(stats.loads, 1U);
  EXPECT_EQ(stats.hits, 99U);
  EXPECT_NEAR(stats.load_seconds_paid, 15.0, 1e-12);
}

TEST(WarmCacheTest, ColdModeReloadsEveryTime) {
  WarmModelCache cache(false);
  std::atomic<int> loads{0};
  auto loader = [&loads] {
    ++loads;
    return std::make_shared<int>(1);
  };
  for (int i = 0; i < 10; ++i) {
    cache.get_or_load("nougat", loader, 15.0);
  }
  EXPECT_EQ(loads.load(), 10);
  EXPECT_NEAR(cache.total_load_seconds(), 150.0, 1e-12);
}

TEST(WarmCacheTest, DistinctKeysLoadSeparately) {
  WarmModelCache cache(true);
  cache.get_or_load("a", [] { return std::make_shared<int>(1); }, 1.0);
  cache.get_or_load("b", [] { return std::make_shared<int>(2); }, 2.0);
  EXPECT_NEAR(cache.total_load_seconds(), 3.0, 1e-12);
}

TEST(WarmCacheTest, SameHandleReturned) {
  WarmModelCache cache(true);
  auto h1 = cache.get_or_load("k", [] { return std::make_shared<int>(7); }, 0.1);
  auto h2 = cache.get_or_load("k", [] { return std::make_shared<int>(8); }, 0.1);
  EXPECT_EQ(h1.get(), h2.get());
}

TEST(WarmCacheTest, ThreadSafeSingleLoad) {
  WarmModelCache cache(true);
  std::atomic<int> loads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        cache.get_or_load("model", [&loads] {
          ++loads;
          return std::make_shared<int>(0);
        }, 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);
}

TEST(WarmCacheTest, ClearForcesReload) {
  WarmModelCache cache(true);
  std::atomic<int> loads{0};
  auto loader = [&loads] {
    ++loads;
    return std::make_shared<int>(0);
  };
  cache.get_or_load("k", loader, 1.0);
  cache.clear();
  cache.get_or_load("k", loader, 1.0);
  EXPECT_EQ(loads.load(), 2);
}

TEST(WarmCacheTest, TransientLoadFailuresAreRetriedThenCached) {
  WarmModelCache cache(true);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(4);
  cache.set_retry_policy(policy);
  // First two load attempts fail (a flaky GPU allocation); the third lands.
  cache.set_load_failure_hook(
      [](const std::string&, std::size_t attempt) { return attempt <= 2; });

  std::atomic<int> loads{0};
  auto handle = cache.get_or_load("nougat", [&loads] {
    ++loads;
    return std::make_shared<int>(42);
  }, 1.0);
  EXPECT_EQ(loads.load(), 1);  // loader only runs on the surviving attempt
  ASSERT_NE(handle, nullptr);

  const auto stats = cache.stats("nougat");
  EXPECT_EQ(stats.loads, 3U);
  EXPECT_EQ(stats.failures, 2U);
  EXPECT_EQ(stats.retries, 2U);

  // Healed: the next call is a plain cache hit, no further load attempts.
  cache.get_or_load("nougat", [&loads] {
    ++loads;
    return std::make_shared<int>(0);
  }, 1.0);
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(cache.stats("nougat").hits, 1U);
}

TEST(WarmCacheTest, ExhaustedRetryBudgetThrowsNotHangs) {
  WarmModelCache cache(true);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(2);
  cache.set_retry_policy(policy);
  cache.set_load_failure_hook(
      [](const std::string&, std::size_t) { return true; });  // never heals

  EXPECT_THROW(cache.get_or_load(
                   "doomed", [] { return std::make_shared<int>(0); }, 1.0),
               std::runtime_error);
  const auto stats = cache.stats("doomed");
  EXPECT_EQ(stats.failures, 3U);   // one per attempt
  EXPECT_EQ(stats.retries, 2U);    // the last failure is surfaced, not slept
  EXPECT_EQ(cache.stats("doomed").hits, 0U);
}

TEST(WarmCacheTest, LoaderExceptionsUseTheSameRetryBudget) {
  // Failures thrown by the loader itself (not the injection hook) follow
  // the identical retry discipline.
  WarmModelCache cache(true);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(2);
  cache.set_retry_policy(policy);

  std::atomic<int> calls{0};
  auto handle = cache.get_or_load("flaky", [&calls] {
    if (++calls <= 2) throw std::runtime_error("transient");
    return std::make_shared<int>(7);
  }, 1.0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(handle), 7);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(cache.stats("flaky").retries, 2U);
}

}  // namespace
}  // namespace adaparse::sched
