// Unit and property tests for the text module: tokenization, n-grams,
// malformed-pattern detectors, features, and corruption channels.
#include <gtest/gtest.h>

#include "text/corrupt.hpp"
#include "text/detect.hpp"
#include "text/features.hpp"
#include "text/ngram.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse::text {
namespace {

// ----------------------------------------------------------- tokenize ----

TEST(Tokenize, SplitsWordsAndPunctuation) {
  const auto tokens = tokenize("Hello, world!");
  ASSERT_EQ(tokens.size(), 4U);
  EXPECT_EQ(tokens[0], "Hello");
  EXPECT_EQ(tokens[1], ",");
  EXPECT_EQ(tokens[2], "world");
  EXPECT_EQ(tokens[3], "!");
}

TEST(Tokenize, KeepsHyphensAndApostrophesInWords) {
  const auto tokens = tokenize("state-of-the-art isn't");
  ASSERT_EQ(tokens.size(), 2U);
  EXPECT_EQ(tokens[0], "state-of-the-art");
  EXPECT_EQ(tokens[1], "isn't");
}

TEST(Tokenize, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("  \n\t ").empty());
}

TEST(Tokenize, SplitWhitespacePreservesPunctuation) {
  const auto chunks = split_whitespace("a b,c  d\ne");
  ASSERT_EQ(chunks.size(), 4U);
  EXPECT_EQ(chunks[1], "b,c");
}

TEST(Tokenize, JoinInvertsSplit) {
  const std::string s = "alpha beta gamma";
  EXPECT_EQ(join(split_whitespace(s)), s);
}

TEST(Tokenize, ToLower) {
  EXPECT_EQ(to_lower("AbC12!"), "abc12!");
}

TEST(Tokenize, IsAlphaAndHasDigit) {
  EXPECT_TRUE(is_alpha("abc"));
  EXPECT_FALSE(is_alpha("ab1"));
  EXPECT_FALSE(is_alpha(""));
  EXPECT_TRUE(has_digit("a1"));
  EXPECT_FALSE(has_digit("abc"));
}

// -------------------------------------------------------------- ngram ----

TEST(Ngram, CountsUnigrams) {
  const std::vector<std::string> tokens = {"a", "b", "a"};
  const auto counts = count_ngrams(tokens, 1);
  EXPECT_EQ(counts.size(), 2U);
  EXPECT_EQ(total(counts), 3U);
}

TEST(Ngram, BigramBoundaries) {
  const std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(total(count_ngrams(tokens, 2)), 2U);
  EXPECT_EQ(total(count_ngrams(tokens, 3)), 1U);
  EXPECT_TRUE(count_ngrams(tokens, 4).empty());
  EXPECT_TRUE(count_ngrams(tokens, 0).empty());
}

TEST(Ngram, OverlapIsClipped) {
  const std::vector<std::string> a = {"x", "x", "x"};
  const std::vector<std::string> b = {"x"};
  const auto ca = count_ngrams(a, 1);
  const auto cb = count_ngrams(b, 1);
  EXPECT_EQ(overlap(ca, cb), 1U);   // min(3,1)
  EXPECT_EQ(overlap(cb, ca), 1U);   // symmetric
}

TEST(Ngram, KeyDistinguishesSegmentation) {
  const std::vector<std::string> ab_c = {"ab", "c"};
  const std::vector<std::string> a_bc = {"a", "bc"};
  EXPECT_NE(ngram_key(ab_c, 0, 2), ngram_key(a_bc, 0, 2));
}

// ------------------------------------------------------------- detect ----

TEST(Detect, LatexArtifacts) {
  EXPECT_GT(latex_artifact_count("\\frac{a}{b} and $x^{2}$"), 2U);
  EXPECT_EQ(latex_artifact_count("plain prose text here"), 0U);
}

TEST(Detect, UnbalancedBracesCount) {
  EXPECT_GT(latex_artifact_count("{{{"), 0U);
}

TEST(Detect, SmilesLikeTokens) {
  EXPECT_GE(smiles_like_count("the compound CC(=O)Oc1ccccc1C(=O)O was"), 1U);
  EXPECT_EQ(smiles_like_count("ordinary text without chemistry"), 0U);
}

TEST(Detect, ScrambledTokens) {
  // Heavy consonant runs look scrambled.
  const double high = scrambled_token_ratio("xkcdqrtz bvnmkl wqrtsk plain");
  const double low = scrambled_token_ratio("these are normal english words");
  EXPECT_GT(high, low);
  EXPECT_EQ(scrambled_token_ratio(""), 0.0);
}

TEST(Detect, WhitespaceRatio) {
  EXPECT_NEAR(whitespace_ratio("a b"), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(whitespace_ratio(""), 0.0);
}

TEST(Detect, AlphaDigitNonAsciiRatios) {
  EXPECT_NEAR(alpha_ratio("ab12"), 0.5, 1e-12);
  EXPECT_NEAR(digit_ratio("ab12"), 0.5, 1e-12);
  EXPECT_GT(non_ascii_ratio("a\xEF\xBF\xBD"), 0.0);
  EXPECT_EQ(non_ascii_ratio("abc\n"), 0.0);
}

TEST(Detect, LongestCharRun) {
  EXPECT_EQ(longest_char_run("aabbbbc"), 4U);
  EXPECT_EQ(longest_char_run(""), 0U);
  EXPECT_EQ(longest_char_run("abc"), 1U);
}

TEST(Detect, EntropyOrdering) {
  const double degenerate = char_entropy("aaaaaaaaaaaaaaaa");
  const double prose = char_entropy(
      "The gravitational force between two masses is proportional.");
  EXPECT_LT(degenerate, 0.5);
  EXPECT_GT(prose, 3.0);
}

// ----------------------------------------------------------- features ----

TEST(Features, CleanProseLooksClean) {
  const auto f = compute_features(
      "We present results of the analysis between both models. "
      "The distribution of observed values is shown in the table.");
  EXPECT_GT(f.alpha_ratio, 0.6);
  EXPECT_LT(f.scrambled_ratio, 0.1);
  EXPECT_EQ(f.latex_density, 0.0);
  EXPECT_GT(f.token_count, 10.0);
}

TEST(Features, ArrayOrderMatchesFields) {
  const auto f = compute_features("abc def");
  const auto a = f.to_array();
  EXPECT_EQ(a[0], f.char_count);
  EXPECT_EQ(a[1], f.token_count);
  EXPECT_EQ(a[10], f.entropy);
  EXPECT_EQ(a[11], f.longest_run);
}

TEST(Features, EmptyText) {
  const auto f = compute_features("");
  EXPECT_EQ(f.char_count, 0.0);
  EXPECT_EQ(f.token_count, 0.0);
  EXPECT_EQ(f.avg_token_len, 0.0);
}

// ------------------------------------------------------------ corrupt ----

class CorruptChannelTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Rates, CorruptChannelTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2, 0.5));

const char* kSample =
    "The proposed method improves accuracy across different conditions "
    "while keeping computational cost low for large scale analysis.";

TEST_P(CorruptChannelTest, ZeroRateIsIdentityAndHigherRatesDamageMore) {
  const double rate = GetParam();
  util::Rng rng(1234);
  const auto ws = inject_whitespace(kSample, rate, rng);
  if (rate == 0.0) {
    EXPECT_EQ(ws, kSample);
  } else {
    EXPECT_GE(ws.size(), std::string(kSample).size());
  }
}

TEST_P(CorruptChannelTest, SubstituteCharsPreservesLength) {
  util::Rng rng(99);
  const auto out = substitute_chars(kSample, GetParam(), rng);
  EXPECT_EQ(out.size(), std::string(kSample).size());
}

TEST_P(CorruptChannelTest, DropWordsNeverGrows) {
  util::Rng rng(7);
  const auto out = drop_words(kSample, GetParam(), rng);
  EXPECT_LE(out.size(), std::string(kSample).size());
}

TEST(Corrupt, ScrambleKeepsFirstAndLastLetters) {
  util::Rng rng(5);
  const auto out = scramble_words("wonderful", 1.0, rng);
  ASSERT_EQ(out.size(), 9U);
  EXPECT_EQ(out.front(), 'w');
  EXPECT_EQ(out.back(), 'l');
  // Same multiset of characters.
  auto sorted_in = std::string("wonderful");
  auto sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

TEST(Corrupt, SubstituteWordsUsesConfusionTable) {
  util::Rng rng(3);
  const auto out = substitute_words("hyperthyroidism", 1.0, rng);
  EXPECT_EQ(out, "hypothyroidism");
}

TEST(Corrupt, MangleLatexCleanConversionStripsCommands) {
  util::Rng rng(11);
  const auto out = mangle_latex("\\alpha + \\beta", 0.0, rng);
  EXPECT_EQ(out.find('\\'), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Corrupt, MangleLatexHighRateLeavesResidue) {
  util::Rng rng(13);
  std::size_t residues = 0;
  for (int i = 0; i < 50; ++i) {
    const auto out = mangle_latex("$\\frac{a}{b}$ \\sum_{i}", 1.0, rng);
    if (out.find('\\') != std::string::npos ||
        out.find('{') != std::string::npos) {
      ++residues;
    }
  }
  EXPECT_GT(residues, 25U);
}

TEST(Corrupt, CorruptSmilesOnlyTouchesSmiles) {
  util::Rng rng(17);
  const std::string input = "prose stays CC(=O)Oc1ccccc1C(=O)O here";
  const auto out = corrupt_smiles(input, 1.0, rng);
  EXPECT_NE(out.find("prose stays"), std::string::npos);
  EXPECT_NE(out.find("here"), std::string::npos);
  EXPECT_NE(out, input);  // the SMILES token itself was mutated
}

TEST(Corrupt, MojibakeInsertsArtifacts) {
  util::Rng rng(19);
  const auto out = mojibake(kSample, 0.1, rng);
  EXPECT_GT(non_ascii_ratio(out), 0.0);
}

TEST(Corrupt, LayoutArtifactsRaiseWhitespaceStructure) {
  util::Rng rng(23);
  const auto out = layout_artifacts(kSample, 1.0, rng);
  // Reflow converts spaces to newlines; token stream survives.
  const auto in_tokens = tokenize(kSample);
  const auto out_tokens = tokenize(out);
  EXPECT_GE(out_tokens.size(), in_tokens.size());  // + headers/pagenums
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(Corrupt, DeterministicGivenSameRngSeed) {
  util::Rng a(77), b(77);
  EXPECT_EQ(substitute_chars(kSample, 0.2, a),
            substitute_chars(kSample, 0.2, b));
}

}  // namespace
}  // namespace adaparse::text
