// Tests for the simulated preference study: annotator utility model,
// study statistics, and the tournament win-rate machinery.
#include <gtest/gtest.h>

#include "doc/generator.hpp"
#include "parsers/registry.hpp"
#include "pref/annotator.hpp"
#include "pref/study.hpp"
#include "util/rng.hpp"

namespace adaparse::pref {
namespace {

TEST(Style, CleanTextScoresClean) {
  const std::string reference =
      "The analysis shows significant results across samples.";
  const auto s = compute_style(reference, reference);
  EXPECT_LT(s.latex_residue, 1.0);
  EXPECT_LT(s.whitespace_mess, 0.2);
  EXPECT_EQ(s.truncation, 0.0);
}

TEST(Style, EmptyCandidateIsFullTruncation) {
  const auto s = compute_style("", "reference text");
  EXPECT_EQ(s.truncation, 1.0);
}

TEST(Style, LatexResidueDetected) {
  const auto s = compute_style("text \\frac{a}{b} ${residue}$ here and more",
                               "text here and more");
  EXPECT_GT(s.latex_residue, 1.0);
}

TEST(Annotator, PrefersHigherBleuOnAverage) {
  const auto pool = make_annotator_pool(23, 7);
  util::Rng rng(3);
  StyleScore neutral;
  std::size_t good_wins = 0;
  const std::size_t trials = 2000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto& annotator = pool[i % pool.size()];
    const double ua = annotator.utility(0.7, neutral, rng);
    const double ub = annotator.utility(0.4, neutral, rng);
    if (ua > ub) ++good_wins;
  }
  EXPECT_GT(static_cast<double>(good_wins) / trials, 0.8);
}

TEST(Annotator, StylePenaltiesMatter) {
  const auto pool = make_annotator_pool(23, 7);
  util::Rng rng(5);
  StyleScore messy;
  messy.scrambled = 0.5;
  messy.whitespace_mess = 2.0;
  messy.truncation = 0.4;
  StyleScore clean;
  std::size_t clean_wins = 0;
  const std::size_t trials = 2000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto& annotator = pool[i % pool.size()];
    // Same BLEU; style alone decides.
    const double um = annotator.utility(0.5, messy, rng);
    const double uc = annotator.utility(0.5, clean, rng);
    if (uc > um) ++clean_wins;
  }
  EXPECT_GT(static_cast<double>(clean_wins) / trials, 0.85);
}

TEST(Annotator, PoolIsHeterogeneousButDeterministic) {
  const auto a = make_annotator_pool(5, 11);
  const auto b = make_annotator_pool(5, 11);
  util::Rng r1(1), r2(1);
  StyleScore s;
  EXPECT_EQ(a[0].utility(0.5, s, r1), b[0].utility(0.5, s, r2));
  EXPECT_NE(a[0].indifference(), a[3].indifference());
}

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(doc::benchmark_config(120, 91)).generate());
    StudyConfig config;
    config.num_pages = 150;
    config.train_judgments = 712;
    config.val_judgments = 234;
    config.test_judgments = 1848;
    study_ = new StudyResult(
        run_study(*docs_, parsers::all_parsers(), config));
  }
  static void TearDownTestSuite() {
    delete docs_;
    delete study_;
    docs_ = nullptr;
    study_ = nullptr;
  }
  static std::vector<doc::Document>* docs_;
  static StudyResult* study_;
};

std::vector<doc::Document>* StudyTest::docs_ = nullptr;
StudyResult* StudyTest::study_ = nullptr;

TEST_F(StudyTest, JudgmentCountsMatchConfig) {
  EXPECT_EQ(study_->judgments.size(), 712U + 234U + 1848U);
  std::size_t train = 0, val = 0, test = 0;
  for (const auto& j : study_->judgments) {
    switch (j.split) {
      case Split::kTrain: ++train; break;
      case Split::kVal: ++val; break;
      case Split::kTest: ++test; break;
    }
  }
  EXPECT_EQ(train, 712U);
  EXPECT_EQ(val, 234U);
  EXPECT_EQ(test, 1848U);
}

TEST_F(StudyTest, DecisionRateNearPaper) {
  // Paper: users expressed a preference 91.3% of the time.
  EXPECT_GT(study_->decision_rate, 0.80);
  EXPECT_LT(study_->decision_rate, 0.99);
}

TEST_F(StudyTest, ConsensusIsHigh) {
  // Paper: 82.2% agreement on repeated triplets.
  EXPECT_GT(study_->consensus_rate, 0.65);
  EXPECT_LE(study_->consensus_rate, 1.0);
}

TEST_F(StudyTest, BleuCorrelatesButDoesNotExplainEverything) {
  // Paper §7.1: rho ~ 0.47, strongly significant, far from 1.
  const auto& corr = study_->bleu_win_correlation;
  EXPECT_GT(corr.rho, 0.25);
  EXPECT_LT(corr.rho, 0.85);
  EXPECT_LT(corr.p_value, 1e-6);
}

TEST_F(StudyTest, PypdfHasLowWinRate) {
  // Paper: pypdf wins only ~2.1% of its comparisons.
  ASSERT_TRUE(study_->win_rate.count(parsers::ParserKind::kPypdf));
  EXPECT_LT(study_->win_rate.at(parsers::ParserKind::kPypdf), 0.25);
  // And it is the worst (or near-worst) of the cohort.
  double min_rate = 1.0;
  for (const auto& [kind, rate] : study_->win_rate) min_rate = std::min(min_rate, rate);
  EXPECT_LE(study_->win_rate.at(parsers::ParserKind::kPypdf),
            min_rate + 0.05);
}

TEST_F(StudyTest, ValidParserPairsOnly) {
  for (const auto& j : study_->judgments) {
    EXPECT_NE(j.parser_a, j.parser_b);
    EXPECT_LT(j.annotator, 23U);
    EXPECT_GE(j.choice, 0);
    EXPECT_LE(j.choice, 2);
  }
}

TEST(Tournament, CleanCandidateBeatsDamagedOne) {
  // Two systems over 30 docs: identity parse vs truncated/mangled parse.
  std::vector<std::string> references;
  std::vector<std::vector<std::string>> outputs(2);
  util::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    std::string ref =
        "The proposed framework achieves robust accuracy across all "
        "experimental conditions while remaining computationally cheap " +
        std::to_string(i);
    outputs[0].push_back(ref);
    outputs[1].push_back(ref.substr(0, ref.size() / 3));
    references.push_back(std::move(ref));
  }
  std::vector<std::vector<double>> bleus = {
      std::vector<double>(30, 1.0), std::vector<double>(30, 0.25)};
  const auto rates = tournament_win_rates(outputs, references, bleus, 5);
  ASSERT_EQ(rates.size(), 2U);
  EXPECT_GT(rates[0], rates[1] + 0.3);
}

TEST(Tournament, DegenerateInputs) {
  EXPECT_TRUE(tournament_win_rates({}, {}, {}).empty());
  const auto one = tournament_win_rates({{"a"}}, {"a"}, {{1.0}});
  ASSERT_EQ(one.size(), 1U);
  EXPECT_EQ(one[0], 0.0);
}

TEST(Study, EmptyDocsYieldEmptyResult) {
  const auto result = run_study({}, parsers::all_parsers(), {});
  EXPECT_TRUE(result.judgments.empty());
}

}  // namespace
}  // namespace adaparse::pref
