// Tests for the serve::control subsystem: the SLO-guardian degradation
// ladder (escalation/restoration streaks, hysteresis dead band, cooldown),
// the CRC-protected decision journal (round-trip, torn tail, mid-journal
// damage), bit-identical replay, a randomized sensor-noise sweep asserting
// the anti-oscillation invariants, and the ParseService integration
// (journaled live ticks replay identically; disabled controller exports
// nothing).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/doc_source.hpp"
#include "doc/generator.hpp"
#include "serve/control/controller.hpp"
#include "serve/control/journal.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace adaparse::serve::control {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;

/// Small, fast ladder for unit tests: breach after 2 ticks, restore after
/// 3 clear ticks + 5-tick cooldown, SLO 100 ms with a 70 ms clear line.
ControlConfig test_config() {
  ControlConfig config;
  config.slo_p95_micros = 100000;
  config.recover_fraction = 0.7;  // clear line: 70000 us
  config.queue_high = 10;
  config.queue_low = 4;
  config.breach_ticks_to_escalate = 2;
  config.clear_ticks_to_restore = 3;
  config.cooldown_ticks = 5;
  return config;
}

SensorReading reading(std::uint64_t tick, std::uint64_t p95_micros,
                      std::size_t window, std::size_t queued) {
  SensorReading r;
  r.tick = tick;
  r.p95_micros = p95_micros;
  r.window_count = window;
  r.queued_jobs = queued;
  return r;
}

fs::path temp_file(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

// ------------------------------------------------------------ ladder ----

TEST(SloControllerTest, EscalatesOnlyAfterBreachStreak) {
  SloController c(test_config());
  auto d = c.step(reading(1, 150000, 5, 0));  // breach #1: hold
  EXPECT_EQ(d.action, Action::kHold);
  EXPECT_EQ(d.reason, "hold:breach");
  EXPECT_EQ(c.level(), Level::kNormal);

  d = c.step(reading(2, 150000, 5, 0));  // breach #2: escalate
  EXPECT_EQ(d.action, Action::kEscalate);
  EXPECT_EQ(d.reason, "p95-breach");
  EXPECT_EQ(d.level, Level::kBudgetShrink);
  EXPECT_EQ(c.transitions_up(), 1U);
}

TEST(SloControllerTest, QueuePressureBreachesWithoutLatencyEvidence) {
  // A fully stalled service completes nothing: the latency window is empty
  // and p95 alone would read healthy. Queue depth must carry the breach.
  SloController c(test_config());
  c.step(reading(1, 0, 0, 11));
  const auto d = c.step(reading(2, 0, 0, 11));
  EXPECT_EQ(d.action, Action::kEscalate);
  EXPECT_EQ(d.reason, "queue-breach");
}

TEST(SloControllerTest, DeadBandReadingResetsBothStreaks) {
  SloController c(test_config());
  c.step(reading(1, 150000, 5, 0));       // breach #1
  auto d = c.step(reading(2, 85000, 5, 0));  // between clear and SLO
  EXPECT_EQ(d.reason, "hold:dead-band");
  d = c.step(reading(3, 150000, 5, 0));  // breach #1 again, not #2
  EXPECT_EQ(d.action, Action::kHold);
  EXPECT_EQ(c.level(), Level::kNormal);
  d = c.step(reading(4, 150000, 5, 0));
  EXPECT_EQ(d.action, Action::kEscalate);
}

TEST(SloControllerTest, WalksOneLevelPerStreakDownToTheFloor) {
  SloController c(test_config());
  std::vector<Level> levels;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    const auto d = c.step(reading(t, 200000, 5, 0));
    if (d.action == Action::kEscalate) levels.push_back(d.level);
    if (t == 10) {
      EXPECT_EQ(d.reason, "hold:floor");  // pinned at L3
    }
  }
  EXPECT_EQ(levels, (std::vector<Level>{Level::kBudgetShrink,
                                        Level::kHedgeOff,
                                        Level::kAdmissionTight}));
  EXPECT_EQ(c.transitions_up(), 3U);
  EXPECT_EQ(c.level(), Level::kAdmissionTight);
}

TEST(SloControllerTest, RestorationWaitsForClearStreakAndCooldown) {
  SloController c(test_config());
  c.step(reading(1, 200000, 5, 0));
  c.step(reading(2, 200000, 5, 0));  // escalate at tick 2
  ASSERT_EQ(c.level(), Level::kBudgetShrink);

  // Clear readings from tick 3 on. Cooldown (5 ticks since the transition)
  // gates until tick 7; the 3-tick clear streak is long since satisfied,
  // so the first restorable tick is 7.
  std::uint64_t restored_at = 0;
  for (std::uint64_t t = 3; t <= 8; ++t) {
    const auto d = c.step(reading(t, 10000, 5, 0));
    if (d.action == Action::kRestore) {
      restored_at = t;
      EXPECT_EQ(d.reason, "recovered");
      break;
    }
    EXPECT_TRUE(d.reason == "hold:cooldown" || d.reason == "hold:clear-streak")
        << "tick " << t << ": " << d.reason;
  }
  EXPECT_EQ(restored_at, 7U);
  EXPECT_EQ(c.level(), Level::kNormal);
  EXPECT_EQ(c.transitions_down(), 1U);
}

TEST(SloControllerTest, EmptyWindowClearsOnlyWithDrainedQueue) {
  auto config = test_config();
  SloController c(config);
  c.step(reading(1, 200000, 5, 0));
  c.step(reading(2, 200000, 5, 0));  // -> kBudgetShrink
  ASSERT_EQ(c.level(), Level::kBudgetShrink);

  // Empty window + queue above the low watermark: no evidence either way,
  // so the clear streak must NOT advance (dead band).
  for (std::uint64_t t = 3; t <= 20; ++t) {
    const auto d = c.step(reading(t, 0, 0, 7));
    EXPECT_EQ(d.action, Action::kHold);
    EXPECT_EQ(d.reason, "hold:dead-band");
  }
  EXPECT_EQ(c.level(), Level::kBudgetShrink);

  // Empty window + drained queue: counts as clear; restores once the
  // streak builds (cooldown long expired).
  Action last = Action::kHold;
  for (std::uint64_t t = 21; t <= 23; ++t) {
    last = c.step(reading(t, 0, 0, 0)).action;
  }
  EXPECT_EQ(last, Action::kRestore);
  EXPECT_EQ(c.level(), Level::kNormal);
}

TEST(SloControllerTest, LevelEffectsFollowTheLadder) {
  const auto config = test_config();
  EXPECT_EQ(SloController::alpha_scale_for(config, Level::kNormal), 1.0);
  EXPECT_EQ(SloController::alpha_scale_for(config, Level::kBudgetShrink),
            config.alpha_scale_l1);
  EXPECT_EQ(SloController::alpha_scale_for(config, Level::kHedgeOff),
            config.alpha_scale_l2);
  EXPECT_EQ(SloController::alpha_scale_for(config, Level::kAdmissionTight),
            config.alpha_scale_l3);
  EXPECT_EQ(SloController::admission_scale_for(config, Level::kHedgeOff),
            1.0);
  EXPECT_EQ(
      SloController::admission_scale_for(config, Level::kAdmissionTight),
      config.admission_scale);

  SloController c(config);
  EXPECT_FALSE(c.hedge_suspended());
  for (std::uint64_t t = 1; t <= 4; ++t) c.step(reading(t, 200000, 5, 0));
  EXPECT_EQ(c.level(), Level::kHedgeOff);
  EXPECT_TRUE(c.hedge_suspended());
}

// --------------------------------------------- randomized noise sweep ----

TEST(SloControllerTest, NoisySensorSweepNeverViolatesLadderInvariants) {
  // 5000 random readings straddling every threshold. An independent
  // re-classification of each reading (breach / clear / dead-band, exactly
  // the documented semantics) tracks the streaks the controller is allowed
  // to act on; any transition outside those rules is an invariant
  // violation, whatever the noise does.
  const auto config = test_config();
  SloController c(config);
  SloController twin(config);  // determinism witness
  util::Rng rng(0xC0117201);

  const std::uint64_t clear_line = 70000;  // slo * recover_fraction
  std::size_t breach_streak = 0, clear_streak = 0;
  std::uint64_t ticks_since_transition = 1000;  // boot counts as "old"
  auto level = Level::kNormal;

  for (std::uint64_t t = 1; t <= 5000; ++t) {
    SensorReading r;
    r.tick = t;
    r.window_count = rng.below(4);  // empty windows are common
    r.p95_micros = r.window_count == 0 ? 0 : rng.below(220000);
    r.queued_jobs = rng.below(16);
    const Decision d = c.step(r);
    const Decision d_twin = twin.step(r);
    EXPECT_EQ(d.action, d_twin.action) << "nondeterministic at tick " << t;
    EXPECT_EQ(d.level, d_twin.level);
    EXPECT_EQ(d.reason, d_twin.reason);

    const bool is_breach =
        (r.window_count > 0 && r.p95_micros > config.slo_p95_micros) ||
        r.queued_jobs > config.queue_high;
    const bool is_clear =
        !is_breach &&
        (r.window_count == 0 || r.p95_micros < clear_line) &&
        r.queued_jobs <= config.queue_low;
    if (is_breach) {
      ++breach_streak;
      clear_streak = 0;
    } else if (is_clear) {
      ++clear_streak;
      breach_streak = 0;
    } else {
      breach_streak = 0;
      clear_streak = 0;
    }
    ++ticks_since_transition;

    const int step = static_cast<int>(d.level) - static_cast<int>(level);
    EXPECT_GE(step, -1) << "tick " << t;
    EXPECT_LE(step, 1) << "tick " << t;
    if (d.action == Action::kEscalate) {
      EXPECT_EQ(step, 1) << "tick " << t;
      EXPECT_TRUE(is_breach) << "tick " << t;
      EXPECT_GE(breach_streak, config.breach_ticks_to_escalate)
          << "tick " << t;
    } else if (d.action == Action::kRestore) {
      EXPECT_EQ(step, -1) << "tick " << t;
      EXPECT_TRUE(is_clear) << "tick " << t;
      EXPECT_GE(clear_streak, config.clear_ticks_to_restore) << "tick " << t;
      EXPECT_GE(ticks_since_transition, config.cooldown_ticks)
          << "restore inside cooldown at tick " << t;
    } else {
      EXPECT_EQ(step, 0) << "tick " << t;
    }
    if (d.action != Action::kHold) {
      ticks_since_transition = 0;
      breach_streak = 0;
      clear_streak = 0;
    }
    level = d.level;
  }
  // The sweep must have actually exercised the ladder in both directions.
  EXPECT_GT(c.transitions_up(), 0U);
  EXPECT_GT(c.transitions_down(), 0U);
}

// ----------------------------------------------------------- journal ----

std::vector<SensorReading> synthetic_readings() {
  // Breach burst, recovery, a dead-band wobble, a queue-pressure stall.
  std::vector<SensorReading> readings;
  std::uint64_t t = 0;
  for (int i = 0; i < 4; ++i) readings.push_back(reading(++t, 180000, 3, 2));
  for (int i = 0; i < 12; ++i) readings.push_back(reading(++t, 20000, 3, 0));
  readings.push_back(reading(++t, 85000, 2, 0));
  for (int i = 0; i < 3; ++i) readings.push_back(reading(++t, 0, 0, 12));
  for (int i = 0; i < 12; ++i) readings.push_back(reading(++t, 10000, 1, 0));
  return readings;
}

TEST(DecisionJournalTest, RoundTripsAndReplaysIdentically) {
  const auto path = temp_file("adaparse_journal_roundtrip.jsonl");
  fs::remove(path);
  const auto config = test_config();
  const auto readings = synthetic_readings();

  std::vector<TickRecord> written;
  {
    DecisionJournal journal(path.string());
    journal.append(config);
    SloController c(config);
    for (const auto& r : readings) {
      const Decision d = c.step(r);
      TickRecord record;
      record.reading = r;
      record.action = d.action;
      record.level = d.level;
      record.reason = d.reason;
      journal.append(record);
      written.push_back(std::move(record));
    }
  }

  const auto log = load_decision_log(path.string());
  ASSERT_TRUE(log.config.has_value());
  EXPECT_FALSE(log.dropped_torn_tail);
  EXPECT_EQ(log.config->slo_p95_micros, config.slo_p95_micros);
  EXPECT_EQ(log.config->breach_ticks_to_escalate,
            config.breach_ticks_to_escalate);
  EXPECT_EQ(log.config->cooldown_ticks, config.cooldown_ticks);
  ASSERT_EQ(log.ticks.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_TRUE(log.ticks[i] == written[i]) << "tick " << i;
  }
  // The audit property: replaying the journaled readings under the
  // journaled config reproduces the journaled decisions bit-identically.
  EXPECT_TRUE(replay(*log.config, readings) == log.ticks);
}

TEST(DecisionJournalTest, TornTailIsDroppedNotFatal) {
  const auto path = temp_file("adaparse_journal_torn.jsonl");
  fs::remove(path);
  {
    DecisionJournal journal(path.string());
    journal.append(test_config());
    TickRecord record;
    record.reading = reading(1, 50000, 2, 0);
    record.reason = "hold";
    journal.append(record);
  }
  {
    // Simulate a crash mid-append: a trailing half-written line.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"type\":\"tick\",\"tick\":\"2\",\"p95";
  }
  const auto log = load_decision_log(path.string());
  EXPECT_TRUE(log.dropped_torn_tail);
  ASSERT_TRUE(log.config.has_value());
  ASSERT_EQ(log.ticks.size(), 1U);
  EXPECT_EQ(log.ticks[0].reading.tick, 1U);
}

TEST(DecisionJournalTest, MidJournalDamageThrows) {
  const auto path = temp_file("adaparse_journal_damaged.jsonl");
  fs::remove(path);
  {
    DecisionJournal journal(path.string());
    journal.append(test_config());
    for (std::uint64_t t = 1; t <= 3; ++t) {
      TickRecord record;
      record.reading = reading(t, 50000, 2, 0);
      record.reason = "hold";
      journal.append(record);
    }
  }
  // Flip bytes in the middle of the file: a CRC mismatch that is NOT the
  // final line must be treated as corruption, not silently skipped.
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  const auto middle = bytes.find("\"tick\":\"2\"");
  ASSERT_NE(middle, std::string::npos);
  bytes[middle + 9] = '9';  // tamper with a field the CRC covers
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(load_decision_log(path.string()), std::runtime_error);
}

TEST(DecisionJournalTest, MissingFileYieldsEmptyLog) {
  const auto log = load_decision_log(
      temp_file("adaparse_journal_never_written.jsonl").string());
  EXPECT_FALSE(log.config.has_value());
  EXPECT_TRUE(log.ticks.empty());
  EXPECT_FALSE(log.dropped_torn_tail);
}

// ----------------------------------------------- service integration ----

core::EngineConfig ft_engine() {
  core::EngineConfig engine;
  engine.variant = core::Variant::kFastText;
  engine.batch_size = 16;
  engine.alpha = 0.25;
  return engine;
}

TEST(ControlServiceTest, DisabledControllerExportsNothing) {
  ServiceConfig config;
  config.pool_threads = 4;
  ParseService service(config, nullptr,
                       std::make_shared<core::Cls2Improver>());
  EXPECT_FALSE(service.metrics().control.enabled);
  EXPECT_EQ(service.metrics_text().find("adaparse_serve_control"),
            std::string::npos);
}

TEST(ControlServiceTest, LiveTicksJournalAndReplayIdentically) {
  const auto path = temp_file("adaparse_control_service.jsonl");
  fs::remove(path);
  ServiceConfig config;
  config.dispatchers = 1;
  config.pool_threads = 4;
  config.enable_slo_controller = true;
  config.control_tick = 2ms;
  config.decision_journal_path = path.string();
  {
    ParseService service(config, nullptr,
                         std::make_shared<core::Cls2Improver>());
    for (int i = 0; i < 3; ++i) {
      JobRequest request;
      request.spec.tenant = "t";
      request.spec.engine = ft_engine();
      request.source = std::make_unique<core::GeneratorSource>(
          doc::benchmark_config(32, 1000 + static_cast<std::uint64_t>(i)));
      service.submit(std::move(request))->wait();
    }
    std::this_thread::sleep_for(20ms);  // let a few idle ticks land too
    const auto snap = service.metrics();
    EXPECT_TRUE(snap.control.enabled);
    EXPECT_GT(snap.control.ticks, 0U);
    EXPECT_NE(service.metrics_text().find("adaparse_serve_control_level"),
              std::string::npos);
    service.shutdown();
  }

  const auto log = load_decision_log(path.string());
  ASSERT_TRUE(log.config.has_value());
  ASSERT_FALSE(log.ticks.empty());
  std::vector<SensorReading> readings;
  readings.reserve(log.ticks.size());
  for (const auto& tick : log.ticks) readings.push_back(tick.reading);
  EXPECT_TRUE(replay(*log.config, readings) == log.ticks)
      << "live service ticks did not replay bit-identically";
  // Ticks are journaled in order with no gaps.
  for (std::size_t i = 0; i < log.ticks.size(); ++i) {
    EXPECT_EQ(log.ticks[i].reading.tick, i + 1);
  }
}

}  // namespace
}  // namespace adaparse::serve::control
