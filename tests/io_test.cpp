// Tests for the io module: JSONL records, shard archives, and the document
// codec used by shard-backed streaming sources.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "doc/generator.hpp"
#include "io/doc_codec.hpp"
#include "io/fsio.hpp"
#include "io/jsonl.hpp"
#include "io/shard.hpp"

namespace adaparse::io {
namespace {

ParseRecord sample_record() {
  ParseRecord r;
  r.document_id = "doc-42";
  r.parser = "PyMuPDF";
  r.text = "line one\nline \"two\" with quotes";
  r.predicted_accuracy = 0.52;
  r.route = "cls1:valid|accept";
  r.pages = 12;
  r.pages_retrieved = 11;
  return r;
}

TEST(Jsonl, RecordRoundTrip) {
  const auto r = sample_record();
  const auto back = ParseRecord::from_json(util::Json::parse(r.to_json().dump()));
  EXPECT_EQ(back.document_id, r.document_id);
  EXPECT_EQ(back.parser, r.parser);
  EXPECT_EQ(back.text, r.text);
  EXPECT_NEAR(back.predicted_accuracy, r.predicted_accuracy, 1e-12);
  EXPECT_EQ(back.route, r.route);
  EXPECT_EQ(back.pages, r.pages);
  EXPECT_EQ(back.pages_retrieved, r.pages_retrieved);
}

TEST(Jsonl, WriterProducesOneLinePerRecord) {
  std::ostringstream os;
  JsonlWriter writer(os);
  writer.write(sample_record());
  writer.write(sample_record());
  EXPECT_EQ(writer.count(), 2U);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Jsonl, ReadSkipsBlankLines) {
  std::ostringstream os;
  JsonlWriter writer(os);
  writer.write(sample_record());
  std::istringstream is(os.str() + "\n\n");
  const auto records = read_jsonl(is);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].document_id, "doc-42");
}

TEST(Jsonl, NewlinesInTextSurviveRoundTrip) {
  ParseRecord r = sample_record();
  r.text = "a\nb\nc";
  std::ostringstream os;
  JsonlWriter writer(os);
  writer.write(r);
  std::istringstream is(os.str());
  const auto records = read_jsonl(is);
  ASSERT_EQ(records.size(), 1U);  // newline stayed escaped inside one line
  EXPECT_EQ(records[0].text, "a\nb\nc");
}

// --------------------------------------------------------------- shard ----

TEST(Rle, RoundTrip) {
  const std::string payloads[] = {"", "a", "aaabbbccc", "no runs here!",
                                  std::string(1000, 'x')};
  for (const auto& p : payloads) {
    EXPECT_EQ(rle_decode(rle_encode(p)), p);
  }
}

TEST(Rle, CompressesRuns) {
  const std::string runs(500, ' ');
  EXPECT_LT(rle_encode(runs).size(), runs.size() / 10);
}

TEST(Rle, RejectsMalformed) {
  EXPECT_THROW(rle_decode("abc"), std::runtime_error);  // odd length
  std::string zero_run;
  zero_run += '\0';
  zero_run += 'a';
  EXPECT_THROW(rle_decode(zero_run), std::runtime_error);
}

TEST(Shard, WriteReadRoundTrip) {
  ShardWriter writer;
  writer.add("doc-0.txt", "first document body");
  writer.add("doc-1.txt", "second   body   with   runs");
  EXPECT_EQ(writer.count(), 2U);
  EXPECT_GT(writer.payload_bytes(), 0U);

  ShardReader reader(writer.finish());
  ASSERT_EQ(reader.count(), 2U);
  EXPECT_EQ(reader.entries()[0].name, "doc-0.txt");
  EXPECT_EQ(reader.entries()[0].payload, "first document body");
  const auto found = reader.find("doc-1.txt");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, "second   body   with   runs");
  EXPECT_FALSE(reader.find("missing").has_value());
}

TEST(Shard, EmptyShard) {
  ShardWriter writer;
  ShardReader reader(writer.finish());
  EXPECT_EQ(reader.count(), 0U);
}

TEST(Shard, RejectsCorruptedBlobs) {
  ShardWriter writer;
  writer.add("a", "payload");
  std::string blob = writer.finish();
  // Bad magic.
  std::string bad = blob;
  bad[0] = static_cast<char>(~bad[0]);
  EXPECT_THROW(ShardReader{bad}, std::runtime_error);
  // Truncation.
  EXPECT_THROW(ShardReader{blob.substr(0, blob.size() - 3)},
               std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW(ShardReader{blob + "x"}, std::runtime_error);
}

TEST(Shard, PlanShardsRespectsByteBudget) {
  const std::vector<std::size_t> sizes = {100, 200, 300, 400, 500};
  const auto shards = plan_shards(sizes, 600);
  // Greedy packing: {100,200,300}, {400}, {500}... 100+200+300=600 fits.
  ASSERT_GE(shards.size(), 2U);
  std::size_t covered = 0;
  for (const auto& [begin, end] : shards) {
    std::size_t total = 0;
    for (std::size_t i = begin; i < end; ++i) total += sizes[i];
    EXPECT_TRUE(total <= 600 || end - begin == 1);
    covered += end - begin;
  }
  EXPECT_EQ(covered, sizes.size());
}

TEST(Shard, PlanShardsSingleOversizedEntry) {
  const auto shards = plan_shards({10'000}, 100);
  ASSERT_EQ(shards.size(), 1U);
  EXPECT_EQ(shards[0], std::make_pair(std::size_t{0}, std::size_t{1}));
}

TEST(Shard, PlanShardsEmpty) {
  EXPECT_TRUE(plan_shards({}, 100).empty());
}

// ----------------------------------------------------------- doc codec ----

TEST(DocCodec, DocumentRoundTripPreservesEveryField) {
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(6, /*seed=*/31)).generate();
  for (const auto& original : docs) {
    const auto back = document_from_json(
        util::Json::parse(document_to_json(original).dump()));
    EXPECT_EQ(back.id, original.id);
    EXPECT_EQ(back.meta.publisher, original.meta.publisher);
    EXPECT_EQ(back.meta.domain, original.meta.domain);
    EXPECT_EQ(back.meta.subcategory, original.meta.subcategory);
    EXPECT_EQ(back.meta.year, original.meta.year);
    EXPECT_EQ(back.meta.format, original.meta.format);
    EXPECT_EQ(back.meta.producer, original.meta.producer);
    EXPECT_EQ(back.meta.num_pages, original.meta.num_pages);
    EXPECT_EQ(back.meta.title, original.meta.title);
    EXPECT_EQ(back.groundtruth_pages, original.groundtruth_pages);
    EXPECT_EQ(back.text_layer.pages, original.text_layer.pages);
    EXPECT_NEAR(back.text_layer.fidelity, original.text_layer.fidelity, 1e-12);
    EXPECT_EQ(back.text_layer.present, original.text_layer.present);
    EXPECT_EQ(back.image_layer.born_digital, original.image_layer.born_digital);
    EXPECT_NEAR(back.layout_complexity, original.layout_complexity, 1e-12);
    EXPECT_EQ(back.seed, original.seed);
    EXPECT_EQ(back.corrupted, original.corrupted);
  }
}

TEST(DocCodec, SeedSurvivesAbove53Bits) {
  // JSON numbers are doubles; the codec must not round 64-bit seeds.
  doc::Document document;
  document.id = "seed-test";
  document.seed = 0xFFFFFFFFFFFFFFFFULL;
  const auto back =
      document_from_json(util::Json::parse(document_to_json(document).dump()));
  EXPECT_EQ(back.seed, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(DocCodec, PackedCorpusShardReadsBack) {
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(5, /*seed=*/32)).generate();
  ShardReader reader(pack_corpus_shard(docs));
  ASSERT_EQ(reader.count(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(reader.entries()[i].name, docs[i].id);
    const auto back = document_from_json(
        util::Json::parse(reader.entries()[i].payload));
    EXPECT_EQ(back.id, docs[i].id);
    EXPECT_EQ(back.groundtruth_pages, docs[i].groundtruth_pages);
  }
}

TEST(DocCodec, RejectsOutOfRangeEnum) {
  auto j = document_to_json(doc::Document{});
  j.as_object()["producer"] = 99;
  EXPECT_THROW(document_from_json(j), std::runtime_error);
}

TEST(DocCodec, UnpackInvertsPack) {
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(6, /*seed=*/33)).generate();
  const auto back = unpack_corpus_shard(pack_corpus_shard(docs));
  ASSERT_EQ(back.size(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(document_to_json(back[i]).dump(),
              document_to_json(docs[i]).dump());
  }
}

TEST(DocCodec, UnpackRejectsCorruptBlob) {
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(3, /*seed=*/34)).generate();
  std::string blob = pack_corpus_shard(docs);
  blob.resize(blob.size() / 2);  // torn shard file
  EXPECT_THROW(unpack_corpus_shard(blob), std::runtime_error);
}

TEST(Fsio, ReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(read_file("/nonexistent/adaparse-fsio-test").has_value());
}

TEST(Fsio, AtomicWriteRoundTripsAndLeavesNoTemp) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "adaparse_fsio_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "roundtrip.bin").string();
  const std::string payload = std::string("binary\0payload\n", 15);
  write_file_atomic(path, payload);
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  // Overwrite is atomic too: a second write fully replaces the first.
  write_file_atomic(path, "v2");
  EXPECT_EQ(read_file(path).value_or(""), "v2");
  // No temp siblings survive (temp names are unique per call).
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(Fsio, AtomicWriteExercisesFsyncPath) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "adaparse_fsio_fsync";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // Every atomic write must sync the temp file (data before the rename)
  // and the parent directory (the rename itself) — at least two fsyncs.
  const std::uint64_t before = fsync_count_for_testing();
  write_file_atomic((dir / "durable.bin").string(), "must hit the platter");
  const std::uint64_t after = fsync_count_for_testing();
  EXPECT_GE(after - before, 2u);
  EXPECT_EQ(read_file((dir / "durable.bin").string()).value_or(""),
            "must hit the platter");
}

TEST(Fsio, Fnv1aIsStableAndContentSensitive) {
  EXPECT_EQ(fnv1a("campaign"), fnv1a("campaign"));
  EXPECT_NE(fnv1a("campaign"), fnv1a("campaigN"));
  EXPECT_NE(fnv1a(""), fnv1a(std::string_view("\0", 1)));
}

}  // namespace
}  // namespace adaparse::io
