// Equivalence tests for the zero-allocation text hot path.
//
// The fused single-pass featurizer, the view tokenizer, the streaming
// feature hasher, and the view-based metrics must produce byte-identical
// outputs to the frozen seed implementations in src/reference/seed_impl.*.
// Identical TextFeatures + SparseVec + scores imply identical CLS I/III
// inputs and therefore identical routing decisions and engine output — the
// property tests here exercise clean, corrupted, empty, whitespace-only,
// and non-ASCII corpora to pin that down.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cls1.hpp"
#include "doc/generator.hpp"
#include "metrics/bleu.hpp"
#include "metrics/rouge.hpp"
#include "metrics/scores.hpp"
#include "ml/feature_hash.hpp"
#include "reference/seed_impl.hpp"
#include "text/corrupt.hpp"
#include "text/detect.hpp"
#include "text/features.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse {
namespace {

/// Edge cases plus clean and per-channel-corrupted generated documents.
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> c = [] {
    std::vector<std::string> out;
    out.push_back("");
    out.push_back(" \n\t  \r ");
    out.push_back("a");
    out.push_back("x y");
    out.push_back("state-of-the-art isn't _under_scored_");
    out.push_back("ALLCAPS mIxEdCaSeWoRd xxxxxx qqqqwwwwzzzz");
    out.push_back("C1=CC=CC=C1 CC(=O)OC1=CC=CC=C1C(=O)O benzene");
    out.push_back("\\frac{a}{b} $x^2$ \\alpha {unbalanced _{sub} ^{sup}");
    out.push_back(std::string(300, 'a') + " run " + std::string(50, ' '));
    out.push_back("caf\xC3\xA9 na\xC3\xAFve \xEF\xBF\xBD moji \xE2\x80\x94");
    {
      std::string all_bytes;
      for (int b = 0; b < 256; ++b) all_bytes += static_cast<char>(b);
      out.push_back(all_bytes);
    }
    // Embedded NULs and high bytes inside and across vector-block
    // boundaries: the SIMD classifiers must treat them exactly like the
    // scalar tables (simd/classify.hpp verifies this by construction).
    out.push_back(std::string("nul\0inside token\0 \0", 19));
    {
      std::string s(70, '\x80');
      s[0] = '\0';
      s[31] = ' ';
      s[32] = '\xFF';
      s[69] = '\0';
      out.push_back(s + "tail");
    }
    doc::CorpusGenerator gen(doc::born_digital_config(3, 0xFEED));
    util::Rng rng(0xC0FFEE);
    for (std::size_t i = 0; i < 3; ++i) {
      const auto d = gen.generate_one(i);
      const std::string t = d.full_groundtruth();
      out.push_back(t);
      out.push_back(text::inject_whitespace(t, 0.2, rng));
      out.push_back(text::scramble_words(t, 0.5, rng));
      out.push_back(text::substitute_chars(t, 0.1, rng));
      out.push_back(text::mojibake(t, 0.05, rng));
      out.push_back(text::mangle_latex(t, 0.5, rng));
      out.push_back(text::drop_words(t, 0.3, rng));
      out.push_back(text::pad_whitespace(t, 1.5, rng));
      out.push_back(text::layout_artifacts(t, 0.8, rng));
    }
    return out;
  }();
  return c;
}

TEST(HotPathTokenize, ViewsMatchStringTokenizer) {
  for (const auto& s : corpus()) {
    const auto owned = text::tokenize(s);
    const auto views = text::tokenize_views(s);
    ASSERT_EQ(owned.size(), views.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(owned[i], views[i]);
    }
    std::size_t callback_count = 0;
    text::for_each_token(s, [&](std::string_view t) {
      ASSERT_LT(callback_count, views.size());
      EXPECT_EQ(t, views[callback_count]);
      ++callback_count;
    });
    EXPECT_EQ(callback_count, views.size());
  }
}

TEST(HotPathTokenize, WhitespaceViewsMatchAndCountAgrees) {
  for (const auto& s : corpus()) {
    const auto owned = text::split_whitespace(s);
    const auto views = text::split_whitespace_views(s);
    ASSERT_EQ(owned.size(), views.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(owned[i], views[i]);
    }
    EXPECT_EQ(text::count_tokens(s), owned.size());
  }
}

TEST(HotPathTokenize, ViewsPointIntoInput) {
  const std::string s = "alpha beta, gamma";
  for (const auto v : text::tokenize_views(s)) {
    EXPECT_GE(v.data(), s.data());
    EXPECT_LE(v.data() + v.size(), s.data() + s.size());
  }
}

TEST(HotPathHash, StreamingFnvMatchesHash64) {
  for (const auto& s : corpus()) {
    std::uint64_t h = util::kFnvOffsetBasis;
    for (unsigned char c : s) h = util::fnv1a_step(h, c);
    EXPECT_EQ(h, util::hash64(s));
  }
}

TEST(HotPathFeatures, FusedPassMatchesSeedExactly) {
  for (const auto& s : corpus()) {
    const auto fused = text::compute_features(s).to_array();
    const auto seed = reference::compute_features_seed(s).to_array();
    for (std::size_t i = 0; i < fused.size(); ++i) {
      // Bit-identical, not approximately equal: identical features feed
      // identical CLS decisions.
      EXPECT_EQ(fused[i], seed[i]) << "feature " << i << " differs";
    }
  }
}

TEST(HotPathFeatures, FusedPassMatchesLiveDetectors) {
  // The fused pass inlines the detector logic that also lives in detect.cpp
  // (still used standalone, e.g. by pref/annotator). This pins the two
  // copies to each other so a threshold edit in one cannot silently drift.
  for (const auto& s : corpus()) {
    const auto f = text::compute_features(s);
    EXPECT_EQ(f.alpha_ratio, text::alpha_ratio(s));
    EXPECT_EQ(f.digit_ratio, text::digit_ratio(s));
    EXPECT_EQ(f.whitespace_ratio, text::whitespace_ratio(s));
    EXPECT_EQ(f.non_ascii_ratio, text::non_ascii_ratio(s));
    EXPECT_EQ(f.scrambled_ratio, text::scrambled_token_ratio(s));
    EXPECT_EQ(f.entropy, text::char_entropy(s));
    EXPECT_EQ(f.longest_run,
              static_cast<double>(text::longest_char_run(s)));
    const double per_kchar =
        s.empty() ? 0.0 : 1000.0 / static_cast<double>(s.size());
    EXPECT_EQ(f.latex_density,
              static_cast<double>(text::latex_artifact_count(s)) * per_kchar);
    EXPECT_EQ(f.smiles_density,
              static_cast<double>(text::smiles_like_count(s)) * per_kchar);
  }
}

TEST(HotPathFeatures, Cls1VerdictsUnchanged) {
  for (const auto& s : corpus()) {
    const auto verdict = core::cls1_validate(s, 2);
    const auto seed_verdict =
        core::cls1_validate(reference::compute_features_seed(s), 2);
    EXPECT_EQ(verdict.valid, seed_verdict.valid);
    EXPECT_EQ(verdict.reason, seed_verdict.reason);
  }
}

void expect_sparse_eq(const ml::SparseVec& a, const ml::SparseVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].value, b[i].value);  // bit-identical floats
  }
}

TEST(HotPathHash, StreamingHasherMatchesSeedExactly) {
  std::vector<ml::HashOptions> variants;
  variants.push_back({});  // SciBERT-style defaults
  {
    ml::HashOptions o;  // fastText-style: unigrams, small space
    o.dim = 1 << 12;
    o.word_ngrams = 1;
    o.salt = 0xFA57;
    variants.push_back(o);
  }
  {
    ml::HashOptions o;  // word-only (char grams off)
    o.char_ngrams = 0;
    o.salt = 0xBE27;
    variants.push_back(o);
  }
  {
    ml::HashOptions o;  // wide char-gram range, tiny dim, short truncation
    o.dim = 1 << 9;
    o.char_ngram_min = 1;
    o.char_ngrams = 5;
    o.max_chars = 64;
    variants.push_back(o);
  }
  for (const auto& options : variants) {
    for (const auto& s : corpus()) {
      expect_sparse_eq(ml::hash_text(s, options),
                       reference::hash_text_seed(s, options));
    }
  }
}

TEST(HotPathHash, RepeatedCallsReuseScratchCleanly) {
  // The dense accumulator is thread-local and epoch-stamped; interleaved
  // dims and repeated inputs must not leak state between calls.
  ml::HashOptions small;
  small.dim = 1 << 9;
  const ml::HashOptions big;
  const std::string s = "the quick brown fox jumps over the lazy dog";
  const auto first_small = ml::hash_text(s, small);
  const auto first_big = ml::hash_text(s, big);
  for (int i = 0; i < 3; ++i) {
    expect_sparse_eq(ml::hash_text(s, small), first_small);
    expect_sparse_eq(ml::hash_text(s, big), first_big);
  }
}

TEST(HotPathMetrics, BleuMatchesSeedExactly) {
  const auto& c = corpus();
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    EXPECT_EQ(metrics::bleu(c[i], c[i + 1]),
              reference::bleu_seed(c[i], c[i + 1]));
    EXPECT_EQ(metrics::bleu(c[i], c[i]), reference::bleu_seed(c[i], c[i]));
  }
}

TEST(HotPathMetrics, RougeMatchesSeedExactly) {
  const auto& c = corpus();
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    EXPECT_EQ(metrics::rouge(c[i], c[i + 1]),
              reference::rouge_seed(c[i], c[i + 1]));
    EXPECT_EQ(metrics::rouge(c[i], c[i]), reference::rouge_seed(c[i], c[i]));
  }
}

TEST(HotPathMetrics, ViewAndStringTokenOverloadsAgree) {
  const std::string cand = "the cat sat on the mat , twice";
  const std::string ref = "the cat sat on a mat";
  const auto cand_s = text::tokenize(cand);
  const auto ref_s = text::tokenize(ref);
  const auto cand_v = text::tokenize_views(cand);
  const auto ref_v = text::tokenize_views(ref);

  const auto bleu_s = metrics::bleu_tokens(cand_s, ref_s);
  const auto bleu_v = metrics::bleu_tokens(cand_v, ref_v);
  EXPECT_EQ(bleu_s.score, bleu_v.score);
  EXPECT_EQ(bleu_s.precisions, bleu_v.precisions);

  for (std::size_t n = 1; n <= 3; ++n) {
    const auto rn_s = metrics::rouge_n_tokens(cand_s, ref_s, n);
    const auto rn_v = metrics::rouge_n_tokens(cand_v, ref_v, n);
    EXPECT_EQ(rn_s.f1, rn_v.f1);
    EXPECT_EQ(rn_s.precision, rn_v.precision);
    EXPECT_EQ(rn_s.recall, rn_v.recall);
  }
  const auto rl_s = metrics::rouge_l_tokens(cand_s, ref_s);
  const auto rl_v = metrics::rouge_l_tokens(cand_v, ref_v);
  EXPECT_EQ(rl_s.f1, rl_v.f1);
}

TEST(HotPathMetrics, ScoreDocumentMatchesSeedExactly) {
  doc::CorpusGenerator gen(doc::born_digital_config(2, 0xD0C5));
  util::Rng rng(7);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto d = gen.generate_one(i);
    std::vector<std::string> candidate_pages;
    for (const auto& page : d.groundtruth_pages) {
      candidate_pages.push_back(text::substitute_chars(page, 0.05, rng));
    }
    if (!candidate_pages.empty()) candidate_pages.back().clear();  // dropped page
    const auto fast = metrics::score_document(candidate_pages,
                                              d.groundtruth_pages);
    const auto seed = reference::score_document_seed(candidate_pages,
                                                     d.groundtruth_pages);
    EXPECT_EQ(fast.coverage, seed.coverage);
    EXPECT_EQ(fast.bleu, seed.bleu);
    EXPECT_EQ(fast.rouge, seed.rouge);
    EXPECT_EQ(fast.car, seed.car);
    EXPECT_EQ(fast.tokens, seed.tokens);
  }
}

}  // namespace
}  // namespace adaparse
