// Unit tests for the obs module: tracer + span rings, the cross-process
// span codec, the shared metrics registry / Prometheus renderer, and the
// Chrome-trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace adaparse::obs {
namespace {

/// Turns tracing on for one test and restores the previous state (draining
/// anything the test recorded, so cases stay independent).
class TracingScope {
 public:
  TracingScope() : was_(Tracer::instance().enabled()) {
    Tracer::instance().set_enabled(true);
  }
  ~TracingScope() {
    static_cast<void>(Tracer::instance().collect());
    Tracer::instance().set_enabled(was_);
  }

 private:
  bool was_;
};

const SpanRecord* find_span(const std::vector<SpanRecord>& records,
                            const char* name) {
  for (const auto& rec : records) {
    if (std::strcmp(rec.name, name) == 0) return &rec;
  }
  return nullptr;
}

// ------------------------------------------------------------- tracer ----

TEST(Tracer, DisabledSpanGuardRecordsNothing) {
  auto& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());  // ADAPARSE_TRACE is unset under ctest
  {
    SpanGuard span("test", "noop", "a", 1);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(tracer.collect().empty());
}

TEST(Tracer, RecordsSpanWithArgsTagAndTiming) {
  TracingScope scope;
  auto& tracer = Tracer::instance();
  {
    SpanGuard span("cat", "work", "docs", 7);
    EXPECT_TRUE(span.active());
    EXPECT_NE(span.id(), 0u);
    span.arg("bytes", 99);
    span.tag(tracer.intern("tenant-a"));
  }
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 1u);
  const SpanRecord& rec = records[0];
  EXPECT_STREQ(rec.category, "cat");
  EXPECT_STREQ(rec.name, "work");
  EXPECT_STREQ(rec.arg1_name, "docs");
  EXPECT_EQ(rec.arg1, 7u);
  EXPECT_STREQ(rec.arg2_name, "bytes");
  EXPECT_EQ(rec.arg2, 99u);
  EXPECT_STREQ(rec.tag, "tenant-a");
  EXPECT_FALSE(rec.instant);
  EXPECT_NE(rec.id, 0u);
  EXPECT_EQ(rec.parent, 0u);
  EXPECT_GT(rec.pid, 0u);
}

TEST(Tracer, NestedSpansLinkParentsOnOneThread) {
  TracingScope scope;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    SpanGuard outer("t", "outer");
    outer_id = outer.id();
    {
      SpanGuard inner("t", "inner");
      inner_id = inner.id();
    }
  }
  const auto records = Tracer::instance().collect();
  ASSERT_EQ(records.size(), 2u);
  const SpanRecord* outer = find_span(records, "outer");
  const SpanRecord* inner = find_span(records, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->id, outer_id);
  EXPECT_EQ(inner->id, inner_id);
  EXPECT_EQ(inner->parent, outer_id);
  EXPECT_EQ(outer->parent, 0u);
  // The inner span closed first but started later and nests inside.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
}

TEST(Tracer, OutermostSpanParentsToAmbientContext) {
  TracingScope scope;
  auto& tracer = Tracer::instance();
  const TraceContext saved = tracer.context();
  tracer.set_context({0xABCD, 0x1234});
  { SpanGuard span("t", "child-of-context"); }
  tracer.set_context(saved);
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].parent, 0x1234u);
}

TEST(Tracer, InstantEventsAreZeroDuration) {
  TracingScope scope;
  auto& tracer = Tracer::instance();
  tracer.instant("coord", "steal", "shard", 5, "victim", 42);
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].instant);
  EXPECT_EQ(records[0].dur_ns, 0u);
  EXPECT_EQ(records[0].arg1, 5u);
  EXPECT_EQ(records[0].arg2, 42u);
}

TEST(Tracer, FullRingDropsAndCounts) {
  TracingScope scope;
  auto& tracer = Tracer::instance();
  const std::uint64_t dropped_before = tracer.dropped();
  // Well past the per-thread ring capacity without an intervening collect.
  for (int i = 0; i < 40000; ++i) {
    SpanGuard span("t", "flood");
  }
  EXPECT_GT(tracer.dropped(), dropped_before);
  const auto records = tracer.collect();
  EXPECT_GT(records.size(), 0u);
  EXPECT_LT(records.size(), 40000u);  // some were shed, none blocked
}

TEST(Tracer, SpansFromMultipleThreadsCarryDistinctTids) {
  TracingScope scope;
  std::thread other([] { SpanGuard span("t", "other-thread"); });
  other.join();
  { SpanGuard span("t", "this-thread"); }
  const auto records = Tracer::instance().collect();
  ASSERT_EQ(records.size(), 2u);
  const SpanRecord* a = find_span(records, "other-thread");
  const SpanRecord* b = find_span(records, "this-thread");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->tid, b->tid);
  EXPECT_NE(a->id, b->id);
}

TEST(Tracer, InternReturnsStablePointerForEqualStrings) {
  auto& tracer = Tracer::instance();
  const char* a = tracer.intern("tenant-42");
  const char* b = tracer.intern(std::string("tenant-") + "42");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "tenant-42");
  EXPECT_NE(a, tracer.intern("tenant-43"));
}

TEST(Tracer, AdoptMergesForeignRecordsIntoCollect) {
  TracingScope scope;
  auto& tracer = Tracer::instance();
  SpanRecord foreign;
  foreign.id = 0x77;
  foreign.pid = 99999;
  foreign.name = tracer.intern("foreign");
  foreign.category = tracer.intern("worker");
  tracer.adopt({foreign});
  { SpanGuard span("t", "local"); }
  const auto records = tracer.collect();
  ASSERT_EQ(records.size(), 2u);
  const SpanRecord* adopted = find_span(records, "foreign");
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->pid, 99999u);  // original pid preserved
  EXPECT_TRUE(tracer.collect().empty());  // adopted records drain once
}

// --------------------------------------------------------- span codec ----

TEST(SpanCodec, RoundTripPreservesEveryField) {
  auto& tracer = Tracer::instance();
  SpanRecord rec;
  rec.start_ns = 123456789;
  rec.dur_ns = 1000;
  rec.id = 0xDEADBEEF;
  rec.parent = 0xFEED;
  rec.arg1 = 7;
  rec.arg2 = 9;
  rec.category = tracer.intern("campaign");
  rec.name = tracer.intern("attempt");
  rec.tag = tracer.intern("shard-3");
  rec.arg1_name = tracer.intern("shard");
  rec.arg2_name = nullptr;  // null and empty must both survive
  rec.pid = 4242;
  rec.tid = 3;
  rec.instant = false;
  SpanRecord instant;
  instant.id = 0x2;
  instant.name = tracer.intern("steal");
  instant.category = tracer.intern("coord");
  instant.instant = true;

  const std::string payload = encode_spans({rec, instant});
  const auto decoded = decode_spans(payload);
  ASSERT_EQ(decoded.size(), 2u);
  const SpanRecord& d = decoded[0];
  EXPECT_EQ(d.start_ns, rec.start_ns);
  EXPECT_EQ(d.dur_ns, rec.dur_ns);
  EXPECT_EQ(d.id, rec.id);
  EXPECT_EQ(d.parent, rec.parent);
  EXPECT_EQ(d.arg1, rec.arg1);
  EXPECT_EQ(d.arg2, rec.arg2);
  EXPECT_STREQ(d.category, "campaign");
  EXPECT_STREQ(d.name, "attempt");
  EXPECT_STREQ(d.tag, "shard-3");
  EXPECT_STREQ(d.arg1_name, "shard");
  EXPECT_EQ(d.arg2_name, nullptr);
  EXPECT_EQ(d.pid, rec.pid);
  EXPECT_EQ(d.tid, rec.tid);
  EXPECT_FALSE(d.instant);
  EXPECT_TRUE(decoded[1].instant);
  EXPECT_STREQ(decoded[1].name, "steal");
}

TEST(SpanCodec, EmptyBatchRoundTrips) {
  EXPECT_TRUE(decode_spans(encode_spans({})).empty());
}

TEST(SpanCodec, MalformedPayloadThrows) {
  EXPECT_THROW(decode_spans("xx"), std::runtime_error);
  const std::string good = encode_spans({SpanRecord{}});
  EXPECT_THROW(decode_spans(std::string_view(good).substr(0, good.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(decode_spans(good + "trailing"), std::runtime_error);
}

// ----------------------------------------------------------- registry ----

TEST(Registry, CountersRenderIntegralGaugesRenderReal) {
  Registry registry;
  registry.counter("jobs_total", "All jobs").add(std::size_t{3});
  registry.counter("jobs_total", "All jobs").add(std::size_t{4});
  registry.gauge("load", "Current load").set(0.25);
  registry.gauge("slots", "").set(8);
  EXPECT_EQ(registry.render_prometheus(),
            "# HELP jobs_total All jobs\n"
            "# TYPE jobs_total counter\n"
            "jobs_total 7\n"
            "# HELP load Current load\n"
            "# TYPE load gauge\n"
            "load 0.25\n"
            "# TYPE slots gauge\n"  // empty help -> no HELP line
            "slots 8\n");
}

TEST(Registry, DoubleValuedCountersUseDefaultFormatting) {
  Registry registry;
  registry.counter("seconds_total").set(1.5);
  registry.counter("whole").set(4.0);  // double 4.0 still renders as "4"
  EXPECT_EQ(registry.render_prometheus(),
            "# TYPE seconds_total counter\n"
            "seconds_total 1.5\n"
            "# TYPE whole counter\n"
            "whole 4\n");
}

TEST(Registry, LabeledSeriesRenderInCreationOrder) {
  Registry registry;
  registry.counter("reqs", "", {{"tenant", "b"}, {"outcome", "ok"}}).add(1);
  registry.counter("reqs", "", {{"tenant", "a"}, {"outcome", "ok"}}).add(2);
  registry.counter("reqs", "", {{"tenant", "b"}, {"outcome", "ok"}}).add(10);
  EXPECT_EQ(registry.render_prometheus(),
            "# TYPE reqs counter\n"
            "reqs{tenant=\"b\",outcome=\"ok\"} 11\n"
            "reqs{tenant=\"a\",outcome=\"ok\"} 2\n");
}

TEST(Registry, DeclareEmitsHeadersForEmptyFamilies) {
  Registry registry;
  registry.declare("later", "Declared first, filled never",
                   Registry::Kind::kCounter);
  registry.gauge("up", "").set(1);
  EXPECT_EQ(registry.render_prometheus(),
            "# HELP later Declared first, filled never\n"
            "# TYPE later counter\n"
            "# TYPE up gauge\n"
            "up 1\n");
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.counter("x").add(1);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.declare("x", "", Registry::Kind::kHistogram),
               std::logic_error);
}

TEST(Registry, HistogramRendersCumulativeBuckets) {
  Registry registry;
  auto& h = registry.histogram("lat", "Latency", {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.5);
  h.observe(99.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.05);
  EXPECT_EQ(registry.render_prometheus(),
            "# HELP lat Latency\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"0.1\"} 1\n"
            "lat_bucket{le=\"1\"} 3\n"
            "lat_bucket{le=\"10\"} 3\n"
            "lat_bucket{le=\"+Inf\"} 4\n"
            "lat_sum 100.05\n"
            "lat_count 4\n");
}

TEST(Registry, QuantileRendersGaugeFamilyWithQuantileLabel) {
  Registry registry;
  auto& q = registry.quantile("wait", "", {0.5});
  for (int i = 1; i <= 100; ++i) q.observe(static_cast<double>(i));
  EXPECT_EQ(q.count(), 100u);
  EXPECT_NEAR(q.estimate(0), 50.0, 5.0);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE wait gauge\n"), std::string::npos);
  EXPECT_NE(text.find("wait{quantile=\"0.5\"} "), std::string::npos);
}

TEST(Registry, LogBucketsAreGeometricAndLandOnHi) {
  const auto edges = Registry::log_buckets(0.001, 10.0, 9);
  ASSERT_EQ(edges.size(), 9u);
  EXPECT_DOUBLE_EQ(edges.front(), 0.001);
  EXPECT_DOUBLE_EQ(edges.back(), 10.0);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i], edges[i - 1]);
    EXPECT_NEAR(edges[i] / edges[i - 1], edges[1] / edges[0], 1e-9);
  }
  EXPECT_THROW(Registry::log_buckets(0.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Registry::log_buckets(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Registry::log_buckets(1.0, 2.0, 1), std::logic_error);
}

TEST(Registry, EscapesLabelValues) {
  Registry registry;
  registry.counter("c", "", {{"tenant", "a\\b\"c\nd"}}).add(1);
  EXPECT_EQ(registry.render_prometheus(),
            "# TYPE c counter\n"
            "c{tenant=\"a\\\\b\\\"c\\nd\"} 1\n");
}

// ----------------------------------------------------------- exporter ----

std::vector<SpanRecord> sample_records() {
  auto& tracer = Tracer::instance();
  SpanRecord root;
  root.start_ns = 2000;
  root.dur_ns = 5000;
  root.id = 0x10;
  root.category = tracer.intern("campaign");
  root.name = tracer.intern("run");
  root.pid = 100;
  root.tid = 0;
  SpanRecord child;  // different pid: a forked worker's span
  child.start_ns = 3000;
  child.dur_ns = 1000;
  child.id = 0x11;
  child.parent = 0x10;
  child.category = tracer.intern("pipeline");
  child.name = tracer.intern("extract \"quoted\"");
  child.arg1_name = tracer.intern("docs");
  child.arg1 = 64;
  child.pid = 200;
  child.tid = 1;
  SpanRecord mark;
  mark.start_ns = 3500;
  mark.id = 0x12;
  mark.parent = 0x10;
  mark.category = tracer.intern("campaign");
  mark.name = tracer.intern("steal");
  mark.instant = true;
  mark.pid = 100;
  mark.tid = 0;
  return {child, mark, root};  // deliberately unsorted
}

TEST(Exporter, EmitsParsableChromeTraceJson) {
  const std::string json = trace_to_json(sample_records());
  const auto parsed = util::Json::parse(json);
  ASSERT_TRUE(parsed.contains("traceEvents"));
  const auto& events = parsed.at("traceEvents").as_array();
  // 3 spans + one process_name metadata record per distinct pid.
  ASSERT_EQ(events.size(), 5u);
  std::size_t metadata = 0, slices = 0;
  for (const auto& event : events) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.at("name").as_string(), "process_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++slices;
    EXPECT_EQ(event.at("args").at("span_id").as_string().rfind("0x", 0), 0u);
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(slices, 3u);
}

TEST(Exporter, SortsByPidTidTimeAndLinksParentsAcrossPids) {
  const std::string json = trace_to_json(sample_records());
  const auto parsed = util::Json::parse(json);
  const auto& events = parsed.at("traceEvents").as_array();
  std::vector<std::pair<double, double>> order;  // (pid, ts) of slices
  for (const auto& event : events) {
    if (event.at("ph").as_string() != "X") continue;
    order.emplace_back(event.at("pid").as_number(),
                       event.at("ts").as_number());
    if (event.at("name").as_string().rfind("extract", 0) == 0) {
      // Worker-pid span still points at the coordinator-pid parent.
      EXPECT_EQ(event.at("args").at("parent_id").as_string(), "0x10");
      EXPECT_EQ(event.at("args").at("docs").as_number(), 64.0);
      EXPECT_EQ(event.at("ts").as_number(), 3.0);   // 3000 ns -> 3 us
      EXPECT_EQ(event.at("dur").as_number(), 1.0);
    }
    if (event.at("name").as_string() == "steal") {
      EXPECT_EQ(event.at("args").at("instant").as_number(), 1.0);
    }
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Exporter, FlameSummaryAggregatesByStage) {
  const std::string summary = render_flame_summary(sample_records());
  EXPECT_NE(summary.find("campaign/run"), std::string::npos);
  EXPECT_NE(summary.find("pipeline/extract"), std::string::npos);
  // Instants carry no duration and are excluded from the flame view.
  EXPECT_EQ(summary.find("campaign/steal"), std::string::npos);
  // The busiest stage leads.
  EXPECT_LT(summary.find("campaign/run"), summary.find("pipeline/extract"));
}

}  // namespace
}  // namespace adaparse::obs
