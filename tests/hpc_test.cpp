// Tests for the cluster simulator: conservation laws, scaling behaviour,
// contention mechanisms, warm-start accounting, and the utilization trace.
#include <gtest/gtest.h>

#include "doc/generator.hpp"
#include "hpc/campaign.hpp"
#include "hpc/cluster.hpp"
#include "hpc/trace.hpp"
#include "parsers/registry.hpp"

namespace adaparse::hpc {
namespace {

std::vector<TaskSpec> cpu_tasks(std::size_t n, double seconds,
                                double bytes = 1e6) {
  std::vector<TaskSpec> tasks(n);
  for (auto& t : tasks) {
    t.cpu_seconds = seconds;
    t.bytes_read = bytes;
  }
  return tasks;
}

std::vector<TaskSpec> gpu_tasks(std::size_t n, double gpu_seconds) {
  std::vector<TaskSpec> tasks(n);
  for (auto& t : tasks) {
    t.cpu_seconds = 0.1;
    t.gpu_seconds = gpu_seconds;
    t.bytes_read = 1e6;
    t.needs_gpu_model = true;
  }
  return tasks;
}

TEST(Cluster, EmptyWorkload) {
  const auto result = simulate({}, {});
  EXPECT_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.tasks, 0U);
}

TEST(Cluster, SingleTaskAccounting) {
  ClusterConfig config;
  config.dispatch_overhead = 0.0;
  config.fs_op_latency = 0.0;
  const auto tasks = cpu_tasks(1, 5.0, 0.0);
  const auto result = simulate(config, tasks);
  EXPECT_NEAR(result.makespan, 5.0, 1e-9);
  EXPECT_NEAR(result.cpu_busy_seconds, 5.0, 1e-9);
  EXPECT_EQ(result.gpu_busy_seconds, 0.0);
}

TEST(Cluster, CpuParallelismWithinNode) {
  // 32 cores: 64 tasks of 1s should take ~2s, not 64s.
  ClusterConfig config;
  config.dispatch_overhead = 0.0;
  config.fs_op_latency = 0.0;
  config.fs_bandwidth = 1e15;
  const auto result = simulate(config, cpu_tasks(64, 1.0));
  EXPECT_NEAR(result.makespan, 2.0, 0.1);
}

TEST(Cluster, InvalidConfigThrows) {
  ClusterConfig config;
  config.nodes = 0;
  EXPECT_THROW(simulate(config, cpu_tasks(1, 1.0)), std::invalid_argument);
}

TEST(Cluster, GpuTaskOnGpulessClusterThrows) {
  ClusterConfig config;
  config.gpus_per_node = 0;
  EXPECT_THROW(simulate(config, gpu_tasks(1, 1.0)), std::invalid_argument);
}

TEST(Cluster, LinearScalingWhenComputeBound) {
  ClusterConfig config;
  config.fs_bandwidth = 1e15;  // FS never the bottleneck
  config.fs_op_latency = 0.0;
  const auto tasks = cpu_tasks(4096, 10.0, 1.0);
  ClusterConfig c1 = config; c1.nodes = 1;
  ClusterConfig c8 = config; c8.nodes = 8;
  const double t1 = simulate(c1, tasks).throughput;
  const double t8 = simulate(c8, tasks).throughput;
  EXPECT_NEAR(t8 / t1, 8.0, 0.8);
}

TEST(Cluster, FsContentionCapsThroughput) {
  // Tasks so cheap that the shared FS dominates: throughput must saturate
  // near bandwidth/bytes regardless of node count (the Figure 5 plateau).
  ClusterConfig config;
  config.fs_bandwidth = 100e6;  // 100 MB/s
  config.batch_staging = true;
  config.batch_size = 64;
  const auto tasks = cpu_tasks(8192, 0.01, 1e6);  // 1 MB per task
  ClusterConfig c64 = config; c64.nodes = 64;
  ClusterConfig c128 = config; c128.nodes = 128;
  const double t64 = simulate(c64, tasks).throughput;
  const double t128 = simulate(c128, tasks).throughput;
  EXPECT_LT(t64, 110.0);           // ~100 tasks/s cap
  EXPECT_LT(t128 / t64, 1.25);     // adding nodes no longer helps
}

TEST(Cluster, BatchingReducesFsTime) {
  ClusterConfig batched;
  batched.batch_staging = true;
  batched.batch_size = 128;
  batched.fs_op_latency = 0.05;
  ClusterConfig unbatched = batched;
  unbatched.batch_staging = false;
  const auto tasks = cpu_tasks(1024, 0.5, 1e5);
  const auto rb = simulate(batched, tasks);
  const auto ru = simulate(unbatched, tasks);
  EXPECT_LT(rb.fs_busy_seconds, ru.fs_busy_seconds);
  EXPECT_LE(rb.makespan, ru.makespan + 1e-9);
}

TEST(Cluster, WarmStartLoadsOncePerGpu) {
  ClusterConfig config;
  config.warm_start = true;
  config.model_load_seconds = 15.0;
  config.gpus_per_node = 4;
  const auto result = simulate(config, gpu_tasks(40, 2.0));
  // 4 GPUs on 1 node -> exactly 4 loads.
  EXPECT_NEAR(result.model_load_seconds, 4 * 15.0, 1e-9);
}

TEST(Cluster, ColdStartLoadsEveryTask) {
  ClusterConfig config;
  config.warm_start = false;
  config.model_load_seconds = 15.0;
  const auto result = simulate(config, gpu_tasks(40, 2.0));
  EXPECT_NEAR(result.model_load_seconds, 40 * 15.0, 1e-9);
}

TEST(Cluster, WarmStartImprovesMakespan) {
  ClusterConfig warm;
  warm.warm_start = true;
  ClusterConfig cold = warm;
  cold.warm_start = false;
  const auto tasks = gpu_tasks(64, 3.0);
  EXPECT_LT(simulate(warm, tasks).makespan,
            simulate(cold, tasks).makespan * 0.6);
}

TEST(Cluster, CentralCoordinatorCapsScaling) {
  ClusterConfig config;
  config.central_service_seconds = 5.0;
  config.fs_bandwidth = 1e15;
  const auto tasks = gpu_tasks(256, 1.0);
  ClusterConfig c1 = config; c1.nodes = 1;
  ClusterConfig c32 = config; c32.nodes = 32;
  const double t1 = simulate(c1, tasks).throughput;
  const double t32 = simulate(c32, tasks).throughput;
  EXPECT_LT(t32, 0.21);            // 1/5s cap
  EXPECT_LT(t32 / std::max(t1, 1e-12), 3.0);  // nowhere near 32x
}

TEST(Cluster, GpuUtilizationBounded) {
  ClusterConfig config;
  const auto result = simulate(config, gpu_tasks(32, 4.0));
  const double u = result.gpu_utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

// ------------------------------------------------------------ campaign ----

TEST(Campaign, TasksMatchParserResources) {
  const auto docs =
      doc::CorpusGenerator(doc::born_digital_config(10, 3)).generate();
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const auto mupdf = parsers::make_parser(parsers::ParserKind::kPyMuPdf);
  for (const auto& task : campaign_tasks(*nougat, docs)) {
    EXPECT_GT(task.gpu_seconds, 0.0);
    EXPECT_TRUE(task.needs_gpu_model);
  }
  for (const auto& task : campaign_tasks(*mupdf, docs)) {
    EXPECT_EQ(task.gpu_seconds, 0.0);
    EXPECT_FALSE(task.needs_gpu_model);
  }
}

TEST(Campaign, PypdfHasHigherFsOps) {
  const auto docs =
      doc::CorpusGenerator(doc::born_digital_config(3, 5)).generate();
  const auto pypdf = parsers::make_parser(parsers::ParserKind::kPypdf);
  const auto tasks = campaign_tasks(*pypdf, docs);
  for (const auto& task : tasks) EXPECT_EQ(task.fs_ops, 4.0);
}

TEST(Campaign, ClusterForMarkerHasCoordinator) {
  EXPECT_GT(cluster_for_parser(parsers::ParserKind::kMarker, 4)
                .central_service_seconds,
            0.0);
  EXPECT_EQ(cluster_for_parser(parsers::ParserKind::kPyMuPdf, 4)
                .central_service_seconds,
            0.0);
}

TEST(Campaign, SweepMonotoneForComputeBoundParser) {
  const auto docs =
      doc::CorpusGenerator(doc::born_digital_config(300, 7)).generate();
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const auto points = throughput_sweep(*nougat, docs, {1, 2, 4, 8});
  ASSERT_EQ(points.size(), 4U);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].throughput, points[i - 1].throughput * 0.95);
  }
}

TEST(Campaign, RecoveryOverheadLowersProjectedThroughput) {
  const auto docs =
      doc::CorpusGenerator(doc::born_digital_config(200, 9)).generate();
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const auto tasks = campaign_tasks(*nougat, docs);
  const auto base = cluster_for_parser(parsers::ParserKind::kNougat, 1);
  const std::vector<int> nodes = {1, 2, 4};

  const auto clean = throughput_sweep_tasks(tasks, base, nodes);
  const auto zero = throughput_sweep_with_overhead(tasks, base, nodes, 0.0);
  const auto lossy = throughput_sweep_with_overhead(tasks, base, nodes, 1.0);
  ASSERT_EQ(clean.size(), lossy.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    // Zero measured overhead projects the clean sweep exactly.
    EXPECT_DOUBLE_EQ(zero[i].throughput, clean[i].throughput);
    // A campaign that loses as much wall-clock to recovery as it spends on
    // useful work projects strictly lower throughput at every node count.
    EXPECT_LT(lossy[i].throughput, clean[i].throughput);
  }
  // Negative fractions clamp to zero overhead rather than speeding up.
  const auto clamped =
      throughput_sweep_with_overhead(tasks, base, nodes, -0.5);
  EXPECT_DOUBLE_EQ(clamped[0].throughput, clean[0].throughput);
}

TEST(Campaign, MeasuredRecoveryLatenciesMatchEquivalentFraction) {
  const auto docs =
      doc::CorpusGenerator(doc::born_digital_config(200, 9)).generate();
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const auto tasks = campaign_tasks(*nougat, docs);
  const auto base = cluster_for_parser(parsers::ParserKind::kNougat, 1);
  const std::vector<int> nodes = {1, 2, 4};

  // Two measured 1-second faults over a 10-second productive run is a 20%
  // overhead — it must project exactly like the precomputed fraction.
  const auto measured =
      throughput_sweep_measured(tasks, base, nodes, {1.0, 1.0}, 10.0);
  const auto fraction =
      throughput_sweep_with_overhead(tasks, base, nodes, 0.2);
  ASSERT_EQ(measured.size(), fraction.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_DOUBLE_EQ(measured[i].throughput, fraction[i].throughput);
  }

  // No faults — or a degenerate productive wall — projects the clean sweep.
  const auto clean = throughput_sweep_tasks(tasks, base, nodes);
  const auto no_faults = throughput_sweep_measured(tasks, base, nodes, {}, 10.0);
  const auto degenerate =
      throughput_sweep_measured(tasks, base, nodes, {5.0}, 0.0);
  EXPECT_DOUBLE_EQ(no_faults[0].throughput, clean[0].throughput);
  EXPECT_DOUBLE_EQ(degenerate[0].throughput, clean[0].throughput);
}

// --------------------------------------------------------------- trace ----

TEST(Trace, BucketsCoverMakespan) {
  const auto result = simulate({}, gpu_tasks(16, 2.0));
  const auto trace = build_trace(result, 20);
  ASSERT_FALSE(trace.gpu_busy_fraction.empty());
  EXPECT_EQ(trace.gpu_busy_fraction[0].size(), 20U);
  EXPECT_NEAR(trace.bucket_seconds * 20, result.makespan, 1e-6);
  for (const auto& row : trace.gpu_busy_fraction) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Trace, BusyFractionMatchesBusySeconds) {
  const auto result = simulate({}, gpu_tasks(16, 2.0));
  const auto trace = build_trace(result, 50);
  double integrated = 0.0;
  for (const auto& row : trace.gpu_busy_fraction) {
    for (double v : row) integrated += v * trace.bucket_seconds;
  }
  EXPECT_NEAR(integrated, result.gpu_busy_seconds + result.model_load_seconds,
              0.05 * (result.gpu_busy_seconds + result.model_load_seconds) +
                  0.5);
}

TEST(Trace, EmptyResult) {
  const auto trace = build_trace({}, 10);
  EXPECT_TRUE(trace.gpu_busy_fraction.empty());
}

TEST(Trace, RenderRowLengthMatches) {
  EXPECT_EQ(render_row({0.0, 0.5, 1.0}).size(), 3U);
}

}  // namespace
}  // namespace adaparse::hpc
