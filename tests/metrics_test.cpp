// Unit and property tests for the metrics module: BLEU, ROUGE, edit
// distance / CAR, and corpus aggregation.
#include <gtest/gtest.h>

#include <string>

#include "metrics/bleu.hpp"
#include "metrics/edit_distance.hpp"
#include "metrics/rouge.hpp"
#include "metrics/scores.hpp"
#include "text/corrupt.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse::metrics {
namespace {

const char* kReference =
    "The gravitational force between two masses is directly proportional "
    "to the product of their masses and inversely proportional to the "
    "square of the distance between them.";

// --------------------------------------------------------------- BLEU ----

TEST(Bleu, IdentityScoresOne) {
  EXPECT_NEAR(bleu(kReference, kReference), 1.0, 1e-9);
}

TEST(Bleu, EmptyCandidateScoresZero) {
  EXPECT_EQ(bleu("", kReference), 0.0);
  EXPECT_EQ(bleu(kReference, ""), 0.0);
  EXPECT_EQ(bleu("", ""), 0.0);
}

TEST(Bleu, DisjointTextNearZero) {
  EXPECT_LT(bleu("completely unrelated words appear here", kReference), 0.05);
}

TEST(Bleu, ScoreWithinUnitInterval) {
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto candidate =
        text::scramble_words(kReference, 0.05 * i, rng);
    const double score = bleu(candidate, kReference);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(Bleu, PaperExampleScrambledSentenceScoresLow) {
  // Paper §2.2: the scrambled gravitational-force sentence gets BLEU ~0.32.
  const char* scrambled =
      "The gravitational force inversely masses the proportional distance "
      "between two products and is directly proportional to the square of "
      "objects.";
  const double score = bleu(scrambled, kReference);
  EXPECT_GT(score, 0.1);
  EXPECT_LT(score, 0.55);
}

TEST(Bleu, BrevityPenaltyAppliesToShortCandidates) {
  const auto ref_tokens = text::tokenize(kReference);
  const std::vector<std::string> half(ref_tokens.begin(),
                                      ref_tokens.begin() + ref_tokens.size() / 2);
  const auto result = bleu_tokens(half, ref_tokens);
  EXPECT_LT(result.brevity_penalty, 1.0);
  // Precisions are perfect (it is a prefix), so the gap is the penalty.
  EXPECT_NEAR(result.precisions[0], 1.0, 1e-9);
}

TEST(Bleu, NoSmoothingZeroesOnMissingOrder) {
  BleuOptions options;
  options.smoothing_k = 0.0;
  // Candidate shares unigrams but no 4-grams.
  EXPECT_EQ(bleu("masses distance force the", kReference, options), 0.0);
}

TEST(Bleu, MonotoneUnderIncreasingCharNoise) {
  util::Rng rng(42);
  double prev = 1.1;
  for (double rate : {0.0, 0.05, 0.15, 0.35}) {
    util::Rng local(7);  // same noise stream per rate level
    const auto candidate = text::substitute_chars(kReference, rate, local);
    const double score = bleu(candidate, kReference);
    EXPECT_LE(score, prev + 0.05);  // allow small non-monotonic wiggle
    prev = score;
  }
}

// -------------------------------------------------------------- ROUGE ----

TEST(Rouge, IdentityScoresOne) {
  const auto s = rouge_l(kReference, kReference);
  EXPECT_NEAR(s.f1, 1.0, 1e-9);
  EXPECT_NEAR(s.precision, 1.0, 1e-9);
  EXPECT_NEAR(s.recall, 1.0, 1e-9);
}

TEST(Rouge, EmptyCases) {
  EXPECT_EQ(rouge_l("", kReference).f1, 0.0);
  EXPECT_EQ(rouge_l(kReference, "").f1, 0.0);
}

TEST(Rouge, RougeNIdentity) {
  for (std::size_t n : {1U, 2U, 3U}) {
    EXPECT_NEAR(rouge_n(kReference, kReference, n).f1, 1.0, 1e-9);
  }
}

TEST(Rouge, PaperExampleScrambledScoresHigh) {
  // Paper §2.2: ROUGE ~0.82 for the incoherent permutation — the metric's
  // known blindness to word order at the unigram level.
  const char* scrambled =
      "The gravitational force inversely masses the proportional distance "
      "between two products and is directly proportional to the square of "
      "objects.";
  EXPECT_GT(rouge_n(scrambled, kReference, 1).f1, 0.75);
}

TEST(Rouge, LcsRespectsOrder) {
  // Same bag of words, reversed order: ROUGE-1 high, ROUGE-L lower.
  const std::string ref = "alpha beta gamma delta epsilon zeta";
  const std::string rev = "zeta epsilon delta gamma beta alpha";
  EXPECT_NEAR(rouge_n(rev, ref, 1).f1, 1.0, 1e-9);
  EXPECT_LT(rouge_l(rev, ref).f1, 0.5);
}

TEST(Rouge, SubsamplingKeepsIdentityPerfect) {
  // Long identical texts must still score 1.0 after block sampling.
  std::string longtext;
  for (int i = 0; i < 3000; ++i) {
    longtext += "token" + std::to_string(i % 97) + " ";
  }
  EXPECT_NEAR(rouge_l(longtext, longtext, 1000).f1, 1.0, 1e-9);
}

TEST(Rouge, PrecisionRecallAsymmetry) {
  const std::string ref = "a b c d e f g h";
  const std::string partial = "a b c d";
  const auto s = rouge_l(partial, ref);
  EXPECT_NEAR(s.precision, 1.0, 1e-9);
  EXPECT_NEAR(s.recall, 0.5, 1e-9);
}

// ------------------------------------------------------ edit distance ----

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3U);
  EXPECT_EQ(levenshtein("", "abc"), 3U);
  EXPECT_EQ(levenshtein("abc", ""), 3U);
  EXPECT_EQ(levenshtein("abc", "abc"), 0U);
}

TEST(Levenshtein, PaperExampleHyperHypo) {
  // Paper §2.2: edit distance between the thyroid terms is 2.
  EXPECT_EQ(levenshtein("hyperthyroidism", "hypothyroidism"), 2U);
}

TEST(Levenshtein, Symmetric) {
  EXPECT_EQ(levenshtein("abcdef", "azced"), levenshtein("azced", "abcdef"));
}

TEST(LevenshteinBanded, MatchesExactWithinBand) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a, b;
    const auto len = 5 + rng.below(40);
    for (std::size_t i = 0; i < len; ++i) {
      a += static_cast<char>('a' + rng.below(4));
      b += static_cast<char>('a' + rng.below(4));
    }
    const std::size_t exact = levenshtein(a, b);
    const std::size_t banded = levenshtein_banded(a, b, a.size() + b.size());
    EXPECT_EQ(banded, exact) << "a=" << a << " b=" << b;
  }
}

TEST(LevenshteinBanded, CutsOffBeyondBand) {
  const std::string a(100, 'a');
  const std::string b(100, 'b');
  EXPECT_EQ(levenshtein_banded(a, b, 10), 11U);
}

TEST(LevenshteinBanded, LengthGapShortCircuits) {
  const std::string a(1000, 'a');
  EXPECT_EQ(levenshtein_banded(a, "a", 5), 6U);
}

TEST(Car, IdentityIsOne) {
  EXPECT_EQ(character_accuracy(kReference, kReference), 1.0);
}

TEST(Car, EmptyCandidateIsZero) {
  EXPECT_EQ(character_accuracy("", kReference), 0.0);
}

TEST(Car, EmptyReferenceEdge) {
  EXPECT_EQ(character_accuracy("", ""), 1.0);
  EXPECT_EQ(character_accuracy("x", ""), 0.0);
}

TEST(Car, DegradesWithNoise) {
  util::Rng rng(9);
  const auto light = text::substitute_chars(kReference, 0.02, rng);
  const auto heavy = text::substitute_chars(kReference, 0.30, rng);
  EXPECT_GT(character_accuracy(light, kReference),
            character_accuracy(heavy, kReference));
}

TEST(Car, NeverNegative) {
  EXPECT_GE(character_accuracy("zzzzzz", kReference), 0.0);
}

// ------------------------------------------------------------- scores ----

TEST(Scores, PerfectParseScoresPerfect) {
  const std::vector<std::string> pages = {"page one text here",
                                          "page two text here"};
  const auto s = score_document(pages, pages);
  EXPECT_EQ(s.coverage, 1.0);
  EXPECT_NEAR(s.bleu, 1.0, 1e-9);
  EXPECT_NEAR(s.car, 1.0, 1e-9);
  EXPECT_GT(s.tokens, 0U);
}

TEST(Scores, DroppedPageReducesCoverage) {
  const std::vector<std::string> ref = {"page one content words",
                                        "page two content words"};
  const std::vector<std::string> cand = {"page one content words", ""};
  const auto s = score_document(cand, ref);
  EXPECT_NEAR(s.coverage, 0.5, 1e-12);
  EXPECT_LT(s.bleu, 1.0);
}

TEST(Scores, ShortCandidateVectorCountsAsDrops) {
  const std::vector<std::string> ref = {"a b c", "d e f", "g h i"};
  const std::vector<std::string> cand = {"a b c"};
  EXPECT_NEAR(score_document(cand, ref).coverage, 1.0 / 3.0, 1e-12);
}

TEST(Scores, EmptyReferenceEdge) {
  const std::vector<std::string> none;
  EXPECT_EQ(score_document(none, none).coverage, 1.0);
}

TEST(CorpusScoresTest, AggregatesMeans) {
  CorpusScores corpus(0.4);
  corpus.add({1.0, 0.6, 0.7, 0.8, 100});
  corpus.add({0.5, 0.2, 0.3, 0.4, 50});
  EXPECT_EQ(corpus.count(), 2U);
  EXPECT_NEAR(corpus.coverage(), 0.75, 1e-12);
  EXPECT_NEAR(corpus.bleu(), 0.4, 1e-12);
  // Only the first document exceeds the 0.4 BLEU acceptance threshold.
  EXPECT_NEAR(corpus.accepted_tokens(), 100.0 / 150.0, 1e-12);
}

TEST(CorpusScoresTest, EmptyCorpus) {
  CorpusScores corpus;
  EXPECT_EQ(corpus.count(), 0U);
  EXPECT_EQ(corpus.accepted_tokens(), 0.0);
}

// -------------------------------------------- property sweeps (TEST_P) ----

/// BLEU/ROUGE/CAR must all degrade (weakly) as word-drop severity rises.
class MetricMonotonicityTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(DropRates, MetricMonotonicityTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.6));

TEST_P(MetricMonotonicityTest, DamagedTextScoresBelowIdentity) {
  util::Rng rng(31);
  // Long enough that even a 5% drop rate removes some words almost surely.
  std::string reference;
  for (int i = 0; i < 8; ++i) {
    reference += kReference;
    reference += ' ';
  }
  const std::string_view kReference = reference;
  const auto damaged = text::drop_words(kReference, GetParam(), rng);
  EXPECT_LT(bleu(damaged, kReference), 1.0);
  EXPECT_LT(rouge_l(damaged, kReference).f1, 1.0 + 1e-12);
  EXPECT_LE(character_accuracy(damaged, kReference), 1.0);
  EXPECT_GE(bleu(damaged, kReference), 0.0);
}

/// All metrics stay in [0,1] for arbitrary corruption cocktails.
class MetricRangeTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Cocktails, MetricRangeTest,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(0.2, 0.0, 0.1),
                      std::make_tuple(0.0, 0.5, 0.0),
                      std::make_tuple(0.3, 0.3, 0.3),
                      std::make_tuple(0.8, 0.8, 0.8)));

TEST_P(MetricRangeTest, ScoresBounded) {
  const auto [sub, scramble, drop] = GetParam();
  util::Rng rng(17);
  auto candidate = text::substitute_chars(kReference, sub, rng);
  candidate = text::scramble_words(candidate, scramble, rng);
  candidate = text::drop_words(candidate, drop, rng);
  const double b = bleu(candidate, kReference);
  const auto r = rouge_l(candidate, kReference);
  const double c = character_accuracy(candidate, kReference);
  EXPECT_GE(b, 0.0); EXPECT_LE(b, 1.0);
  EXPECT_GE(r.f1, 0.0); EXPECT_LE(r.f1, 1.0);
  EXPECT_GE(c, 0.0); EXPECT_LE(c, 1.0);
}

}  // namespace
}  // namespace adaparse::metrics
