// Tests for the ml module: sparse ops, feature hashing, encoders, linear
// models, MLP, and the DPO adapter.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dpo.hpp"
#include "ml/encoder.hpp"
#include "ml/feature_hash.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/sparse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace adaparse::ml {
namespace {

// -------------------------------------------------------------- sparse ----

TEST(Sparse, CompactMergesDuplicates) {
  SparseVec v = {{3, 1.0F}, {1, 2.0F}, {3, 0.5F}};
  compact(v);
  ASSERT_EQ(v.size(), 2U);
  EXPECT_EQ(v[0].index, 1U);
  EXPECT_EQ(v[1].index, 3U);
  EXPECT_FLOAT_EQ(v[1].value, 1.5F);
}

TEST(Sparse, L2NormalizeUnitNorm) {
  SparseVec v = {{0, 3.0F}, {1, 4.0F}};
  l2_normalize(v);
  double norm = 0.0;
  for (const auto& f : v) norm += f.value * f.value;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(Sparse, L2NormalizeZeroVectorNoOp) {
  SparseVec v = {{0, 0.0F}};
  l2_normalize(v);
  EXPECT_EQ(v[0].value, 0.0F);
}

TEST(Sparse, DotAndAxpy) {
  SparseVec v = {{0, 1.0F}, {2, 2.0F}};
  std::vector<double> w = {0.5, 9.0, 0.25};
  EXPECT_NEAR(dot(v, w), 0.5 + 0.5, 1e-12);
  axpy(2.0, v, w);
  EXPECT_NEAR(w[0], 2.5, 1e-12);
  EXPECT_NEAR(w[2], 4.25, 1e-12);
  EXPECT_NEAR(w[1], 9.0, 1e-12);
}

TEST(Sparse, DotIgnoresOutOfRangeIndices) {
  SparseVec v = {{100, 1.0F}};
  std::vector<double> w = {1.0};
  EXPECT_EQ(dot(v, w), 0.0);
}

// ------------------------------------------------------- feature hash ----

TEST(FeatureHash, DeterministicAndNormalized) {
  HashOptions options;
  const auto a = hash_text("the quick brown fox", options);
  const auto b = hash_text("the quick brown fox", options);
  ASSERT_EQ(a.size(), b.size());
  double norm = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].value, b[i].value);
    norm += a[i].value * a[i].value;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(FeatureHash, IndicesWithinDim) {
  HashOptions options;
  options.dim = 256;
  for (const auto& f : hash_text("some words and more words", options)) {
    EXPECT_LT(f.index, 256U);
  }
}

TEST(FeatureHash, SaltDecorrelates) {
  HashOptions a, b;
  b.salt = 999;
  const auto va = hash_text("identical input", a);
  const auto vb = hash_text("identical input", b);
  // At least some indices must differ.
  bool differs = va.size() != vb.size();
  for (std::size_t i = 0; !differs && i < va.size(); ++i) {
    differs = va[i].index != vb[i].index;
  }
  EXPECT_TRUE(differs);
}

TEST(FeatureHash, SimilarTextsShareMoreMass) {
  HashOptions options;
  auto cos = [&](const SparseVec& x, const SparseVec& y) {
    double s = 0.0;
    for (const auto& fx : x) {
      for (const auto& fy : y) {
        if (fx.index == fy.index) s += fx.value * fy.value;
      }
    }
    return s;
  };
  const auto base = hash_text("the model predicts parser accuracy", options);
  const auto near = hash_text("the model predicts parser quality", options);
  const auto far = hash_text("unrelated chemistry compounds dissolve", options);
  EXPECT_GT(cos(base, near), cos(base, far));
}

TEST(FeatureHash, CategoricalStable) {
  const auto a = hash_categorical("producer", "pdfTeX", 1024, 7);
  const auto b = hash_categorical("producer", "pdfTeX", 1024, 7);
  EXPECT_EQ(a.index, b.index);
  const auto c = hash_categorical("producer", "scanner", 1024, 7);
  EXPECT_NE(a.index, c.index);
}

TEST(FeatureHash, TruncatesLongInput) {
  HashOptions options;
  options.max_chars = 64;
  std::string longtext(100000, 'a');
  longtext += " zzz_unique_tail";
  const auto v = hash_text(longtext, options);
  EXPECT_LT(v.size(), 80U);  // only the head contributed
}

// ------------------------------------------------------------ encoder ----

TEST(Encoder, FactoryProducesAllArchs) {
  for (EncoderArch arch :
       {EncoderArch::kSciBert, EncoderArch::kBert, EncoderArch::kMiniLm,
        EncoderArch::kSpecter, EncoderArch::kFastText}) {
    const auto encoder = make_encoder(arch);
    ASSERT_NE(encoder, nullptr);
    EXPECT_GT(encoder->dim(), 0U);
    EXPECT_GT(encoder->inference_cost_seconds(), 0.0);
  }
}

TEST(Encoder, CapacityOrdering) {
  EXPECT_GT(make_encoder(EncoderArch::kSciBert)->dim(),
            make_encoder(EncoderArch::kMiniLm)->dim());
}

TEST(Encoder, SciBertSeesBodyText) {
  const auto scibert = make_encoder(EncoderArch::kSciBert);
  EncoderInput with_body;
  with_body.text = "some body text with \\latex{residue}";
  EncoderInput without_body;
  EXPECT_GT(scibert->encode(with_body).size(),
            scibert->encode(without_body).size());
}

TEST(Encoder, SpecterIgnoresBodyText) {
  const auto specter = make_encoder(EncoderArch::kSpecter);
  doc::Metadata meta;
  EncoderInput a;
  a.text = "body text one";
  a.title = "Title";
  a.metadata = &meta;
  EncoderInput b;
  b.text = "completely different body";
  b.title = "Title";
  b.metadata = &meta;
  const auto va = specter->encode(a);
  const auto vb = specter->encode(b);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].index, vb[i].index);
  }
}

// -------------------------------------------------------------- linear ----

/// Builds a noisy linear regression problem over sparse inputs.
struct SyntheticRegression {
  std::vector<SparseVec> inputs;
  std::vector<std::vector<double>> targets;
};

SyntheticRegression make_regression(std::size_t n, std::uint32_t dim,
                                    std::size_t outputs, double noise,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> w(outputs, std::vector<double>(dim));
  for (auto& row : w) {
    for (auto& x : row) x = rng.normal();
  }
  SyntheticRegression data;
  for (std::size_t i = 0; i < n; ++i) {
    SparseVec v;
    for (int k = 0; k < 8; ++k) {
      v.push_back({static_cast<std::uint32_t>(rng.below(dim)),
                   static_cast<float>(rng.uniform(0.1, 1.0))});
    }
    compact(v);
    l2_normalize(v);
    std::vector<double> y(outputs);
    for (std::size_t o = 0; o < outputs; ++o) {
      y[o] = dot(v, w[o]) + rng.normal(0.0, noise);
    }
    data.inputs.push_back(std::move(v));
    data.targets.push_back(std::move(y));
  }
  return data;
}

TEST(Regressor, LearnsLinearSignal) {
  const auto data = make_regression(600, 128, 2, 0.05, 5);
  MultiOutputRegressor model(128, 2);
  TrainOptions options;
  options.epochs = 30;
  model.fit(data.inputs, data.targets, options);
  std::vector<double> truth, pred;
  for (std::size_t i = 0; i < data.inputs.size(); ++i) {
    truth.push_back(data.targets[i][0]);
    pred.push_back(model.predict(data.inputs[i])[0]);
  }
  EXPECT_GT(util::r_squared(truth, pred), 0.7);
}

TEST(Regressor, PredictOneMatchesPredict) {
  const auto data = make_regression(50, 64, 3, 0.1, 6);
  MultiOutputRegressor model(64, 3);
  model.fit(data.inputs, data.targets);
  const auto full = model.predict(data.inputs[0]);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(model.predict_one(data.inputs[0], k), full[k]);
  }
}

TEST(Regressor, FitRejectsSizeMismatch) {
  MultiOutputRegressor model(8, 1);
  std::vector<SparseVec> inputs(2);
  std::vector<std::vector<double>> targets(1, std::vector<double>{0.0});
  EXPECT_THROW(model.fit(inputs, targets), std::invalid_argument);
}

TEST(Logistic, SeparatesLinearlySeparableData) {
  util::Rng rng(11);
  std::vector<SparseVec> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const bool positive = rng.chance(0.5);
    SparseVec v = {{positive ? 0U : 1U, 1.0F},
                   {static_cast<std::uint32_t>(2 + rng.below(30)), 0.5F}};
    compact(v);
    l2_normalize(v);
    inputs.push_back(v);
    labels.push_back(positive ? 1 : 0);
  }
  LogisticRegression model(32);
  TrainOptions options;
  options.epochs = 20;
  model.fit(inputs, labels, options);
  int correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    correct += model.predict(inputs[i]) == labels[i] ? 1 : 0;
  }
  EXPECT_GT(correct, 380);
}

TEST(Logistic, ProbabilitiesInUnitInterval) {
  LogisticRegression model(4);
  SparseVec v = {{0, 1.0F}};
  const double p = model.predict_proba(v);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_NEAR(p, 0.5, 1e-9);  // untrained model is indifferent
}

TEST(Sigmoid, SymmetryAndRange) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_GT(sigmoid(30.0), 0.999);
  EXPECT_LT(sigmoid(-30.0), 0.001);
}

TEST(Svc, MulticlassSeparation) {
  util::Rng rng(13);
  std::vector<SparseVec> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 600; ++i) {
    const int cls = static_cast<int>(rng.below(3));
    SparseVec v = {{static_cast<std::uint32_t>(cls), 1.0F},
                   {static_cast<std::uint32_t>(3 + rng.below(20)), 0.4F}};
    compact(v);
    l2_normalize(v);
    inputs.push_back(v);
    labels.push_back(cls);
  }
  LinearSvc model(32, 3);
  TrainOptions options;
  options.epochs = 15;
  model.fit(inputs, labels, options);
  int correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    correct += model.predict(inputs[i]) == labels[i] ? 1 : 0;
  }
  EXPECT_GT(correct, 550);
}

TEST(Svc, DecisionVectorHasOneScorePerClass) {
  LinearSvc model(16, 5);
  SparseVec v = {{1, 1.0F}};
  EXPECT_EQ(model.decision(v).size(), 5U);
}

// ---------------------------------------------------------------- mlp ----

TEST(MlpTest, LearnsNonlinearFunction) {
  // XOR-like target over two indicator features — impossible for a linear
  // model, learnable by one hidden layer.
  util::Rng rng(17);
  std::vector<SparseVec> inputs;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 800; ++i) {
    const bool a = rng.chance(0.5);
    const bool b = rng.chance(0.5);
    SparseVec v;
    if (a) v.push_back({0, 1.0F});
    if (b) v.push_back({1, 1.0F});
    v.push_back({2, 1.0F});  // bias-ish always-on feature
    inputs.push_back(v);
    targets.push_back({a != b ? 1.0 : 0.0});
  }
  Mlp model(8, 16, 1);
  TrainOptions options;
  options.epochs = 60;
  options.learning_rate = 0.3;
  model.fit(inputs, targets, options);
  int correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double p = model.predict(inputs[i])[0];
    correct += (p > 0.5) == (targets[i][0] > 0.5) ? 1 : 0;
  }
  EXPECT_GT(correct, 700);
}

TEST(MlpTest, OutputShape) {
  Mlp model(8, 4, 3);
  EXPECT_EQ(model.predict({{0, 1.0F}}).size(), 3U);
  EXPECT_EQ(model.hidden_size(), 4U);
  EXPECT_EQ(model.outputs(), 3U);
}

// ---------------------------------------------------------------- dpo ----

TEST(Dpo, AdapterStartsAtReference) {
  MultiOutputRegressor base(32, 3);
  DpoOptions options;
  DpoAdapter adapter(base, options);
  SparseVec x = {{1, 0.7F}, {5, 0.7F}};
  const auto d = adapter.delta(x);
  for (double v : d) EXPECT_EQ(v, 0.0);
  const auto base_pred = base.predict(x);
  const auto adapted = adapter.predict(x);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(adapted[k], base_pred[k]);
  }
}

TEST(Dpo, LearnsConsistentPreference) {
  // Every pair prefers output 2 over output 0: after DPO, the adapted score
  // of 2 must exceed 0 on the training inputs.
  MultiOutputRegressor base(64, 4);
  util::Rng rng(19);
  std::vector<PreferencePair> pairs;
  for (int i = 0; i < 200; ++i) {
    PreferencePair pair;
    for (int k = 0; k < 6; ++k) {
      pair.x.push_back({static_cast<std::uint32_t>(rng.below(64)),
                        static_cast<float>(rng.uniform(0.2, 1.0))});
    }
    compact(pair.x);
    l2_normalize(pair.x);
    pair.winner = 2;
    pair.loser = 0;
    pairs.push_back(std::move(pair));
  }
  DpoOptions options;
  options.epochs = 40;
  DpoAdapter adapter(base, options);
  adapter.fit(pairs);
  int consistent = 0;
  for (const auto& pair : pairs) {
    const auto scores = adapter.predict(pair.x);
    consistent += scores[2] > scores[0] ? 1 : 0;
  }
  EXPECT_GT(consistent, 190);
  EXPECT_LT(adapter.last_loss(), std::log(2.0));  // better than indifferent
}

TEST(Dpo, ContextDependentPreference) {
  // Preference flips with an input feature: DPO must use the features, not
  // just per-output biases.
  MultiOutputRegressor base(16, 2);
  std::vector<PreferencePair> pairs;
  for (int i = 0; i < 300; ++i) {
    PreferencePair pair;
    const bool ctx = i % 2 == 0;
    pair.x.push_back({ctx ? 0U : 1U, 1.0F});
    pair.winner = ctx ? 0U : 1U;
    pair.loser = ctx ? 1U : 0U;
    pairs.push_back(std::move(pair));
  }
  DpoOptions options;
  options.epochs = 60;
  options.learning_rate = 0.25;
  DpoAdapter adapter(base, options);
  adapter.fit(pairs);
  int consistent = 0;
  for (const auto& pair : pairs) {
    const auto scores = adapter.predict(pair.x);
    consistent += scores[pair.winner] > scores[pair.loser] ? 1 : 0;
  }
  EXPECT_GT(consistent, 280);
}

TEST(Dpo, EmptyPairsIsNoOp) {
  MultiOutputRegressor base(8, 2);
  DpoAdapter adapter(base, {});
  adapter.fit({});
  SparseVec x = {{0, 1.0F}};
  EXPECT_EQ(adapter.delta(x)[0], 0.0);
}

}  // namespace
}  // namespace adaparse::ml

// ---------------------------------------------------------- serialize ----

#include "ml/serialize.hpp"

namespace adaparse::ml {
namespace {

TEST(Serialize, RegressorRoundTrip) {
  const auto data = make_regression(100, 64, 3, 0.05, 31);
  MultiOutputRegressor model(64, 3);
  model.fit(data.inputs, data.targets);
  const auto restored = load_regressor(save_regressor(model));
  EXPECT_EQ(restored.input_dim(), model.input_dim());
  EXPECT_EQ(restored.outputs(), model.outputs());
  for (std::size_t i = 0; i < 20; ++i) {
    const auto a = model.predict(data.inputs[i]);
    const auto b = restored.predict(data.inputs[i]);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9);
    }
  }
}

TEST(Serialize, UntrainedModelRoundTrips) {
  MultiOutputRegressor model(16, 2);
  const auto restored = load_regressor(save_regressor(model));
  SparseVec x = {{3, 1.0F}};
  EXPECT_EQ(restored.predict(x)[0], model.predict(x)[0]);
}

TEST(Serialize, RejectsWrongFormat) {
  EXPECT_THROW(load_regressor("{}"), std::runtime_error);
  EXPECT_THROW(load_regressor(R"({"format":"other"})"), std::runtime_error);
  EXPECT_THROW(load_regressor("not json"), std::runtime_error);
}

TEST(Serialize, RejectsOutOfRangeIndex) {
  MultiOutputRegressor model(4, 1);
  std::string text = save_regressor(model);
  // Inject a weight index beyond input_dim.
  text.replace(text.find("\"weights\":[]"), 12, "\"weights\":[[99,1.0]]");
  EXPECT_THROW(load_regressor(text), std::runtime_error);
}

TEST(Serialize, SparseStorageOmitsZeros) {
  MultiOutputRegressor model(1000, 1);
  model.weights(0)[7] = 1.5;
  const std::string text = save_regressor(model);
  // One non-zero: the serialized form stays small.
  EXPECT_LT(text.size(), 300U);
}

}  // namespace
}  // namespace adaparse::ml
