// Tests for the core module: CLS I rules, CLS II classifier, the accuracy
// predictor, the alpha-budget optimizer, and the AdaParse engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/budget.hpp"
#include "core/cls1.hpp"
#include "core/cls2.hpp"
#include "core/engine.hpp"
#include "core/predictor.hpp"
#include "core/training.hpp"
#include "doc/generator.hpp"
#include "parsers/registry.hpp"
#include "text/corrupt.hpp"
#include "util/rng.hpp"

namespace adaparse::core {
namespace {

// --------------------------------------------------------------- CLS I ----

TEST(Cls1, AcceptsHealthyProse) {
  std::string page;
  for (int i = 0; i < 30; ++i) {
    page += "The measured distribution shows significant structure across "
            "samples and conditions. ";
  }
  const auto verdict = cls1_validate(page, 1);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
}

TEST(Cls1, RejectsEmptyExtraction) {
  const auto verdict = cls1_validate("", 5);
  EXPECT_FALSE(verdict.valid);
  EXPECT_EQ(verdict.reason, "too_few_chars");
}

TEST(Cls1, RejectsWhitespaceBlowup) {
  std::string page;
  for (int i = 0; i < 2000; ++i) page += "a    \n  ";
  const auto verdict = cls1_validate(page, 1);
  EXPECT_FALSE(verdict.valid);
}

TEST(Cls1, RejectsScrambledText) {
  std::string base;
  for (int i = 0; i < 60; ++i) {
    base += "comprehensive experimental measurements demonstrate variation ";
  }
  util::Rng rng(3);
  const auto scrambled = text::scramble_words(base, 0.9, rng);
  const auto verdict = cls1_validate(scrambled, 1);
  EXPECT_FALSE(verdict.valid);
}

TEST(Cls1, RejectsDegenerateRepetition) {
  const std::string page(5000, 'a');
  EXPECT_FALSE(cls1_validate(page, 1).valid);
}

TEST(Cls1, RejectsMojibakeStorm) {
  std::string base;
  for (int i = 0; i < 80; ++i) {
    base += "normal scientific words with content here ";
  }
  util::Rng rng(5);
  const auto damaged = text::mojibake(base, 0.2, rng);
  EXPECT_FALSE(cls1_validate(damaged, 1).valid);
}

TEST(Cls1, PerPageThresholdScalesWithPages) {
  std::string one_page_worth;
  for (int i = 0; i < 12; ++i) {
    one_page_worth += "adequate text for a single page of content here ";
  }
  EXPECT_TRUE(cls1_validate(one_page_worth, 1).valid);
  EXPECT_FALSE(cls1_validate(one_page_worth, 20).valid);
}

TEST(Cls1, CustomRulesRespected) {
  Cls1Rules lax;
  lax.min_chars_per_page = 1.0;
  lax.min_alpha_ratio = 0.0;
  lax.min_entropy = 0.0;
  EXPECT_TRUE(cls1_validate("tiny ok", 1, lax).valid);
}

// --------------------------------------------------------------- CLS II ----

TEST(Cls2, LearnsProducerSignal) {
  // Synthetic truth: scanner/ghostscript docs benefit from re-parsing.
  util::Rng rng(7);
  std::vector<doc::Metadata> metas;
  std::vector<int> labels;
  for (int i = 0; i < 800; ++i) {
    doc::Metadata meta;
    meta.producer = static_cast<doc::ProducerTool>(rng.below(6));
    meta.year = 2015 + static_cast<int>(rng.below(10));
    meta.num_pages = 4 + static_cast<int>(rng.below(12));
    const bool improvable =
        meta.producer == doc::ProducerTool::kScannerOcr ||
        meta.producer == doc::ProducerTool::kGhostscript;
    metas.push_back(meta);
    labels.push_back(improvable ? 1 : 0);
  }
  Cls2Improver improver;
  ml::TrainOptions options;
  options.epochs = 20;
  improver.fit(metas, labels, options);
  int correct = 0;
  for (std::size_t i = 0; i < metas.size(); ++i) {
    correct += improver.improvement_likely(metas[i]) == (labels[i] == 1);
  }
  EXPECT_GT(correct, 700);
}

TEST(Cls2, ProbabilityBounded) {
  Cls2Improver improver;
  doc::Metadata meta;
  const double p = improver.improvement_probability(meta);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// --------------------------------------------------------------- budget ----

TEST(Budget, SelectsTopGains) {
  const std::vector<double> gains = {0.1, 0.5, 0.3, 0.05, 0.4};
  const auto selected = select_budgeted(gains, 0.4);  // floor(0.4*5)=2
  EXPECT_EQ(selected, (std::vector<std::size_t>{1, 4}));
}

TEST(Budget, ZeroAlphaSelectsNothing) {
  EXPECT_TRUE(select_budgeted({0.9, 0.8}, 0.0).empty());
}

TEST(Budget, AlphaOneSelectsAllPositive) {
  const auto selected = select_budgeted({0.1, -0.2, 0.3}, 1.0);
  EXPECT_EQ(selected, (std::vector<std::size_t>{0, 2}));
}

TEST(Budget, NegativeGainsSkippedByDefault) {
  EXPECT_TRUE(select_budgeted({-0.1, -0.5, -0.2}, 1.0).empty());
  EXPECT_EQ(select_budgeted({-0.1, -0.5, -0.2}, 1.0, false).size(), 3U);
}

TEST(Budget, NeverExceedsFloorAlphaN) {
  util::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> gains(1 + rng.below(200));
    for (auto& g : gains) g = rng.uniform(-0.2, 0.6);
    const double alpha = rng.uniform(0.0, 1.0);
    const auto selected = select_budgeted(gains, alpha);
    EXPECT_LE(selected.size(),
              static_cast<std::size_t>(alpha * static_cast<double>(gains.size())));
  }
}

TEST(Budget, BatchedRespectsPerBatchCap) {
  std::vector<double> gains(1000, 0.5);
  const auto selected = select_budgeted_batched(gains, 0.05, 256);
  // floor(0.05*256)=12 per full batch; last partial batch floor(0.05*232)=11.
  EXPECT_EQ(selected.size(), 12U * 3 + 11U);
  for (std::size_t i : selected) EXPECT_LT(i, gains.size());
}

TEST(Budget, BatchedMatchesGlobalOnUniformGains) {
  // With identical gains the batched solution loses at most one floor()
  // rounding per batch (4 batches of 128 at alpha=0.1 -> up to 4 * 0.3).
  std::vector<double> gains(512, 0.3);
  const double global =
      selection_objective(gains, select_budgeted(gains, 0.1));
  const double batched =
      selection_objective(gains, select_budgeted_batched(gains, 0.1, 128));
  EXPECT_LE(batched, global + 1e-9);
  EXPECT_GE(batched, global - 4 * 0.3 - 1e-9);
}

TEST(Budget, BatchedGapSmallOnRandomGains) {
  // Paper App. C: the per-batch optimality gap is negligible for large k.
  util::Rng rng(13);
  std::vector<double> gains(4096);
  for (auto& g : gains) g = rng.uniform(0.0, 0.5);
  const double global =
      selection_objective(gains, select_budgeted(gains, 0.05));
  const double batched = selection_objective(
      gains, select_budgeted_batched(gains, 0.05, 256));
  EXPECT_GT(batched, 0.9 * global);
}

TEST(Budget, AlphaForBudgetFormula) {
  // n=100 docs, cheap 1s, expensive 11s, budget 200s:
  // alpha = (200 - 100) / (100 * 10) = 0.1.
  EXPECT_NEAR(alpha_for_budget(200.0, 100, 1.0, 11.0), 0.1, 1e-12);
  // Budget below all-cheap cost -> 0.
  EXPECT_EQ(alpha_for_budget(50.0, 100, 1.0, 11.0), 0.0);
  // Huge budget -> clamped to 1.
  EXPECT_EQ(alpha_for_budget(1e9, 100, 1.0, 11.0), 1.0);
  // Degenerate cost ordering -> 0.
  EXPECT_EQ(alpha_for_budget(100.0, 100, 2.0, 2.0), 0.0);
}

// ------------------------------------------------ predictor + training ----

class TrainedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(doc::benchmark_config(260, 101)).generate());
    test_docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(doc::benchmark_config(120, 202)).generate());
    TrainAdaParseOptions options;
    options.engine.threads = 4;
    options.regression.epochs = 10;
    options.apply_dpo = false;
    bundle_ = new TrainedAdaParse(
        train_adaparse(*train_docs_, nullptr, nullptr, options));
    test_data_ = new TrainingData(build_training_data(*test_docs_, 0.03, 4));
  }
  static void TearDownTestSuite() {
    delete train_docs_;
    delete test_docs_;
    delete bundle_;
    delete test_data_;
    train_docs_ = test_docs_ = nullptr;
    bundle_ = nullptr;
    test_data_ = nullptr;
  }
  static std::vector<doc::Document>* train_docs_;
  static std::vector<doc::Document>* test_docs_;
  static TrainedAdaParse* bundle_;
  static TrainingData* test_data_;
};

std::vector<doc::Document>* TrainedFixture::train_docs_ = nullptr;
std::vector<doc::Document>* TrainedFixture::test_docs_ = nullptr;
TrainedAdaParse* TrainedFixture::bundle_ = nullptr;
TrainingData* TrainedFixture::test_data_ = nullptr;

TEST_F(TrainedFixture, TrainingDataShape) {
  const auto data = build_training_data(
      std::vector<doc::Document>(train_docs_->begin(), train_docs_->begin() + 10),
      0.03, 4);
  ASSERT_EQ(data.examples.size(), 10U);
  for (const auto& example : data.examples) {
    EXPECT_EQ(example.bleu.size(), parsers::kNumParsers);
    for (double b : example.bleu) {
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0);
    }
  }
}

TEST_F(TrainedFixture, PredictorBeatsMeanBaseline) {
  // Paper reports R^2 ~ 40-47% for PyMuPDF/Nougat BLEU prediction.
  const auto r2 = bundle_->predictor->r_squared(test_data_->examples);
  const auto mupdf = static_cast<std::size_t>(parsers::ParserKind::kPyMuPdf);
  const auto nougat = static_cast<std::size_t>(parsers::ParserKind::kNougat);
  EXPECT_GT(r2[mupdf], 0.15);
  EXPECT_GT(r2[nougat], 0.10);
}

TEST_F(TrainedFixture, PredictionsAreFiniteAndOrdered) {
  for (const auto& example : test_data_->examples) {
    const auto p = bundle_->predictor->predict(example);
    ASSERT_EQ(p.size(), parsers::kNumParsers);
    for (double v : p) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(TrainedFixture, EngineRespectsAlphaBudget) {
  EngineConfig config;
  config.alpha = 0.05;
  config.batch_size = 64;
  config.threads = 4;
  const AdaParseEngine engine(config, bundle_->predictor, bundle_->improver);
  const auto decisions = engine.route(*test_docs_);
  std::size_t to_nougat = 0;
  for (const auto& d : decisions) {
    to_nougat += d.chosen == parsers::ParserKind::kNougat ? 1 : 0;
  }
  // ceil cap: floor(0.05*64)=3 per batch of 64.
  const std::size_t batches = (test_docs_->size() + 63) / 64;
  EXPECT_LE(to_nougat, batches * 3);
}

TEST_F(TrainedFixture, FtVariantRoutesToo) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  config.alpha = 0.10;
  config.threads = 4;
  const AdaParseEngine engine(config, nullptr, bundle_->improver);
  const auto decisions = engine.route(*test_docs_);
  EXPECT_EQ(decisions.size(), test_docs_->size());
}

TEST_F(TrainedFixture, RunProducesRecordForEveryDoc) {
  EngineConfig config;
  config.threads = 4;
  config.batch_size = 64;
  const AdaParseEngine engine(config, bundle_->predictor, bundle_->improver);
  const auto output = engine.run(*test_docs_);
  ASSERT_EQ(output.records.size(), test_docs_->size());
  ASSERT_EQ(output.decisions.size(), test_docs_->size());
  EXPECT_EQ(output.stats.total_docs, test_docs_->size());
  EXPECT_EQ(output.stats.accepted_extraction + output.stats.routed_to_nougat +
                output.stats.failed_docs,
            test_docs_->size());
  for (std::size_t i = 0; i < output.records.size(); ++i) {
    EXPECT_EQ(output.records[i].document_id, (*test_docs_)[i].id);
    EXPECT_FALSE(output.records[i].route.empty());
  }
}

TEST_F(TrainedFixture, PlanTasksMirrorsDecisions) {
  EngineConfig config;
  config.threads = 4;
  const AdaParseEngine engine(config, bundle_->predictor, bundle_->improver);
  const auto decisions = engine.route(*test_docs_);
  const auto tasks = engine.plan_tasks(*test_docs_, decisions);
  ASSERT_EQ(tasks.size(), test_docs_->size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool routed =
        decisions[i].chosen == parsers::ParserKind::kNougat;
    EXPECT_EQ(tasks[i].gpu_seconds > 0.0, routed);
    EXPECT_EQ(tasks[i].needs_gpu_model, routed);
    EXPECT_GT(tasks[i].cpu_seconds, 0.0);
  }
}

TEST_F(TrainedFixture, CorruptedDocumentsSurfaceAsFailures) {
  auto docs = *test_docs_;
  docs[0].corrupted = true;
  docs[5].corrupted = true;
  EngineConfig config;
  config.threads = 4;
  const AdaParseEngine engine(config, bundle_->predictor, bundle_->improver);
  const auto output = engine.run(docs);
  EXPECT_EQ(output.stats.failed_docs, 2U);
  EXPECT_EQ(output.records[0].parser, "none");
}

TEST_F(TrainedFixture, DpoChangesSelections) {
  // Build a tiny synthetic preference set that always prefers Nougat, and
  // check that DPO shifts the predictor's Nougat scores upward.
  std::vector<AccuracyPredictor::Preference> preferences;
  for (const auto& example :
       std::vector<RegressionExample>(test_data_->examples.begin(),
                                      test_data_->examples.begin() + 40)) {
    AccuracyPredictor::Preference p;
    p.text = example.text;
    p.title = example.title;
    p.metadata = example.metadata;
    p.winner = parsers::ParserKind::kNougat;
    p.loser = parsers::ParserKind::kPyMuPdf;
    preferences.push_back(std::move(p));
  }
  AccuracyPredictor tuned(ml::make_encoder(ml::EncoderArch::kSciBert));
  ml::TrainOptions fit_options;
  fit_options.epochs = 6;
  tuned.fit(test_data_->examples, fit_options);
  const auto idx_n = static_cast<std::size_t>(parsers::ParserKind::kNougat);
  const auto idx_m = static_cast<std::size_t>(parsers::ParserKind::kPyMuPdf);
  double before_gap = 0.0;
  for (const auto& example : test_data_->examples) {
    const auto p = tuned.predict(example);
    before_gap += p[idx_n] - p[idx_m];
  }
  tuned.apply_dpo(preferences);
  EXPECT_TRUE(tuned.has_dpo());
  double after_gap = 0.0;
  for (const auto& example : test_data_->examples) {
    const auto p = tuned.predict(example);
    after_gap += p[idx_n] - p[idx_m];
  }
  EXPECT_GT(after_gap, before_gap);
}

TEST(Engine, LlmVariantRequiresPredictor) {
  EngineConfig config;
  EXPECT_THROW(AdaParseEngine(config, nullptr, nullptr),
               std::invalid_argument);
}

TEST(Engine, FtVariantRequiresImprover) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  EXPECT_THROW(AdaParseEngine(config, nullptr, nullptr),
               std::invalid_argument);
}

TEST(Engine, VariantNames) {
  EXPECT_STREQ(variant_name(Variant::kFastText), "AdaParse (FT)");
  EXPECT_STREQ(variant_name(Variant::kLlm), "AdaParse (LLM)");
}

}  // namespace
}  // namespace adaparse::core
