// Tests for the fault-tolerant campaign runner: write-ahead manifest
// round-trip and torn-tail policy, crash/resume byte-identical equivalence
// (killed after every shard boundary), per-document retry + poison
// quarantine, corrupt-shard re-staging, torn manifest commits, hedged
// stragglers, and the Prometheus stats surface.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "core/doc_source.hpp"
#include "core/training.hpp"
#include "doc/generator.hpp"
#include "io/fsio.hpp"
#include "io/jsonl.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "util/json.hpp"

namespace adaparse::campaign {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("adaparse_campaign_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// ----------------------------------------------------------- manifest ----

TEST(CampaignManifest, MissingFileYieldsEmptyState) {
  const auto state = load_manifest(fresh_dir("missing") + "/manifest.jsonl");
  EXPECT_FALSE(state.plan.has_value());
  EXPECT_TRUE(state.shards.empty());
  EXPECT_FALSE(state.dropped_torn_tail);
}

TEST(CampaignManifest, RoundTripsEveryRecordType) {
  const std::string dir = fresh_dir("roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  {
    ManifestWriter writer(path);
    PlanRecord plan;
    plan.docs = 7;
    plan.shard_docs = {4, 3};
    plan.fingerprint = "llm|alpha=0.1";
    writer.append(plan);
    QuarantineRecord q;
    q.shard = 1;
    q.doc_id = "doc-0042";
    writer.append(q);
    ShardRecord shard;
    shard.index = 1;
    shard.attempt = 2;
    shard.docs = 3;
    shard.bytes = 999;
    shard.checksum = 0xDEADBEEFCAFEF00DULL;  // checks 64-bit round-trip
    shard.quarantined = 1;
    writer.append(shard);
    FinalRecord fin;
    fin.records = 7;
    fin.checksum = 0xFFFFFFFFFFFFFFFFULL;
    writer.append(fin);
  }
  const auto state = load_manifest(path);
  ASSERT_TRUE(state.plan.has_value());
  EXPECT_EQ(state.plan->docs, 7u);
  EXPECT_EQ(state.plan->shard_docs, (std::vector<std::size_t>{4, 3}));
  EXPECT_EQ(state.plan->fingerprint, "llm|alpha=0.1");
  ASSERT_EQ(state.quarantines.size(), 1u);
  EXPECT_EQ(state.quarantines[0].doc_id, "doc-0042");
  ASSERT_EQ(state.shards.count(1), 1u);
  EXPECT_EQ(state.shards.at(1).attempt, 2u);
  EXPECT_EQ(state.shards.at(1).checksum, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(state.shards.at(1).quarantined, 1u);
  ASSERT_TRUE(state.final_record.has_value());
  EXPECT_EQ(state.final_record->records, 7u);
  EXPECT_EQ(state.final_record->checksum, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_FALSE(state.dropped_torn_tail);
}

TEST(CampaignManifest, TornTailIsDroppedNotFatal) {
  const std::string dir = fresh_dir("torn_tail");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  ShardRecord committed;
  committed.index = 0;
  ShardRecord torn;
  torn.index = 1;
  {
    ManifestWriter writer(path);
    writer.append(committed);
    writer.append_torn(torn);
  }
  const auto state = load_manifest(path);
  EXPECT_TRUE(state.dropped_torn_tail);
  EXPECT_EQ(state.shards.size(), 1u);
  EXPECT_EQ(state.shards.count(0), 1u);
  EXPECT_EQ(state.shards.count(1), 0u);  // the torn commit never happened
}

TEST(CampaignManifest, CorruptNonFinalLineThrows) {
  const std::string dir = fresh_dir("corrupt_middle");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  ShardRecord a;
  a.index = 0;
  ShardRecord b;
  b.index = 1;
  {
    ManifestWriter writer(path);
    writer.append(a);
    writer.append(b);
  }
  // Splice a garbage line *between* the two valid records: mid-journal
  // damage is real corruption, not a recoverable torn tail.
  auto bytes = io::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  const auto first_newline = bytes->find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  bytes->insert(first_newline + 1, "{\"type\":\"shar\n");
  io::write_file_atomic(path, *bytes);
  EXPECT_THROW(load_manifest(path), std::runtime_error);
}

TEST(CampaignManifest, FlippedByteFailsCrc) {
  const std::string dir = fresh_dir("crc");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  ShardRecord a;
  a.index = 0;
  a.docs = 5;
  ShardRecord b;
  b.index = 1;
  {
    ManifestWriter writer(path);
    writer.append(a);
    writer.append(b);
  }
  auto bytes = io::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  // Flip a digit inside the first line's payload; the JSON still parses
  // but the CRC no longer matches → corruption, not a torn tail.
  const auto pos = bytes->find("\"docs\":5");
  ASSERT_NE(pos, std::string::npos);
  (*bytes)[pos + 7] = '6';
  io::write_file_atomic(path, *bytes);
  EXPECT_THROW(load_manifest(path), std::runtime_error);
}

TEST(CampaignManifest, EmptyFileYieldsEmptyStateNotTornTail) {
  const std::string dir = fresh_dir("empty_file");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  std::ofstream(path).close();  // zero bytes: created, never written
  const auto state = load_manifest(path);
  EXPECT_FALSE(state.plan.has_value());
  EXPECT_TRUE(state.shards.empty());
  EXPECT_FALSE(state.dropped_torn_tail);
  EXPECT_EQ(state.valid_prefix_bytes, 0u);
}

TEST(CampaignManifest, FileEndingExactlyAtRecordBoundaryIsFullyValid) {
  const std::string dir = fresh_dir("exact_boundary");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  {
    ManifestWriter writer(path);
    PlanRecord plan;
    plan.docs = 4;
    plan.shard_docs = {4};
    plan.fingerprint = "f";
    writer.append(plan);
    ShardRecord shard;
    shard.index = 0;
    writer.append(shard);
  }
  // A journal whose last byte is the final record's newline is the normal
  // clean-shutdown shape: nothing must be dropped, and the valid prefix
  // must span the whole file (a resume truncates to this offset before
  // appending — an off-by-one would eat the last record).
  const auto state = load_manifest(path);
  EXPECT_FALSE(state.dropped_torn_tail);
  EXPECT_EQ(state.shards.size(), 1u);
  EXPECT_EQ(state.valid_prefix_bytes, fs::file_size(path));
}

TEST(CampaignManifest, DuplicateShardCommitReplaysIdempotently) {
  const std::string dir = fresh_dir("dup_commit");
  fs::create_directories(dir);
  const std::string path = dir + "/manifest.jsonl";
  {
    ManifestWriter writer(path);
    ShardRecord first;
    first.index = 2;
    first.attempt = 0;
    first.checksum = 0x1111;
    writer.append(first);
    // The same shard committed again (e.g. a resume re-executed it after
    // its output file was damaged): replay must be idempotent — one entry,
    // last record wins.
    ShardRecord again;
    again.index = 2;
    again.attempt = 3;
    again.checksum = 0x2222;
    writer.append(again);
  }
  const auto state = load_manifest(path);
  EXPECT_EQ(state.shards.size(), 1u);
  ASSERT_EQ(state.shards.count(2), 1u);
  EXPECT_EQ(state.shards.at(2).attempt, 3u);
  EXPECT_EQ(state.shards.at(2).checksum, 0x2222u);
}

// ------------------------------------------------------------- runner ----

/// Trains one small bundle per process (each ctest case is its own
/// process) and shares one 96-document corpus across cases.
class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto train_docs =
        doc::CorpusGenerator(doc::benchmark_config(160, 404)).generate();
    core::TrainAdaParseOptions options;
    options.engine.threads = 4;
    options.engine.alpha = 0.10;
    options.engine.batch_size = 32;
    options.regression.epochs = 6;
    options.apply_dpo = false;
    bundle_ = new core::TrainedAdaParse(
        core::train_adaparse(train_docs, nullptr, nullptr, options));
    auto config = doc::benchmark_config(96, 1313);
    config.corrupted_fraction = 0.05;  // unreadable docs flow through too
    docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(config).generate());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    delete docs_;
    bundle_ = nullptr;
    docs_ = nullptr;
  }

  static CampaignRunner::SourceFactory source() {
    return [] { return std::make_unique<core::VectorSource>(*docs_); };
  }

  static CampaignConfig base_config(const std::string& name) {
    CampaignConfig config;
    config.dir = fresh_dir(name);
    config.docs_per_shard = 24;  // 96 docs -> 4 shards
    config.workers = 2;
    config.extract_workers = 2;
    config.upgrade_workers = 1;
    config.queue_capacity = 8;
    return config;
  }

  static std::string output_bytes(const CampaignRunner& runner) {
    const auto bytes = io::read_file(runner.output_path());
    EXPECT_TRUE(bytes.has_value()) << runner.output_path();
    return bytes.value_or("");
  }

  /// Uninterrupted, fault-free reference output (computed once per case
  /// that needs it; campaigns are deterministic so this is canonical).
  /// The directory is per-process: ctest runs cases as concurrent
  /// processes, and a shared reference dir would race its own remove_all.
  static const std::string& reference_bytes() {
    static std::string cached = [] {
      CampaignRunner runner(
          *bundle_->llm,
          base_config("reference_" + std::to_string(::getpid())));
      const auto stats = runner.run(source());
      EXPECT_TRUE(stats.completed);
      return output_bytes(runner);
    }();
    return cached;
  }

  static core::TrainedAdaParse* bundle_;
  static std::vector<doc::Document>* docs_;
};

core::TrainedAdaParse* CampaignFixture::bundle_ = nullptr;
std::vector<doc::Document>* CampaignFixture::docs_ = nullptr;

TEST_F(CampaignFixture, CleanRunCompletesAndCommitsEveryShard) {
  CampaignRunner runner(*bundle_->llm, base_config("clean"));
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.shards_total, 4u);
  EXPECT_EQ(stats.shards_committed, 4u);
  EXPECT_EQ(stats.attempts_failed, 0u);
  EXPECT_EQ(stats.docs_processed, 96u);
  EXPECT_EQ(stats.docs_quarantined, 0u);
  const std::string bytes = output_bytes(runner);
  EXPECT_EQ(bytes, reference_bytes());
  // One JSONL record per input document.
  std::istringstream is(bytes);
  EXPECT_EQ(io::read_jsonl(is).size(), 96u);
  // The journal replays to a fully committed campaign.
  const auto state = load_manifest(runner.manifest_path());
  ASSERT_TRUE(state.plan.has_value());
  EXPECT_EQ(state.shards.size(), 4u);
  ASSERT_TRUE(state.final_record.has_value());
  EXPECT_EQ(state.final_record->records, 96u);
}

TEST_F(CampaignFixture, MatchesStandaloneEngineRunWhenShardsAlignWithBatches) {
  auto config = base_config("engine_equiv");
  config.docs_per_shard = 32;  // == batch_size: budget windows align
  CampaignRunner runner(*bundle_->llm, config);
  ASSERT_TRUE(runner.run(source()).completed);
  std::istringstream is(output_bytes(runner));
  const auto campaign_records = io::read_jsonl(is);
  const auto standalone = bundle_->llm->run(*docs_);
  ASSERT_EQ(campaign_records.size(), standalone.records.size());
  for (std::size_t i = 0; i < campaign_records.size(); ++i) {
    EXPECT_EQ(campaign_records[i].to_json().dump(),
              standalone.records[i].to_json().dump())
        << "record " << i << " diverged";
  }
}

TEST_F(CampaignFixture, EmptyCorpusCompletesWithEmptyOutput) {
  static const std::vector<doc::Document> empty;
  auto config = base_config("empty");
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(
      [] { return std::make_unique<core::VectorSource>(empty); });
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.shards_total, 0u);
  EXPECT_EQ(output_bytes(runner), "");
}

/// The acceptance-criteria scenario: kill the runner after every shard
/// boundary, resume, and require byte-identical final output.
class CampaignCrashResume : public CampaignFixture,
                            public ::testing::WithParamInterface<std::size_t> {
};

TEST_P(CampaignCrashResume, ResumedOutputIsByteIdentical) {
  const std::size_t kill_after = GetParam();
  auto config = base_config("kill_" + std::to_string(kill_after));
  config.failures.halt_after_commits = kill_after;
  CampaignRunner first(*bundle_->llm, config);
  const auto halted = first.run(source());
  EXPECT_TRUE(halted.halted);
  EXPECT_FALSE(halted.completed);
  EXPECT_EQ(halted.shards_committed, kill_after);
  EXPECT_FALSE(fs::exists(first.output_path()));

  auto resume_config = config;
  resume_config.failures = FailurePlan{};  // the "new process" sees no kill
  CampaignRunner second(*bundle_->llm, resume_config);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(resumed.shards_resumed_skip, kill_after);
  EXPECT_EQ(resumed.shards_committed, 4u);
  EXPECT_EQ(output_bytes(second), reference_bytes());
}

INSTANTIATE_TEST_SUITE_P(EveryShardBoundary, CampaignCrashResume,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST_F(CampaignFixture, WorkerCrashMidShardRetriesAndRecovers) {
  auto config = base_config("crash_retry");
  config.failures.crashes = {{/*shard=*/2, /*attempt=*/0, /*after_docs=*/5},
                             {/*shard=*/2, /*attempt=*/1, /*after_docs=*/5}};
  config.max_shard_attempts = 5;  // retries well before quarantine kicks in
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.attempts_failed, 2u);
  EXPECT_GE(stats.shards_retried, 2u);
  EXPECT_EQ(stats.docs_quarantined, 0u);
  EXPECT_GT(stats.recovery_wall_seconds, 0.0);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, PoisonDocumentIsQuarantinedDeterministically) {
  const std::string poison_id = (*docs_)[30].id;  // lives in shard 1
  auto config = base_config("poison");
  config.failures.poison_docs = {poison_id};
  config.max_shard_attempts = 2;
  config.workers = 1;  // deterministic attempt interleaving
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.docs_quarantined, 1u);
  EXPECT_EQ(stats.attempts_failed, 2u);

  // The output still has one record per document; the poison document's is
  // the deterministic quarantine stand-in. Every shard *other* than the
  // poisoned one matches the fault-free reference byte for byte (inside
  // shard 1 the quarantine changes the routing windows for its neighbors,
  // so their records legitimately differ).
  std::istringstream is(output_bytes(runner));
  const auto records = io::read_jsonl(is);
  std::istringstream ref_is(reference_bytes());
  const auto reference = io::read_jsonl(ref_is);
  ASSERT_EQ(records.size(), reference.size());
  std::size_t quarantined_seen = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const bool in_poisoned_shard = i >= 24 && i < 48;  // shard 1 = docs 24-47
    if (records[i].document_id == poison_id) {
      EXPECT_EQ(records[i].parser, "quarantined");
      EXPECT_EQ(records[i].route, "campaign:quarantined");
      ++quarantined_seen;
    } else if (!in_poisoned_shard) {
      EXPECT_EQ(records[i].to_json().dump(), reference[i].to_json().dump());
    } else {
      EXPECT_EQ(records[i].document_id, reference[i].document_id);
    }
  }
  EXPECT_EQ(quarantined_seen, 1u);

  // The quarantine decision is journaled: a rerun of the same plan in a
  // fresh directory produces byte-identical output.
  auto again = config;
  again.dir = fresh_dir("poison_again");
  CampaignRunner rerun(*bundle_->llm, again);
  ASSERT_TRUE(rerun.run(source()).completed);
  EXPECT_EQ(output_bytes(rerun), output_bytes(runner));
}

TEST_F(CampaignFixture, KillDuringPoisonRecoveryResumesIdentically) {
  const std::string poison_id = (*docs_)[30].id;
  auto config = base_config("poison_kill");
  config.failures.poison_docs = {poison_id};
  config.failures.halt_after_commits = 2;
  config.max_shard_attempts = 2;
  config.workers = 1;
  CampaignRunner first(*bundle_->llm, config);
  EXPECT_TRUE(first.run(source()).halted);

  auto resume = config;
  resume.failures.halt_after_commits.reset();  // poison persists; kill not
  CampaignRunner second(*bundle_->llm, resume);
  EXPECT_TRUE(second.run(source()).completed);

  auto uninterrupted = config;
  uninterrupted.dir = fresh_dir("poison_uninterrupted");
  uninterrupted.failures.halt_after_commits.reset();
  CampaignRunner full(*bundle_->llm, uninterrupted);
  EXPECT_TRUE(full.run(source()).completed);
  EXPECT_EQ(output_bytes(second), output_bytes(full));
}

TEST_F(CampaignFixture, CorruptShardFileIsRestagedFromSource) {
  auto config = base_config("corrupt_shard");
  config.failures.corrupt_shards = {1};
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.corrupt_shard_recoveries, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, TornManifestCommitIsRedoneOnResume) {
  auto config = base_config("torn");
  config.failures.torn_manifest_shards = {0};
  config.workers = 1;  // shard 0 commits first, deterministically
  CampaignRunner first(*bundle_->llm, config);
  const auto halted = first.run(source());
  EXPECT_TRUE(halted.halted);

  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(*bundle_->llm, resume);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_TRUE(resumed.recovered_torn_manifest);
  EXPECT_EQ(resumed.shards_resumed_skip, 0u);  // the torn commit didn't count
  EXPECT_EQ(output_bytes(second), reference_bytes());

  // The resume truncated the torn fragment before appending, so the
  // journal stays loadable: a third run replays it cleanly and has
  // nothing left to execute.
  CampaignRunner third(*bundle_->llm, resume);
  const auto replay = third.run(source());
  EXPECT_TRUE(replay.completed);
  EXPECT_FALSE(replay.recovered_torn_manifest);
  EXPECT_EQ(replay.attempts_started, 0u);
  EXPECT_EQ(output_bytes(third), reference_bytes());
}

TEST_F(CampaignFixture, CorruptCommittedOutputIsReExecutedOnResume) {
  auto config = base_config("corrupt_out");
  config.failures.halt_after_commits = 2;
  CampaignRunner first(*bundle_->llm, config);
  EXPECT_TRUE(first.run(source()).halted);
  // Damage one committed shard output while the campaign is "down".
  const auto state = load_manifest(first.manifest_path());
  ASSERT_FALSE(state.shards.empty());
  const std::size_t victim = state.shards.begin()->first;
  io::write_file_atomic(first.shard_output_path(victim), "garbage\n");

  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(*bundle_->llm, resume);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_GE(resumed.corrupt_output_recoveries, 1u);
  EXPECT_EQ(output_bytes(second), reference_bytes());
}

TEST_F(CampaignFixture, StragglerShardIsHedged) {
  auto config = base_config("straggler");
  config.failures.stragglers = {
      {/*shard=*/3, /*first_attempts=*/1,
       /*per_doc_delay=*/std::chrono::milliseconds(150)}};
  // Hedge on runtime alone so the test is robust to sanitizer slowdowns.
  config.hedge_factor = 1e-6;
  config.hedge_min_runtime = std::chrono::milliseconds(100);
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, ResumeWithDifferentEngineConfigIsRejected) {
  auto config = base_config("fingerprint");
  config.failures.halt_after_commits = 1;
  CampaignRunner first(*bundle_->llm, config);
  EXPECT_TRUE(first.run(source()).halted);

  core::EngineConfig other = bundle_->llm->config();
  other.alpha = 0.25;  // committed shards would not be reproducible
  const core::AdaParseEngine reconfigured(other, bundle_->predictor,
                                          bundle_->improver);
  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(reconfigured, resume);
  EXPECT_THROW(second.run(source()), std::runtime_error);
}

TEST_F(CampaignFixture, ResumeWithRetrainedModelIsRejected) {
  auto config = base_config("model_fingerprint");
  config.failures.halt_after_commits = 1;
  CampaignRunner first(*bundle_->llm, config);
  EXPECT_TRUE(first.run(source()).halted);

  // Identical EngineConfig, different training corpus — different weights
  // would produce different records for the remaining shards, silently
  // mixing two models' outputs. The fingerprint's model digest rejects it.
  const auto other_train =
      doc::CorpusGenerator(doc::benchmark_config(160, 909)).generate();
  core::TrainAdaParseOptions options;
  options.engine.threads = 4;
  options.engine.alpha = 0.10;
  options.engine.batch_size = 32;
  options.regression.epochs = 6;
  options.apply_dpo = false;
  const auto retrained =
      core::train_adaparse(other_train, nullptr, nullptr, options);
  ASSERT_NE(retrained.llm->model_digest(), bundle_->llm->model_digest());
  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(*retrained.llm, resume);
  EXPECT_THROW(second.run(source()), std::runtime_error);
}

TEST_F(CampaignFixture, RunIsIdempotentAfterCompletion) {
  auto config = base_config("idempotent");
  CampaignRunner runner(*bundle_->llm, config);
  ASSERT_TRUE(runner.run(source()).completed);
  const std::string bytes = output_bytes(runner);
  const auto again = runner.run(source());  // nothing left to execute
  EXPECT_TRUE(again.completed);
  EXPECT_EQ(again.shards_resumed_skip, 4u);
  EXPECT_EQ(again.attempts_started, 0u);
  EXPECT_EQ(output_bytes(runner), bytes);
}

// ------------------------------------------------- multi-process runner ----

TEST_F(CampaignFixture, MultiProcessCleanRunMatchesInProcessByteForByte) {
  auto config = base_config("mp_clean");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.shards_committed, 4u);
  EXPECT_EQ(stats.docs_processed, 96u);
  EXPECT_GE(stats.workers_spawned, 1u);
  EXPECT_EQ(stats.workers_died, 0u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
  const std::string text = render_prometheus(stats);
  EXPECT_NE(text.find("adaparse_campaign_workers_spawned"), std::string::npos);
  EXPECT_NE(text.find("adaparse_campaign_shards_stolen"), std::string::npos);
}

/// The tentpole acceptance scenario, parameterized over every shard: a
/// worker process is killed with a real SIGKILL mid-shard (no unwinding,
/// no flushing — the kernel reaps it), the coordinator detects the death
/// via waitpid, requeues its shards, and the campaign still produces
/// byte-identical output; and a run halted at every shard boundary resumes
/// byte-identically in multi-process mode.
class CampaignRealKill : public CampaignFixture,
                         public ::testing::WithParamInterface<std::size_t> {};

TEST_P(CampaignRealKill, SigkilledWorkerIsRecoveredByteIdentically) {
  const std::size_t shard = GetParam();
  auto config = base_config("mp_kill_" + std::to_string(shard));
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  // Attempt 0 of the target shard SIGKILLs its worker process after 12 of
  // 24 records — a genuine kill -9, not a simulated failure.
  config.failures.crashes = {{shard, /*attempt=*/0, /*after_docs=*/12}};
  config.max_shard_attempts = 5;  // a single death must not quarantine
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_GE(stats.workers_spawned, 2u);  // at least one respawn
  EXPECT_EQ(stats.docs_quarantined, 0u);
  EXPECT_GE(stats.recovery_latency_seconds.size(), 1u);
  EXPECT_GT(stats.recovery_wall_seconds, 0.0);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_P(CampaignRealKill, HaltAtEveryShardBoundaryResumesByteIdentically) {
  const std::size_t halt_after = GetParam() + 1;  // 1..4 commits
  auto config = base_config("mp_halt_" + std::to_string(halt_after));
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.failures.halt_after_commits = halt_after;
  CampaignRunner first(*bundle_->llm, config);
  const auto halted = first.run(source());
  EXPECT_TRUE(halted.halted);
  EXPECT_FALSE(halted.completed);
  EXPECT_EQ(halted.shards_committed, halt_after);
  EXPECT_FALSE(fs::exists(first.output_path()));

  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(*bundle_->llm, resume);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.shards_resumed_skip, halt_after);
  EXPECT_EQ(output_bytes(second), reference_bytes());
}

INSTANTIATE_TEST_SUITE_P(EveryShard, CampaignRealKill,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST_F(CampaignFixture, MultiProcessPoisonQuarantineMatchesInProcess) {
  const std::string poison_id = (*docs_)[30].id;  // lives in shard 1
  auto config = base_config("mp_poison");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.failures.poison_docs = {poison_id};
  config.max_shard_attempts = 2;
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.docs_quarantined, 1u);

  // The quarantine decision flows over the wire (failed_doc_id in the
  // result frame) but must land on the same document and produce the same
  // bytes as the in-process run of the identical failure plan.
  auto in_process = base_config("mp_poison_inproc");
  in_process.failures.poison_docs = {poison_id};
  in_process.max_shard_attempts = 2;
  in_process.workers = 1;
  CampaignRunner twin(*bundle_->llm, in_process);
  ASSERT_TRUE(twin.run(source()).completed);
  EXPECT_EQ(output_bytes(runner), output_bytes(twin));
}

TEST_F(CampaignFixture, MultiProcessRepeatedDeathsQuarantineTheSuspect) {
  // Attempts 0 and 1 of shard 1 both SIGKILL their worker after 7 records:
  // with max_shard_attempts=2 the coordinator must quarantine the first
  // unemitted document — identified purely from heartbeat progress, since
  // a SIGKILLed process reports nothing. The in-process run of the same
  // plan (where the crash is simulated and the failed document reported
  // directly) is the ground truth: byte-identical output proves the
  // heartbeat-derived suspect matches.
  auto config = base_config("mp_crashq");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.failures.crashes = {{/*shard=*/1, /*attempt=*/0, /*after_docs=*/7},
                             {/*shard=*/1, /*attempt=*/1, /*after_docs=*/7}};
  config.max_shard_attempts = 2;
  // Stealing or hedging would renumber shard 1's attempts and dodge the
  // scripted crashes; keep queues shallow and hedging off so attempts 0
  // and 1 are exactly the two that die.
  config.worker_queue_depth = 1;
  config.hedge_factor = 0.0;
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.workers_died, 2u);
  EXPECT_EQ(stats.docs_quarantined, 1u);

  auto in_process = base_config("mp_crashq_inproc");
  in_process.failures = config.failures;
  in_process.max_shard_attempts = 2;
  in_process.workers = 1;
  CampaignRunner twin(*bundle_->llm, in_process);
  const auto twin_stats = twin.run(source());
  ASSERT_TRUE(twin_stats.completed);
  EXPECT_EQ(twin_stats.docs_quarantined, 1u);
  EXPECT_EQ(output_bytes(runner), output_bytes(twin));
}

TEST_F(CampaignFixture, MultiProcessIdleWorkerStealsQueuedShards) {
  auto config = base_config("mp_steal");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.docs_per_shard = 12;  // 96 docs -> 8 shards
  config.worker_queue_depth = 4;  // both workers pre-loaded with 4 shards
  // Whoever draws shard 0 crawls (100ms per record); the other worker
  // drains its own queue and must steal the victim's queued shards.
  config.failures.stragglers = {
      {/*shard=*/0, /*first_attempts=*/1,
       /*per_doc_delay=*/std::chrono::milliseconds(100)}};
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.shards_stolen, 1u);

  // Stolen work produces the same bytes it would have on the victim.
  auto in_process = base_config("mp_steal_inproc");
  in_process.docs_per_shard = 12;
  CampaignRunner twin(*bundle_->llm, in_process);
  ASSERT_TRUE(twin.run(source()).completed);
  EXPECT_EQ(output_bytes(runner), output_bytes(twin));
}

TEST_F(CampaignFixture, MultiProcessHungWorkerIsKilledByHeartbeatTimeout) {
  auto config = base_config("mp_hung");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  // The worker running shard 1 goes comatose between records (15s per
  // document against a 4s heartbeat timeout). waitpid sees nothing — the
  // process is alive — so only the missed-heartbeat path can save the
  // campaign: SIGKILL the zombie-in-spirit, requeue, respawn. The wide
  // margin matters: healthy workers' inter-record gaps grow ~15x under
  // TSan, and a timeout they can miss turns this test into a kill loop.
  config.failures.stragglers = {
      {/*shard=*/1, /*first_attempts=*/1,
       /*per_doc_delay=*/std::chrono::milliseconds(15000)}};
  config.heartbeat_timeout = std::chrono::milliseconds(4000);
  config.hedge_factor = 0.0;  // isolate the timeout path from hedging
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.workers_killed, 1u);
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, MultiProcessStragglerIsHedged) {
  auto config = base_config("mp_hedge");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.worker_queue_depth = 1;  // nothing queued to steal: hedging only
  config.failures.stragglers = {
      {/*shard=*/3, /*first_attempts=*/1,
       /*per_doc_delay=*/std::chrono::milliseconds(150)}};
  config.hedge_factor = 1e-6;
  config.hedge_min_runtime = std::chrono::milliseconds(100);
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, MultiProcessTornManifestCommitIsRedoneOnResume) {
  auto config = base_config("mp_torn");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.failures.torn_manifest_shards = {0};
  config.workers = 1;  // shard 0 commits first, deterministically
  CampaignRunner first(*bundle_->llm, config);
  EXPECT_TRUE(first.run(source()).halted);

  auto resume = config;
  resume.failures = FailurePlan{};
  CampaignRunner second(*bundle_->llm, resume);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_TRUE(resumed.recovered_torn_manifest);
  EXPECT_EQ(resumed.shards_resumed_skip, 0u);  // the torn commit didn't count
  EXPECT_EQ(output_bytes(second), reference_bytes());
}

TEST_F(CampaignFixture, MultiProcessCorruptShardIsRestagedInsideTheWorker) {
  auto config = base_config("mp_corrupt_shard");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.failures.corrupt_shards = {1};
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.corrupt_shard_recoveries, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());
}

TEST_F(CampaignFixture, CampaignResumesAcrossExecutionModes) {
  // The two modes share the shard plan, manifest, and commit protocol —
  // so a campaign killed under one mode must resume under the other with
  // byte-identical final output (the engine fingerprint deliberately
  // excludes the execution mode).
  auto config = base_config("cross_mode");
  config.failures.halt_after_commits = 2;
  CampaignRunner first(*bundle_->llm, config);  // in-process, killed
  EXPECT_TRUE(first.run(source()).halted);

  auto mp_resume = config;
  mp_resume.failures = FailurePlan{};
  mp_resume.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  CampaignRunner second(*bundle_->llm, mp_resume);
  const auto resumed = second.run(source());
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.shards_resumed_skip, 2u);
  EXPECT_EQ(output_bytes(second), reference_bytes());

  // And the mirror image: halted multi-process, finished in-process.
  auto config2 = base_config("cross_mode_back");
  config2.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config2.failures.halt_after_commits = 1;
  CampaignRunner third(*bundle_->llm, config2);
  EXPECT_TRUE(third.run(source()).halted);
  auto in_resume = config2;
  in_resume.failures = FailurePlan{};
  in_resume.execution = CampaignConfig::ExecutionMode::kInProcess;
  CampaignRunner fourth(*bundle_->llm, in_resume);
  EXPECT_TRUE(fourth.run(source()).completed);
  EXPECT_EQ(output_bytes(fourth), reference_bytes());
}

TEST_F(CampaignFixture, PrometheusRenderExposesCampaignCounters) {
  CampaignRunner runner(*bundle_->llm, base_config("prometheus"));
  const auto stats = runner.run(source());
  const std::string text = render_prometheus(stats);
  EXPECT_NE(text.find("adaparse_campaign_shards_total 4"), std::string::npos);
  EXPECT_NE(text.find("adaparse_campaign_shards_committed 4"),
            std::string::npos);
  EXPECT_NE(text.find("adaparse_campaign_docs_processed 96"),
            std::string::npos);
  EXPECT_NE(text.find("adaparse_campaign_completed 1"), std::string::npos);
}

TEST(CampaignMetrics, PrometheusExpositionMatchesGoldenText) {
  // Byte-exact regression gate for the migration onto obs::Registry. The
  // golden below was captured from the pre-migration hand-rolled renderer:
  // same family order, no HELP lines, counters-vs-gauges split, bools as
  // 0/1, recovery_events derived from the latency vector, and default
  // double formatting ("1.5", "0.25") must all survive.
  const simd::TierScope scope(simd::Tier::kScalar);
  CampaignStats stats;
  stats.shards_total = 4;
  stats.shards_committed = 4;
  stats.shards_resumed_skip = 1;
  stats.attempts_started = 6;
  stats.attempts_failed = 2;
  stats.shards_retried = 2;
  stats.hedges_launched = 1;
  stats.hedges_won = 1;
  stats.docs_processed = 96;
  stats.docs_quarantined = 1;
  stats.corrupt_shard_recoveries = 1;
  stats.corrupt_output_recoveries = 0;
  stats.recovered_torn_manifest = true;
  stats.workers_spawned = 3;
  stats.workers_died = 1;
  stats.workers_killed = 1;
  stats.shards_stolen = 2;
  stats.recovery_wall_seconds = 1.5;
  stats.recovery_latency_seconds = {0.5, 1.0};
  stats.wall_seconds = 0.25;
  stats.halted = false;
  stats.completed = true;

  const std::string golden = R"(# TYPE adaparse_campaign_shards_total gauge
adaparse_campaign_shards_total 4
# TYPE adaparse_campaign_shards_committed counter
adaparse_campaign_shards_committed 4
# TYPE adaparse_campaign_shards_resumed_skip counter
adaparse_campaign_shards_resumed_skip 1
# TYPE adaparse_campaign_attempts_started counter
adaparse_campaign_attempts_started 6
# TYPE adaparse_campaign_attempts_failed counter
adaparse_campaign_attempts_failed 2
# TYPE adaparse_campaign_shards_retried counter
adaparse_campaign_shards_retried 2
# TYPE adaparse_campaign_hedges_launched counter
adaparse_campaign_hedges_launched 1
# TYPE adaparse_campaign_hedges_won counter
adaparse_campaign_hedges_won 1
# TYPE adaparse_campaign_docs_processed counter
adaparse_campaign_docs_processed 96
# TYPE adaparse_campaign_docs_quarantined counter
adaparse_campaign_docs_quarantined 1
# TYPE adaparse_campaign_corrupt_shard_recoveries counter
adaparse_campaign_corrupt_shard_recoveries 1
# TYPE adaparse_campaign_corrupt_output_recoveries counter
adaparse_campaign_corrupt_output_recoveries 0
# TYPE adaparse_campaign_recovered_torn_manifest gauge
adaparse_campaign_recovered_torn_manifest 1
# TYPE adaparse_campaign_workers_spawned counter
adaparse_campaign_workers_spawned 3
# TYPE adaparse_campaign_workers_died counter
adaparse_campaign_workers_died 1
# TYPE adaparse_campaign_workers_killed counter
adaparse_campaign_workers_killed 1
# TYPE adaparse_campaign_shards_stolen counter
adaparse_campaign_shards_stolen 2
# TYPE adaparse_campaign_recovery_events counter
adaparse_campaign_recovery_events 2
# TYPE adaparse_campaign_recovery_wall_seconds counter
adaparse_campaign_recovery_wall_seconds 1.5
# TYPE adaparse_campaign_wall_seconds gauge
adaparse_campaign_wall_seconds 0.25
# TYPE adaparse_campaign_halted gauge
adaparse_campaign_halted 0
# TYPE adaparse_campaign_completed gauge
adaparse_campaign_completed 1
# TYPE adaparse_simd_tier gauge
adaparse_simd_tier{tier="scalar"} 1
)";
  EXPECT_EQ(render_prometheus(stats), golden);
}

TEST_F(CampaignFixture, MultiProcessRunWithRealKillTracesAcrossProcesses) {
  // The tentpole acceptance scenario with tracing on: a multi-process
  // campaign with >= 2 workers and a real SIGKILL must yield one coherent
  // trace — spans from the coordinator pid AND >= 2 worker pids, shipped
  // over kSpans frames, with every surviving parent link resolving (a
  // SIGKILLed worker loses an attempt's unflushed spans and their parent
  // together, never a child without its parent).
  auto& tracer = obs::Tracer::instance();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  static_cast<void>(tracer.collect());  // drop anything from earlier tests

  auto config = base_config("mp_trace");
  config.execution = CampaignConfig::ExecutionMode::kMultiProcess;
  config.workers = 2;
  config.failures.crashes = {{/*shard=*/1, /*attempt=*/0, /*after_docs=*/12}};
  config.max_shard_attempts = 5;
  CampaignRunner runner(*bundle_->llm, config);
  const auto stats = runner.run(source());

  const auto records = tracer.collect();
  tracer.set_enabled(was_enabled);

  ASSERT_TRUE(stats.completed);
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_EQ(output_bytes(runner), reference_bytes());

  std::set<std::int32_t> pids;
  std::set<std::uint64_t> ids;
  for (const auto& rec : records) {
    pids.insert(rec.pid);
    ids.insert(rec.id);
  }
  EXPECT_GE(pids.size(), 3u) << "coordinator + 2 worker pids expected";
  EXPECT_TRUE(pids.count(static_cast<std::int32_t>(::getpid())));
  EXPECT_EQ(ids.size(), records.size()) << "span ids must be unique";
  for (const auto& rec : records) {
    if (rec.parent != 0) {
      EXPECT_TRUE(ids.count(rec.parent))
          << "dangling parent for span " << rec.name;
    }
  }

  // The exporter must render the whole multi-process batch as one valid
  // Chrome-trace JSON document with per-pid process metadata.
  const auto root = util::Json::parse(obs::trace_to_json(records));
  const auto& events = root.at("traceEvents").as_array();
  std::set<double> meta_pids;
  std::size_t slices = 0;
  for (const auto& event : events) {
    if (event.at("ph").as_string() == "M") {
      meta_pids.insert(event.at("pid").as_number());
    } else {
      ++slices;
    }
  }
  EXPECT_EQ(meta_pids.size(), pids.size());
  EXPECT_GE(slices, records.size());
}

}  // namespace
}  // namespace adaparse::campaign
