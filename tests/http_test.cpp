// Tests for the HTTP/1.1 network front end: the incremental request
// parser (torn reads, pipelining, chunked bodies, limit enforcement), the
// frozen /v1 wire schemas (golden serializations + JobState vocabulary),
// JobSpec parsing/validation, and full-stack integration over real
// sockets — streamed records byte-identical to a standalone engine run,
// slow-client backpressure parking the job, and mid-stream disconnects
// cancelling it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "doc/generator.hpp"
#include "io/doc_codec.hpp"
#include "io/fsio.hpp"
#include "net/http.hpp"
#include "serve/http/server.hpp"
#include "serve/http/wire.hpp"
#include "serve/job_spec.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"

namespace adaparse {
namespace {

using namespace std::chrono_literals;
using net::http::ParseStatus;
using net::http::RequestParser;

// ============================================================ parser ====

TEST(RequestParserTest, ParsesASimpleGet) {
  RequestParser parser;
  const std::string raw =
      "GET /v1/jobs/7?verbose=1 HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kComplete);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/v1/jobs/7?verbose=1");
  EXPECT_EQ(parser.request().path(), "/v1/jobs/7");
  EXPECT_TRUE(parser.request().keep_alive);
  ASSERT_NE(parser.request().header("host"), nullptr);
  EXPECT_EQ(*parser.request().header("host"), "localhost");
}

TEST(RequestParserTest, SurvivesRequestsTornAtEveryByte) {
  const std::string raw =
      "POST /v1/parse HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"a\":\"b c\"}";
  RequestParser parser;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::size_t consumed = 0;
    const auto status =
        parser.consume(std::string_view(raw).substr(i, 1), &consumed);
    ASSERT_EQ(consumed, 1U) << "byte " << i;
    if (i + 1 < raw.size()) {
      ASSERT_EQ(status, ParseStatus::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(status, ParseStatus::kComplete);
    }
  }
  EXPECT_EQ(parser.request().body, "{\"a\":\"b c\"}");
}

TEST(RequestParserTest, PipelinedRequestsParseBackToBack) {
  const std::string first = "GET /metrics HTTP/1.1\r\n\r\n";
  const std::string second = "DELETE /v1/jobs/3 HTTP/1.1\r\n\r\n";
  const std::string raw = first + second;
  RequestParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kComplete);
  EXPECT_EQ(consumed, first.size());  // stops at the message boundary
  EXPECT_EQ(parser.request().method, "GET");
  parser.reset();
  ASSERT_EQ(parser.consume(std::string_view(raw).substr(consumed), &consumed),
            ParseStatus::kComplete);
  EXPECT_EQ(parser.request().method, "DELETE");
  EXPECT_EQ(parser.request().target, "/v1/jobs/3");
}

TEST(RequestParserTest, OversizedRequestLineFailsWith431) {
  net::http::Limits limits;
  limits.max_request_line = 64;
  RequestParser parser(limits);
  const std::string raw =
      "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 431);
}

TEST(RequestParserTest, OversizedHeaderBlockFailsWith431) {
  net::http::Limits limits;
  limits.max_header_bytes = 128;
  RequestParser parser(limits);
  const std::string raw = "GET / HTTP/1.1\r\nX-Big: " +
                          std::string(200, 'x') + "\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 431);
}

TEST(RequestParserTest, TooManyHeaderFieldsFailsWith431) {
  net::http::Limits limits;
  limits.max_headers = 3;
  RequestParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 431);
}

TEST(RequestParserTest, ContentLengthOverLimitFailsWith413) {
  net::http::Limits limits;
  limits.max_body_bytes = 1024;
  RequestParser parser(limits);
  const std::string raw =
      "POST /v1/parse HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 413);
}

TEST(RequestParserTest, ChunkedBodyOverLimitFailsWith413) {
  net::http::Limits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  const std::string raw =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\na\r\n0123456789\r\n0\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 413);
}

TEST(RequestParserTest, DecodesChunkedBodiesWithExtensionsAndTrailers) {
  const std::string raw =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n"
      "5;note=ext-ignored\r\npedia\r\n"
      "0\r\n"
      "X-Trailer: discarded\r\n"
      "\r\n";
  // Whole-buffer and torn-at-every-byte must agree.
  {
    RequestParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kComplete);
    EXPECT_EQ(parser.request().body, "Wikipedia");
    EXPECT_EQ(parser.request().header("x-trailer"), nullptr);
  }
  {
    RequestParser parser;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::size_t consumed = 0;
      const auto status =
          parser.consume(std::string_view(raw).substr(i, 1), &consumed);
      if (i + 1 < raw.size()) {
        ASSERT_EQ(status, ParseStatus::kNeedMore) << "byte " << i;
      } else {
        ASSERT_EQ(status, ParseStatus::kComplete);
      }
    }
    EXPECT_EQ(parser.request().body, "Wikipedia");
  }
}

TEST(RequestParserTest, RejectsSmugglingProneFraming) {
  // Transfer-Encoding + Content-Length together is the classic request
  // smuggling vector — hard 400.
  RequestParser parser;
  const std::string raw =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 4\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError);
  EXPECT_EQ(parser.error().status, 400);
}

TEST(RequestParserTest, RejectsDuplicateFramingHeaders) {
  // Repeated Content-Length (or Transfer-Encoding) fields — even with
  // identical values — are a smuggling vector behind a proxy that honors
  // the other copy; RFC 9112 requires rejecting the conflicting case and
  // permits rejecting repeats outright.
  const char* cases[] = {
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
      "Transfer-Encoding: chunked\r\n\r\n",
  };
  for (const char* raw : cases) {
    RequestParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.consume(raw, &consumed), ParseStatus::kError) << raw;
    EXPECT_EQ(parser.error().status, 400) << raw;
  }
}

TEST(RequestParserTest, MapsProtocolErrorsToTheRightStatuses) {
  const struct {
    const char* raw;
    int status;
  } cases[] = {
      {"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"GET /\r\n\r\n", 400},                      // missing version
      {"GET relative HTTP/1.1\r\n\r\n", 400},      // not origin-form
      {"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n", 400},  // space in name
      {"POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", 400},
  };
  for (const auto& c : cases) {
    RequestParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.consume(c.raw, &consumed), ParseStatus::kError) << c.raw;
    EXPECT_EQ(parser.error().status, c.status) << c.raw;
  }
}

TEST(RequestParserTest, Http10DefaultsToConnectionClose) {
  RequestParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.consume("GET / HTTP/1.0\r\n\r\n", &consumed),
            ParseStatus::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
  parser.reset();
  ASSERT_EQ(parser.consume(
                "GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &consumed),
            ParseStatus::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

// ====================================================== wire schemas ====

TEST(WireSchemaTest, JobStateNamesAreAFrozenVocabulary) {
  using serve::JobState;
  EXPECT_STREQ(serve::job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(serve::job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(serve::job_state_name(JobState::kCompleted), "completed");
  EXPECT_STREQ(serve::job_state_name(JobState::kCancelled), "cancelled");
  EXPECT_STREQ(serve::job_state_name(JobState::kRejected), "rejected");
  EXPECT_STREQ(serve::job_state_name(JobState::kFailed), "failed");
  for (const JobState s :
       {JobState::kQueued, JobState::kRunning, JobState::kCompleted,
        JobState::kCancelled, JobState::kRejected, JobState::kFailed}) {
    const auto parsed = serve::job_state_parse(serve::job_state_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(serve::job_state_parse("bogus").has_value());
  EXPECT_FALSE(serve::job_state_parse("Queued").has_value());
}

TEST(WireSchemaTest, ErrorEnvelopeGolden) {
  EXPECT_EQ(serve::http::error_envelope("over_capacity",
                                        "admission: queued-jobs watermark")
                .dump(),
            "{\"error\":{\"code\":\"over_capacity\","
            "\"message\":\"admission: queued-jobs watermark\"}}");
}

TEST(WireSchemaTest, JobStatusGolden) {
  serve::JobProgress progress;
  progress.state = serve::JobState::kRunning;
  progress.docs_completed = 12;
  progress.docs_total_hint = 96;
  progress.queue_wait_seconds = 0.25;
  progress.latency_seconds = 0.0;
  EXPECT_EQ(
      serve::http::job_status_json(7, "acme", progress, "").dump(),
      "{\"docs_completed\":12,\"docs_total_hint\":96,\"error\":\"\","
      "\"id\":7,\"latency_seconds\":0,\"queue_wait_seconds\":0.25,"
      "\"state\":\"running\",\"tenant\":\"acme\"}");
}

TEST(WireSchemaTest, StreamLineGoldens) {
  EXPECT_EQ(serve::http::stream_created_line(7, "acme", 96).dump(),
            "{\"job\":{\"docs_total_hint\":96,\"id\":7,"
            "\"tenant\":\"acme\"}}");
  EXPECT_EQ(serve::http::stream_done_line(serve::JobState::kCompleted, 96,
                                          "")
                .dump(),
            "{\"done\":{\"docs_completed\":96,\"error\":\"\","
            "\"state\":\"completed\"}}");

  serve::JobRecord record;
  record.index = 3;
  record.record.document_id = "d3";
  record.record.parser = "pymupdf";
  record.record.text = "hello";
  record.record.predicted_accuracy = 0.5;
  record.record.route = "cls1:valid";
  record.record.pages = 2;
  record.record.pages_retrieved = 2;
  // The record payload rides io::ParseRecord's own serialization; the
  // envelope contributes exactly {"index":i,"record":...}.
  EXPECT_EQ(serve::http::stream_record_line(record).dump(),
            "{\"index\":3,\"record\":" + record.record.to_json().dump() +
                "}");
}

TEST(WireSchemaTest, RejectReasonsMapOntoStatuses) {
  EXPECT_EQ(
      serve::http::classify_reject("admission: queued-jobs watermark")
          .http_status,
      429);
  EXPECT_STREQ(
      serve::http::classify_reject("admission: resident-work watermark")
          .code,
      "over_capacity");
  EXPECT_EQ(serve::http::classify_reject("service shutdown").http_status,
            503);
  EXPECT_STREQ(serve::http::classify_reject("service shutdown").code,
               "shutting_down");
  EXPECT_EQ(serve::http::classify_reject("spec: engine.alpha: bad")
                .http_status,
            400);
}

// ============================================================ JobSpec ====

TEST(JobSpecTest, GoldenSerializationAndRoundTrip) {
  serve::JobSpec spec;
  spec.tenant = "acme";
  spec.engine.variant = core::Variant::kFastText;
  spec.engine.alpha = 0.25;
  spec.engine.batch_size = 16;
  spec.priority = 3;
  spec.deadline = 1500ms;
  spec.documents = serve::JobSpec::Documents::kGenerator;
  spec.generator.num_documents = 96;
  spec.generator.seed = 606;
  const std::string expected =
      "{\"deadline_ms\":1500,"
      "\"documents\":{\"generator\":{\"corrupted_fraction\":0,"
      "\"count\":96,\"scanned_fraction\":0.15,\"seed\":606}},"
      "\"engine\":{\"alpha\":0.25,\"batch_size\":16,"
      "\"cls2_threshold\":0.5,\"variant\":\"fasttext\"},"
      "\"priority\":3,\"tenant\":\"acme\"}";
  EXPECT_EQ(spec.to_json().dump(), expected);
  const auto round = serve::JobSpec::from_json(spec.to_json());
  EXPECT_EQ(round.to_json().dump(), expected);
  EXPECT_EQ(round.deadline, 1500ms);
  EXPECT_EQ(round.engine.variant, core::Variant::kFastText);
}

TEST(JobSpecTest, DefaultsApplyWhenFieldsAreOmitted) {
  const auto spec = serve::JobSpec::from_json(util::Json::parse("{}"));
  EXPECT_EQ(spec.tenant, "default");
  EXPECT_EQ(spec.documents, serve::JobSpec::Documents::kNone);
  EXPECT_EQ(spec.engine.variant, core::Variant::kLlm);
  EXPECT_EQ(spec.engine.batch_size, 256U);
}

TEST(JobSpecTest, ValidationErrorsNameTheOffendingField) {
  const struct {
    const char* body;
    const char* field;
  } cases[] = {
      {"{\"tenant\":\"\"}", "tenant"},
      {"{\"bogus\":1}", "bogus"},
      {"{\"priority\":5000}", "priority"},
      {"{\"deadline_ms\":-1}", "deadline_ms"},
      {"{\"engine\":{\"alpha\":1.5}}", "engine.alpha"},
      {"{\"engine\":{\"variant\":\"gpt\"}}", "engine.variant"},
      {"{\"engine\":{\"batch_size\":0}}", "engine.batch_size"},
      {"{\"engine\":{\"turbo\":true}}", "engine.turbo"},
      {"{\"documents\":{}}", "documents"},
      {"{\"documents\":{\"generator\":{\"count\":96},"
       "\"shard_file\":\"x\"}}",
       "documents"},
      {"{\"documents\":{\"generator\":{\"count\":0}}}",
       "documents.generator.count"},
      {"{\"documents\":{\"inline\":[]}}", "documents.inline"},
      {"{\"documents\":{\"inline\":[{\"id\":\"d\"}]}}",
       "documents.inline[0].pages"},
      {"{\"documents\":{\"inline\":[{\"id\":\"\","
       "\"pages\":[\"x\"]}]}}",
       "documents.inline[0].id"},
      {"{\"documents\":{\"shard_file\":\"\"}}", "documents.shard_file"},
  };
  for (const auto& c : cases) {
    try {
      (void)serve::JobSpec::from_json(util::Json::parse(c.body));
      FAIL() << "no SpecError for " << c.body;
    } catch (const serve::SpecError& e) {
      EXPECT_EQ(e.field(), c.field) << c.body;
    }
  }
}

TEST(JobSpecTest, InlineDocumentsMaterializeBornDigital) {
  serve::JobSpec spec;
  spec.documents = serve::JobSpec::Documents::kInline;
  spec.inline_docs.push_back({"w1", {"Hello world.", "Second page."}, 9});
  auto source = spec.make_source();
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->size_hint(), 1U);
  const auto doc = source->next();
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->id, "w1");
  ASSERT_EQ(doc->text_layer.pages.size(), 2U);
  EXPECT_TRUE(doc->text_layer.present);
  EXPECT_DOUBLE_EQ(doc->text_layer.fidelity, 1.0);
  EXPECT_EQ(doc->groundtruth_pages, doc->text_layer.pages);
  EXPECT_EQ(source->next(), nullptr);
}

// ======================================================= integration ====

std::shared_ptr<core::Cls2Improver> shared_improver() {
  static const auto improver = std::make_shared<core::Cls2Improver>();
  return improver;
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const net::IoResult r = net::write_some(fd, data);
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    data.remove_prefix(r.bytes);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[8192];
  for (;;) {
    const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
    if (r.status == net::IoStatus::kOk) {
      out.append(buf, r.bytes);
      continue;
    }
    break;  // EOF or error: the caller asserts on content
  }
  return out;
}

std::string read_until(int fd, std::string_view needle) {
  std::string out;
  char buf[4096];
  while (out.find(needle) == std::string::npos) {
    const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
    if (r.status != net::IoStatus::kOk) break;
    out.append(buf, r.bytes);
  }
  return out;
}

std::string dechunk(std::string_view body) {
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t eol = body.find("\r\n", pos);
    if (eol == std::string_view::npos) break;
    std::size_t size = 0;
    for (std::size_t i = pos; i < eol; ++i) {
      const char c = body[i];
      if (c == ';') break;
      size = size * 16 +
             static_cast<std::size_t>(
                 c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    if (size == 0) break;
    out.append(body.substr(eol + 2, size));
    pos = eol + 2 + size + 2;  // chunk + trailing CRLF
  }
  return out;
}

struct WireResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;                            // dechunked when needed
};

WireResponse parse_response(const std::string& raw) {
  WireResponse out;
  const std::size_t head_end = raw.find("\r\n\r\n");
  EXPECT_NE(head_end, std::string::npos);
  if (head_end == std::string::npos) return out;
  const std::string head = raw.substr(0, head_end);
  out.status = std::stoi(head.substr(head.find(' ') + 1));
  std::size_t line = head.find("\r\n");
  while (line != std::string::npos) {
    const std::size_t next = head.find("\r\n", line + 2);
    std::string field = head.substr(
        line + 2,
        (next == std::string::npos ? head.size() : next) - line - 2);
    const std::size_t colon = field.find(':');
    if (colon != std::string::npos) {
      std::string name = field.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::size_t vstart = colon + 1;
      while (vstart < field.size() && field[vstart] == ' ') ++vstart;
      out.headers[name] = field.substr(vstart);
    }
    line = next;
  }
  std::string body = raw.substr(head_end + 4);
  if (out.headers.count("transfer-encoding")) {
    body = dechunk(body);
  }
  out.body = std::move(body);
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// One round trip on a fresh connection; `raw` should say
/// "Connection: close" so EOF delimits the response.
WireResponse roundtrip(std::uint16_t port, const std::string& raw) {
  net::Fd fd = net::connect_blocking("127.0.0.1", port);
  send_all(fd.get(), raw);
  return parse_response(read_to_eof(fd.get()));
}

std::string post_parse_request(const std::string& body) {
  return "POST /v1/parse HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

serve::ServiceConfig small_service_config() {
  serve::ServiceConfig config;
  config.dispatchers = 1;
  config.slice_batches = 1;
  config.pool_threads = 4;
  return config;
}

TEST(HttpServerTest, StreamedRecordsAreByteIdenticalToStandaloneRun) {
  doc::GeneratorConfig corpus;
  corpus.num_documents = 96;
  corpus.seed = 606;

  core::EngineConfig engine_config;
  engine_config.variant = core::Variant::kFastText;
  engine_config.alpha = 0.25;
  engine_config.batch_size = 16;
  const core::AdaParseEngine engine(engine_config, nullptr,
                                    shared_improver());
  const auto reference = engine.run(doc::CorpusGenerator(corpus).generate());

  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);

  const auto response = roundtrip(
      server.port(),
      post_parse_request(
          "{\"tenant\":\"acme\","
          "\"engine\":{\"variant\":\"fasttext\",\"alpha\":0.25,"
          "\"batch_size\":16},"
          "\"documents\":{\"generator\":{\"count\":96,\"seed\":606}}}"));
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(response.headers.count("x-adaparse-job-id"));
  EXPECT_EQ(response.headers.at("content-type"), "application/x-ndjson");

  const auto lines = split_lines(response.body);
  ASSERT_EQ(lines.size(), 96U + 2);  // created + records + done
  const auto created = util::Json::parse(lines.front());
  EXPECT_EQ(created.at("job").at("tenant").as_string(), "acme");
  EXPECT_EQ(created.at("job").at("docs_total_hint").as_number(), 96.0);

  ASSERT_EQ(reference.records.size(), 96U);
  for (std::size_t i = 0; i < 96; ++i) {
    const auto line = util::Json::parse(lines[i + 1]);
    EXPECT_EQ(line.at("index").as_number(), static_cast<double>(i));
    // The acceptance bar: every streamed record serializes to exactly the
    // bytes a standalone AdaParseEngine::run() would have written.
    EXPECT_EQ(line.at("record").dump(),
              reference.records[i].to_json().dump())
        << "record " << i;
  }
  const auto done = util::Json::parse(lines.back());
  EXPECT_EQ(done.at("done").at("state").as_string(), "completed");
  EXPECT_EQ(done.at("done").at("docs_completed").as_number(), 96.0);

  service.drain();
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, InlineDocumentsRoundTripOverTheWire) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);
  const auto response = roundtrip(
      server.port(),
      post_parse_request(
          "{\"engine\":{\"variant\":\"fasttext\",\"batch_size\":4},"
          "\"documents\":{\"inline\":[{\"id\":\"w1\","
          "\"pages\":[\"AdaParse routes documents adaptively.\"]}]}}"));
  EXPECT_EQ(response.status, 200);
  const auto lines = split_lines(response.body);
  ASSERT_EQ(lines.size(), 3U);
  const auto record = util::Json::parse(lines[1]);
  EXPECT_EQ(record.at("record").at("id").as_string(), "w1");
  const auto done = util::Json::parse(lines[2]);
  EXPECT_EQ(done.at("done").at("state").as_string(), "completed");
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, ErrorEnvelopesOverTheWire) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);
  const std::uint16_t port = server.port();

  {  // unknown resource
    const auto r = roundtrip(
        port, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(r.status, 404);
    EXPECT_EQ(util::Json::parse(r.body).at("error").at("code").as_string(),
              "not_found");
  }
  {  // wrong method
    const auto r = roundtrip(
        port, "GET /v1/parse HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(r.status, 405);
  }
  {  // unknown job
    const auto r = roundtrip(
        port, "GET /v1/jobs/99999 HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(r.status, 404);
  }
  {  // body is not JSON
    const auto r = roundtrip(port, post_parse_request("not json"));
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(util::Json::parse(r.body).at("error").at("code").as_string(),
              "bad_json");
  }
  {  // spec validation failure names the field
    const auto r = roundtrip(
        port, post_parse_request("{\"engine\":{\"alpha\":2.0}}"));
    EXPECT_EQ(r.status, 400);
    const auto err = util::Json::parse(r.body).at("error");
    EXPECT_EQ(err.at("code").as_string(), "invalid_spec");
    EXPECT_NE(err.at("message").as_string().find("engine.alpha"),
              std::string::npos);
  }
  {  // no documents section on the wire
    const auto r = roundtrip(port, post_parse_request("{}"));
    EXPECT_EQ(r.status, 400);
  }
  {  // oversized header block -> 431 from the parser, envelope body
    const auto r = roundtrip(
        port, "GET /metrics HTTP/1.1\r\nX-Big: " +
                  std::string(20000, 'x') + "\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(r.status, 431);
  }
  {  // declared body over limit -> 413
    const auto r = roundtrip(
        port,
        "POST /v1/parse HTTP/1.1\r\nContent-Length: 99999999\r\n"
        "Connection: close\r\n\r\n");
    EXPECT_EQ(r.status, 413);
  }
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, JobStatusAndCancelEndpoints) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);
  const std::uint16_t port = server.port();

  // Start a long job on connection A and pick its id out of the head.
  net::Fd stream_fd = net::connect_blocking("127.0.0.1", port);
  send_all(stream_fd.get(),
           post_parse_request(
               "{\"tenant\":\"acme\","
               "\"engine\":{\"variant\":\"fasttext\",\"batch_size\":16},"
               "\"documents\":{\"generator\":{\"count\":4000,"
               "\"seed\":11}}}"));
  const std::string head = read_until(stream_fd.get(), "\r\n\r\n");
  const std::size_t id_pos = head.find("X-Adaparse-Job-Id: ");
  ASSERT_NE(id_pos, std::string::npos);
  const std::string id = head.substr(
      id_pos + 19, head.find('\r', id_pos) - id_pos - 19);

  // Status via a second connection.
  const auto status = roundtrip(
      port, "GET /v1/jobs/" + id +
                " HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(status.status, 200);
  const auto status_json = util::Json::parse(status.body);
  EXPECT_EQ(status_json.at("id").as_number(), std::stod(id));
  EXPECT_EQ(status_json.at("tenant").as_string(), "acme");
  ASSERT_TRUE(
      serve::job_state_parse(status_json.at("state").as_string())
          .has_value());

  // Cancel via DELETE; the stream must terminate with a cancelled done
  // line (records before it are retained).
  const auto cancel = roundtrip(
      port, "DELETE /v1/jobs/" + id +
                " HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(cancel.status, 202);

  std::string rest = read_to_eof(stream_fd.get());
  const std::string full = head.substr(head.find("\r\n\r\n") + 4) + rest;
  const auto lines = split_lines(dechunk(full));
  ASSERT_GE(lines.size(), 2U);
  const auto done = util::Json::parse(lines.back());
  EXPECT_EQ(done.at("done").at("state").as_string(), "cancelled");
  EXPECT_LT(done.at("done").at("docs_completed").as_number(), 4000.0);

  server.stop();
  service.shutdown();
}

/// Connects with a tiny SO_RCVBUF so the kernel cannot absorb the stream
/// on the client's behalf — the slow-reader scenarios need backpressure
/// to reach the server quickly.
int connect_small_rcvbuf(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const int rcvbuf = 4096;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

TEST(HttpServerTest, SlowClientParksItsJobAndResumesOnDrain) {
  auto config = small_service_config();
  config.max_resident_documents = 5000;
  serve::ParseService service(config, nullptr, shared_improver());
  serve::http::HttpServerConfig http_config;
  http_config.write_high_watermark = 16 * 1024;
  http_config.write_low_watermark = 4 * 1024;
  serve::http::HttpServer server(service, http_config);

  const int fd = connect_small_rcvbuf(server.port());
  send_all(fd,
           post_parse_request(
               "{\"tenant\":\"slow\","
               "\"engine\":{\"variant\":\"fasttext\",\"batch_size\":16},"
               "\"documents\":{\"generator\":{\"count\":900,"
               "\"seed\":77}}}"));

  // Don't read: the server must park the job instead of buffering 900
  // records. Parking oscillates at first — each flush into the kernel's
  // socket buffers drains the outbuf below the low watermark and resumes
  // the job — but the stream is far larger than the kernel can absorb
  // with a 4 KiB receive buffer, so once those fill the job stays parked
  // with no slice in flight. Require that *stable* state: 20 consecutive
  // 1 ms samples with the job parked and nothing executing.
  int stable = 0;
  for (int i = 0; i < 30000 && stable < 20; ++i) {
    const bool quiescent =
        service.parked_jobs() == 1 && service.running_jobs() == 0;
    stable = quiescent ? stable + 1 : 0;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(stable, 20) << "slow client never parked its job durably";
  EXPECT_LE(service.resident_documents(),
            config.max_resident_documents);

  // Now drain the stream; the job resumes and completes in full order.
  const std::string raw = read_to_eof(fd);
  ::close(fd);
  const auto lines = split_lines(dechunk(raw.substr(raw.find("\r\n\r\n") + 4)));
  ASSERT_EQ(lines.size(), 900U + 2);
  for (std::size_t i = 0; i < 900; ++i) {
    EXPECT_EQ(util::Json::parse(lines[i + 1]).at("index").as_number(),
              static_cast<double>(i));
  }
  EXPECT_EQ(util::Json::parse(lines.back())
                .at("done")
                .at("state")
                .as_string(),
            "completed");
  EXPECT_EQ(service.parked_jobs(), 0U);

  // The backpressure counter is visible on /metrics.
  const auto metrics = roundtrip(
      server.port(), "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(metrics.body.find("adaparse_http_backpressure_pauses_total"),
            std::string::npos);
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, DisconnectMidStreamCancelsTheJob) {
  auto config = small_service_config();
  serve::ParseService service(config, nullptr, shared_improver());
  serve::http::HttpServerConfig http_config;
  http_config.write_high_watermark = 16 * 1024;
  serve::http::HttpServer server(service, http_config);

  const int fd = connect_small_rcvbuf(server.port());
  send_all(fd,
           post_parse_request(
               "{\"engine\":{\"variant\":\"fasttext\",\"batch_size\":16},"
               "\"documents\":{\"generator\":{\"count\":4000,"
               "\"seed\":5}}}"));
  // Wait for the stream to start, then vanish without reading it out —
  // closing with unread data sends a reset.
  for (int i = 0; i < 10000 && service.resident_documents() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GT(service.resident_documents(), 0U);
  ::close(fd);

  // The server must notice, cancel the job, and release its admission
  // charge.
  bool released = false;
  for (int i = 0; i < 20000 && !released; ++i) {
    released = service.resident_documents() == 0;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(released) << "disconnect did not cancel the streamed job";
  EXPECT_EQ(service.parked_jobs(), 0U);

  const auto metrics = roundtrip(
      server.port(), "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(metrics.body.find("adaparse_http_disconnect_cancels_total 1"),
            std::string::npos);
  EXPECT_EQ(server.open_connections(), 0U);
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, MetricsScrapeMergesServiceAndHttpFamilies) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);
  const auto r = roundtrip(
      server.port(), "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(r.status, 200);
  // Service families first (PR 8 exposition), then the HTTP layer's.
  EXPECT_NE(r.body.find("adaparse_serve_queued_jobs"), std::string::npos);
  EXPECT_NE(r.body.find("adaparse_http_connections_total"),
            std::string::npos);
  EXPECT_NE(r.body.find("adaparse_http_requests_total"),
            std::string::npos);
  EXPECT_NE(r.body.find("adaparse_http_request_latency_seconds"),
            std::string::npos);
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);
  net::Fd fd = net::connect_blocking("127.0.0.1", server.port());
  // Two pipelined status requests on one connection; both answered, in
  // order, framed by Content-Length.
  send_all(fd.get(),
           "GET /v1/jobs/1 HTTP/1.1\r\nHost: t\r\n\r\n"
           "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  const std::string raw = read_to_eof(fd.get());
  EXPECT_NE(raw.find("HTTP/1.1 404 "), std::string::npos);
  // Both responses arrived (two heads in the byte stream).
  std::size_t heads = 0;
  for (std::size_t pos = raw.find("HTTP/1.1 ");
       pos != std::string::npos; pos = raw.find("HTTP/1.1 ", pos + 1)) {
    ++heads;
  }
  EXPECT_EQ(heads, 2U);
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, PipelinedFloodParksReadsAndAnswersEverything) {
  // A client that pipelines many requests while never reading responses
  // must hit TCP flow control (reads parked at the write high watermark),
  // not grow the server's output buffer without bound — and once it does
  // read, every parked request must still be answered, in order.
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServerConfig http_config;
  http_config.write_high_watermark = 2048;
  http_config.write_low_watermark = 512;
  serve::http::HttpServer server(service, http_config);

  constexpr int kRequests = 30;
  net::Fd fd = net::connect_blocking("127.0.0.1", server.port());
  std::string flood;
  for (int i = 0; i < kRequests - 1; ++i) {
    flood += "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  flood += "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  send_all(fd.get(), flood);
  // Give the server time to saturate the watermark before we drain.
  std::this_thread::sleep_for(50ms);

  const std::string raw = read_to_eof(fd.get());
  std::size_t heads = 0;
  for (std::size_t pos = raw.find("HTTP/1.1 200 ");
       pos != std::string::npos; pos = raw.find("HTTP/1.1 200 ", pos + 1)) {
    ++heads;
  }
  EXPECT_EQ(heads, static_cast<std::size_t>(kRequests));
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, ShardFileIsForbiddenWithoutAConfiguredRoot) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServer server(service);  // no shard_root
  const auto r = roundtrip(
      server.port(),
      post_parse_request("{\"documents\":{\"shard_file\":\"x.shard\"}}"));
  EXPECT_EQ(r.status, 403);
  EXPECT_EQ(util::Json::parse(r.body).at("error").at("code").as_string(),
            "shard_file_forbidden");
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, ShardFileIsConfinedToTheShardRoot) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "adaparse_http_shards";
  fs::remove_all(root);
  fs::create_directories(root);

  // A real shard inside the root...
  doc::GeneratorConfig corpus;
  corpus.num_documents = 12;
  corpus.seed = 99;
  io::write_file_atomic(
      (root / "ok.shard").string(),
      io::pack_corpus_shard(doc::CorpusGenerator(corpus).generate()));
  // ...a file OUTSIDE the root (must stay unreachable)...
  io::write_file_atomic((root.parent_path() / "outside.shard").string(),
                        "secret");
  // ...a symlink inside the root escaping it, and a FIFO (must not block
  // or be read).
  fs::create_symlink(root.parent_path() / "outside.shard", root / "link");
  ASSERT_EQ(::mkfifo((root / "pipe.shard").c_str(), 0600), 0);

  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServerConfig http_config;
  http_config.shard_root = root.string();
  serve::http::HttpServer server(service, http_config);
  const std::uint16_t port = server.port();

  const auto shard_request = [](const std::string& name) {
    return post_parse_request(
        "{\"engine\":{\"variant\":\"fasttext\",\"batch_size\":4},"
        "\"documents\":{\"shard_file\":\"" + name + "\"}}");
  };

  {  // happy path: the confined shard streams all its records
    const auto r = roundtrip(port, shard_request("ok.shard"));
    EXPECT_EQ(r.status, 200);
    const auto lines = split_lines(r.body);
    ASSERT_EQ(lines.size(), 12U + 2);  // created + records + done
    EXPECT_EQ(util::Json::parse(lines.back())
                  .at("done")
                  .at("state")
                  .as_string(),
              "completed");
  }
  {  // dot-segment escape
    const auto r = roundtrip(port, shard_request("../outside.shard"));
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(
        util::Json::parse(r.body).at("error").at("code").as_string(),
        "shard_unavailable");
  }
  {  // symlink escape
    const auto r = roundtrip(port, shard_request("link"));
    EXPECT_EQ(r.status, 400);
  }
  {  // absolute path
    const auto r = roundtrip(
        port, shard_request((root.parent_path() / "outside.shard")
                                .string()));
    EXPECT_EQ(r.status, 400);
  }
  {  // missing shard — and the 404 must not leak the resolved path
    const auto r = roundtrip(port, shard_request("nope.shard"));
    EXPECT_EQ(r.status, 404);
    EXPECT_EQ(util::Json::parse(r.body)
                  .at("error")
                  .at("message")
                  .as_string()
                  .find(root.string()),
              std::string::npos);
  }
  {  // a FIFO must be rejected as not-a-regular-file, never opened
     // blocking (a hang here would stall this whole test)
    const auto r = roundtrip(port, shard_request("pipe.shard"));
    EXPECT_EQ(r.status, 400);
  }
  {  // garbage bytes inside the root: confined, read, rejected as
     // malformed by the codec
    io::write_file_atomic((root / "junk.shard").string(), "not a shard");
    const auto r = roundtrip(port, shard_request("junk.shard"));
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(
        util::Json::parse(r.body).at("error").at("code").as_string(),
        "shard_malformed");
  }
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, OversizedShardFileAnswers413) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "adaparse_http_shards_big";
  fs::remove_all(root);
  fs::create_directories(root);
  io::write_file_atomic((root / "big.shard").string(),
                        std::string(4096, 'x'));

  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  serve::http::HttpServerConfig http_config;
  http_config.shard_root = root.string();
  http_config.max_shard_bytes = 1024;
  serve::http::HttpServer server(service, http_config);

  const auto r = roundtrip(
      server.port(),
      post_parse_request(
          "{\"documents\":{\"shard_file\":\"big.shard\"}}"));
  EXPECT_EQ(r.status, 413);
  EXPECT_EQ(util::Json::parse(r.body).at("error").at("code").as_string(),
            "shard_too_large");
  server.stop();
  service.shutdown();
}

TEST(HttpServerTest, ConcurrentStopCallsAreSerialized) {
  serve::ParseService service(small_service_config(), nullptr,
                              shared_improver());
  auto server = std::make_unique<serve::http::HttpServer>(service);
  // Rule out the double-join race: every caller either performs the full
  // shutdown or waits for the winner — never two joins of one thread.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { server->stop(); });
  }
  for (auto& t : stoppers) t.join();
  server->stop();  // still idempotent afterwards
  server.reset();
  service.shutdown();
}

}  // namespace
}  // namespace adaparse
