// Unit tests for the util module: RNG, statistics, JSON, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace adaparse::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(31);
  std::size_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.zipf(100, 1.1);
    EXPECT_LT(r, 100U);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(55);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Hash64, StableAndDistinct) {
  EXPECT_EQ(hash64("abc"), hash64("abc"));
  EXPECT_NE(hash64("abc"), hash64("abd"));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

// -------------------------------------------------------------- stats ----

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 3.5, -1.0, 0.25};
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  Rng rng(61);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {4, 3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

TEST(Stats, CorrelationTestSignificance) {
  Rng rng(71);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal();
    x.push_back(v);
    y.push_back(0.5 * v + rng.normal());  // rho ~ 0.45
  }
  const auto test = correlation_test(x, y);
  EXPECT_GT(test.rho, 0.3);
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(Stats, CorrelationTestNullCase) {
  Rng rng(73);
  std::vector<double> x, y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  const auto test = correlation_test(x, y);
  EXPECT_GT(test.p_value, 0.001);
}

TEST(Stats, RSquaredPerfect) {
  const std::vector<double> t = {1, 2, 3};
  EXPECT_NEAR(r_squared(t, t), 1.0, 1e-12);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::vector<double> t = {1, 2, 3, 4};
  const std::vector<double> p = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(t, p), 0.0, 1e-12);
}

TEST(Stats, RSquaredWorseThanMeanIsNegative) {
  const std::vector<double> t = {1, 2, 3, 4};
  const std::vector<double> p = {4, 3, 2, 1};
  EXPECT_LT(r_squared(t, p), 0.0);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_EQ(quantile(xs, 0.5), 3.0);
}

TEST(P2QuantileTest, ExactForFewerThanFiveSamples) {
  P2Quantile p50(0.5);
  EXPECT_EQ(p50.value(), 0.0);  // no observations yet
  p50.add(9.0);
  EXPECT_EQ(p50.value(), 9.0);
  p50.add(1.0);
  p50.add(5.0);
  // Three samples: the estimate is the exact interpolated median.
  EXPECT_NEAR(p50.value(), 5.0, 1e-12);
  EXPECT_EQ(p50.count(), 3U);
}

TEST(P2QuantileTest, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2QuantileTest, TwoValuesInterpolateExactly) {
  // Still in the exact-order-statistics bootstrap regime (n < 5): the p95
  // of {1, 3} is the linear interpolation at rank 0.95 * (n - 1).
  P2Quantile p95(0.95);
  p95.add(3.0);
  p95.add(1.0);
  EXPECT_NEAR(p95.value(), 1.0 + 0.95 * 2.0, 1e-12);
  P2Quantile p50(0.5);
  p50.add(10.0);
  p50.add(20.0);
  EXPECT_NEAR(p50.value(), 15.0, 1e-12);
}

TEST(P2QuantileTest, ConstantStreamStaysConstant) {
  // Every marker height equals the constant; the parabolic update's
  // divisions must not wander off it or divide by zero.
  P2Quantile p99(0.99);
  for (int i = 0; i < 1000; ++i) p99.add(7.5);
  EXPECT_DOUBLE_EQ(p99.value(), 7.5);
  EXPECT_EQ(p99.count(), 1000U);
}

TEST(P2QuantileTest, NonFiniteObservationsAreDropped) {
  P2Quantile p50(0.5);
  p50.add(std::nan(""));
  EXPECT_EQ(p50.count(), 0U);  // dropped before the bootstrap buffer
  EXPECT_EQ(p50.value(), 0.0);
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) p50.add(x);
  const double before = p50.value();
  p50.add(std::nan(""));
  p50.add(std::numeric_limits<double>::infinity());
  p50.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(p50.count(), 6U);
  EXPECT_DOUBLE_EQ(p50.value(), before);  // estimate unpoisoned
  EXPECT_FALSE(std::isnan(p50.value()));
}

TEST(P2QuantileTest, TracksUniformDistributionQuantiles) {
  // Uniform [0,1): the true q-quantile is q itself.
  for (const double q : {0.5, 0.95, 0.99}) {
    P2Quantile estimator(q);
    Rng rng(0xACE5);
    for (int i = 0; i < 20000; ++i) estimator.add(rng.uniform());
    EXPECT_NEAR(estimator.value(), q, 0.02)
        << "uniform quantile q=" << q;
  }
}

TEST(P2QuantileTest, TracksExponentialTailQuantiles) {
  // Exponential(rate=2): quantile q is -ln(1-q)/2. Checks the estimator on
  // a skewed, heavy-ish-tailed distribution like service latencies.
  for (const double q : {0.5, 0.95, 0.99}) {
    P2Quantile estimator(q);
    Rng rng(0xBEEF);
    for (int i = 0; i < 30000; ++i) estimator.add(rng.exponential(2.0));
    const double truth = -std::log(1.0 - q) / 2.0;
    EXPECT_NEAR(estimator.value(), truth, 0.08 * truth + 0.01)
        << "exponential quantile q=" << q;
  }
}

TEST(P2QuantileTest, MatchesExactQuantileOnNormalStream) {
  P2Quantile p95(0.95);
  std::vector<double> xs;
  Rng rng(0x9E3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    p95.add(x);
    xs.push_back(x);
  }
  const double exact = quantile(xs, 0.95);
  EXPECT_NEAR(p95.value(), exact, 0.15);
  EXPECT_EQ(p95.count(), xs.size());
}

TEST(P2QuantileTest, OrderedQuantilesStayOrdered) {
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  Rng rng(0x77);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(1.0);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_LT(p50.value(), p95.value());
  EXPECT_LT(p95.value(), p99.value());
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(i * i * i);  // nonlinear but monotone
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

// --------------------------------------------------------------- json ----

TEST(Json, RoundTripObject) {
  JsonObject obj;
  obj["name"] = "doc-1";
  obj["score"] = 0.52;
  obj["pages"] = 12;
  obj["ok"] = true;
  obj["missing"] = nullptr;
  const Json j(obj);
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "doc-1");
  EXPECT_NEAR(parsed.at("score").as_number(), 0.52, 1e-12);
  EXPECT_EQ(parsed.at("pages").as_number(), 12.0);
  EXPECT_TRUE(parsed.at("ok").as_bool());
  EXPECT_TRUE(parsed.at("missing").is_null());
}

TEST(Json, EscapesControlCharacters) {
  const Json j(std::string("a\"b\\c\nd\te"));
  const std::string dumped = j.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParsesNestedStructures) {
  const Json j = Json::parse(R"({"a":[1,2,{"b":null}],"c":{"d":false}})");
  EXPECT_EQ(j.at("a").as_array().size(), 3U);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").is_null());
  EXPECT_FALSE(j.at("c").at("d").as_bool());
}

TEST(Json, ParsesUnicodeEscapes) {
  const Json j = Json::parse(R"("Aé")");
  EXPECT_EQ(j.as_string(), "A\xC3\xA9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(Json, NumbersIncludingNegativeAndExponent) {
  EXPECT_EQ(Json::parse("-3.5").as_number(), -3.5);
  EXPECT_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("0").as_number(), 0.0);
}

TEST(Json, NonFiniteDumpsAsNull) {
  const Json j(std::nan(""));
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, ContainsAndAt) {
  const Json j = Json::parse(R"({"x":1})");
  EXPECT_TRUE(j.contains("x"));
  EXPECT_FALSE(j.contains("y"));
  EXPECT_THROW(j.at("y"), std::out_of_range);
}

// -------------------------------------------------------------- table ----

TEST(TableTest, AlignsColumns) {
  Table t({"Parser", "BLEU"});
  t.row().add("PyMuPDF").add(51.9, 1);
  t.row().add("pypdf").add(43.6, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("PyMuPDF"), std::string::npos);
  EXPECT_NE(s.find("51.9"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2U);
}

TEST(TableTest, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds() * 1000.0 - 1e-6);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace adaparse::util
