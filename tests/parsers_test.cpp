// Tests for the simulated parser cohort: determinism, error-profile shape,
// cost-model ordering, and failure handling.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "doc/generator.hpp"
#include "metrics/bleu.hpp"
#include "metrics/scores.hpp"
#include "parsers/registry.hpp"
#include "util/stats.hpp"

namespace adaparse::parsers {
namespace {

// Corpus generation dominates the suite's wall time, and the parameterized
// cohort suite re-requests the same corpus once per parser. Memoize by
// configuration so each distinct corpus is generated exactly once per binary;
// tests that mutate documents copy out of the shared (const) corpus.
const std::vector<doc::Document>& small_corpus(std::size_t n,
                                               std::uint64_t seed,
                                               bool born_digital = true) {
  using Key = std::tuple<std::size_t, std::uint64_t, bool>;
  static auto& cache = *new std::map<Key, std::vector<doc::Document>>();
  const Key key{n, seed, born_digital};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const auto config = born_digital ? doc::born_digital_config(n, seed)
                                     : doc::benchmark_config(n, seed);
    it = cache.emplace(key, doc::CorpusGenerator(config).generate()).first;
  }
  return it->second;
}

double corpus_bleu(const Parser& parser,
                   const std::vector<doc::Document>& docs) {
  util::RunningStats stats;
  for (const auto& d : docs) {
    const auto parse = parser.parse(d);
    if (!parse.ok) continue;
    stats.add(metrics::bleu(parse.full_text(), d.full_groundtruth()));
  }
  return stats.mean();
}

TEST(ParserRegistry, CreatesAllSixKinds) {
  const auto cohort = all_parsers();
  ASSERT_EQ(cohort.size(), kNumParsers);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(cohort[i]->kind()), i);
  }
}

TEST(ParserRegistry, FullCohortConstructsWithDistinctNames) {
  // Regression guard for the empty-instantiation bug: an empty or short
  // cohort must fail loudly, and every kind must construct a parser that
  // reports a unique name.
  ASSERT_EQ(all_parsers().size(), kNumParsers);
  ASSERT_EQ(all_kinds().size(), kNumParsers);
  std::set<std::string> names;
  for (ParserKind kind : all_kinds()) {
    const auto parser = make_parser(kind);
    ASSERT_NE(parser, nullptr);
    EXPECT_EQ(parser->kind(), kind);
    EXPECT_EQ(parser->name(), std::string_view(parser_name(kind)));
    names.insert(std::string(parser->name()));
  }
  EXPECT_EQ(names.size(), kNumParsers);
}

TEST(ParserRegistry, CohortSuiteInstantiatesEveryParser) {
  // The Cohort/AllParsersTest instantiation silently ran zero cases in the
  // seed (dangling-iterator UB). Assert against the gtest registry that all
  // 3 parameterized tests exist for all 6 parsers.
  const auto* unit = ::testing::UnitTest::GetInstance();
  int cohort_cases = 0;
  for (int i = 0; i < unit->total_test_suite_count(); ++i) {
    const auto* suite = unit->GetTestSuite(i);
    if (std::string(suite->name()) == "Cohort/AllParsersTest") {
      cohort_cases = suite->total_test_count();
    }
  }
  EXPECT_EQ(cohort_cases, 3 * static_cast<int>(kNumParsers));
}

TEST(ParserRegistry, NamesMatchPaperCohort) {
  EXPECT_STREQ(parser_name(ParserKind::kPyMuPdf), "PyMuPDF");
  EXPECT_STREQ(parser_name(ParserKind::kPypdf), "pypdf");
  EXPECT_STREQ(parser_name(ParserKind::kTesseract), "Tesseract");
  EXPECT_STREQ(parser_name(ParserKind::kGrobid), "GROBID");
  EXPECT_STREQ(parser_name(ParserKind::kMarker), "Marker");
  EXPECT_STREQ(parser_name(ParserKind::kNougat), "Nougat");
}

TEST(ParserRegistry, ResourceClasses) {
  // Paper §5.2: PyMuPDF runs exclusively on CPUs; ViTs need GPUs.
  EXPECT_EQ(make_parser(ParserKind::kPyMuPdf)->resource(), Resource::kCpu);
  EXPECT_EQ(make_parser(ParserKind::kPypdf)->resource(), Resource::kCpu);
  EXPECT_EQ(make_parser(ParserKind::kTesseract)->resource(), Resource::kCpu);
  EXPECT_EQ(make_parser(ParserKind::kNougat)->resource(), Resource::kGpu);
  EXPECT_EQ(make_parser(ParserKind::kMarker)->resource(), Resource::kGpu);
}

TEST(Parsers, DeterministicPerDocument) {
  const auto& docs = small_corpus(5, 42);
  for (const auto& parser : all_parsers()) {
    for (const auto& d : docs) {
      const auto a = parser->parse(d);
      const auto b = parser->parse(d);
      EXPECT_EQ(a.full_text(), b.full_text())
          << parser->name() << " on " << d.id;
    }
  }
}

TEST(Parsers, PageCountMatchesDocument) {
  const auto& docs = small_corpus(5, 7);
  for (const auto& parser : all_parsers()) {
    for (const auto& d : docs) {
      const auto parse = parser->parse(d);
      ASSERT_TRUE(parse.ok);
      EXPECT_EQ(parse.pages.size(), d.num_pages())
          << parser->name() << " on " << d.id;
    }
  }
}

TEST(Parsers, CorruptedDocumentFailsGracefully) {
  auto docs = small_corpus(1, 9);
  docs[0].corrupted = true;
  for (const auto& parser : all_parsers()) {
    const auto parse = parser->parse(docs[0]);
    EXPECT_FALSE(parse.ok);
    EXPECT_FALSE(parse.error.empty());
    EXPECT_TRUE(parse.pages.empty());
  }
}

TEST(Parsers, ExtractionReturnsEmptyWithoutTextLayer) {
  auto docs = small_corpus(1, 11);
  docs[0].text_layer.present = false;
  for (ParserKind kind : {ParserKind::kPyMuPdf, ParserKind::kPypdf}) {
    const auto parse = make_parser(kind)->parse(docs[0]);
    ASSERT_TRUE(parse.ok);
    EXPECT_TRUE(parse.full_text().empty());
  }
  // OCR-class parsers read the image and are unaffected.
  const auto ocr = make_parser(ParserKind::kTesseract)->parse(docs[0]);
  EXPECT_FALSE(ocr.full_text().empty());
}

TEST(Parsers, CostModelOrdering) {
  // Throughput ordering of the paper: PyMuPDF fastest; pypdf ~13x slower;
  // GROBID/Tesseract mid; Nougat GPU-heavy; Marker the slowest.
  const auto& docs = small_corpus(10, 13);
  auto total_cost = [&](ParserKind kind) {
    const auto parser = make_parser(kind);
    double cpu = 0.0, gpu = 0.0;
    for (const auto& d : docs) {
      const auto c = parser->estimate_cost(d);
      cpu += c.cpu_seconds;
      gpu += c.gpu_seconds;
    }
    return std::make_pair(cpu, gpu);
  };
  const auto [mupdf_cpu, mupdf_gpu] = total_cost(ParserKind::kPyMuPdf);
  const auto [pypdf_cpu, pypdf_gpu] = total_cost(ParserKind::kPypdf);
  const auto [tess_cpu, tess_gpu] = total_cost(ParserKind::kTesseract);
  const auto [nougat_cpu, nougat_gpu] = total_cost(ParserKind::kNougat);
  const auto [marker_cpu, marker_gpu] = total_cost(ParserKind::kMarker);

  EXPECT_LT(mupdf_cpu, pypdf_cpu);
  EXPECT_LT(pypdf_cpu, tess_cpu);
  EXPECT_EQ(mupdf_gpu, 0.0);
  EXPECT_EQ(pypdf_gpu, 0.0);
  EXPECT_EQ(tess_gpu, 0.0);
  EXPECT_GT(nougat_gpu, 0.0);
  EXPECT_GT(marker_gpu, nougat_gpu);
  // pypdf per-page cost ~3x MuPDF's (13x throughput difference arrives with
  // the 4x FS-op multiplier in the cluster model).
  EXPECT_GT(pypdf_cpu, 2.0 * mupdf_cpu);
}

TEST(Parsers, NougatLoadTimeMatchesPaper) {
  EXPECT_NEAR(make_parser(ParserKind::kNougat)->model_load_seconds(), 15.0,
              1e-9);
  EXPECT_EQ(make_parser(ParserKind::kPyMuPdf)->model_load_seconds(), 0.0);
}

TEST(Parsers, ParseCostMatchesEstimate) {
  const auto& docs = small_corpus(3, 17);
  for (const auto& parser : all_parsers()) {
    for (const auto& d : docs) {
      const auto estimate = parser->estimate_cost(d);
      const auto parse = parser->parse(d);
      EXPECT_DOUBLE_EQ(parse.cost.cpu_seconds, estimate.cpu_seconds);
      EXPECT_DOUBLE_EQ(parse.cost.gpu_seconds, estimate.gpu_seconds);
    }
  }
}

// ------------------------------ quality-shape properties (born-digital) ----

TEST(ParserQuality, ExtractionBeatsOcrOnCleanBornDigital) {
  // Born-digital documents have good embedded text: extraction should beat
  // OCR on average (paper Table 1: PyMuPDF BLEU 51.9 vs Tesseract 48.8).
  const auto& docs = small_corpus(40, 19);
  const double mupdf = corpus_bleu(*make_parser(ParserKind::kPyMuPdf), docs);
  const double grobid = corpus_bleu(*make_parser(ParserKind::kGrobid), docs);
  EXPECT_GT(mupdf, grobid + 0.1);
}

TEST(ParserQuality, PypdfWorstCharacterAccuracy) {
  // 12 docs keep plenty of statistical power here: the asserted CAR gap is
  // ~0.35 (paper: 32.3 vs 67.0) against a 0.1 margin, and per-doc CAR costs
  // a quadratic edit-distance pass — this was the suite's slowest case.
  const auto& docs = small_corpus(12, 23);
  auto car_of = [&](ParserKind kind) {
    const auto parser = make_parser(kind);
    util::RunningStats stats;
    for (const auto& d : docs) {
      const auto parse = parser->parse(d);
      std::vector<std::string> ref = d.groundtruth_pages;
      stats.add(metrics::score_document(parse.pages, ref).car);
    }
    return stats.mean();
  };
  const double pypdf = car_of(ParserKind::kPypdf);
  const double mupdf = car_of(ParserKind::kPyMuPdf);
  const double nougat = car_of(ParserKind::kNougat);
  EXPECT_LT(pypdf, mupdf - 0.1);  // pypdf's CAR collapse (32.3 vs 67.0)
  EXPECT_LT(pypdf, nougat - 0.1);
}

TEST(ParserQuality, MarkerHasBestCoverage) {
  const auto& docs = small_corpus(40, 29);
  auto coverage_of = [&](ParserKind kind) {
    const auto parser = make_parser(kind);
    util::RunningStats stats;
    for (const auto& d : docs) {
      const auto parse = parser->parse(d);
      std::size_t retrieved = 0;
      for (const auto& page : parse.pages) {
        if (!page.empty()) ++retrieved;
      }
      stats.add(static_cast<double>(retrieved) /
                static_cast<double>(d.num_pages()));
    }
    return stats.mean();
  };
  const double marker = coverage_of(ParserKind::kMarker);
  EXPECT_GT(marker, coverage_of(ParserKind::kNougat));
  EXPECT_GT(marker, coverage_of(ParserKind::kGrobid) + 0.1);
  EXPECT_GT(marker, 0.9);
}

TEST(ParserQuality, GrobidLowestCoverage) {
  const auto& docs = small_corpus(40, 31);
  const auto grobid = make_parser(ParserKind::kGrobid);
  util::RunningStats stats;
  for (const auto& d : docs) {
    const auto parse = grobid->parse(d);
    std::size_t retrieved = 0;
    for (const auto& page : parse.pages) {
      if (!page.empty()) ++retrieved;
    }
    stats.add(static_cast<double>(retrieved) /
              static_cast<double>(d.num_pages()));
  }
  EXPECT_LT(stats.mean(), 0.92);
  EXPECT_GT(stats.mean(), 0.6);
}

TEST(ParserQuality, NougatRobustToScanDegradation) {
  // Table 2 shape: Nougat degrades far less than Tesseract under scans.
  const auto& clean = small_corpus(25, 37);
  auto degraded = clean;
  for (auto& d : degraded) {
    d.image_layer.born_digital = false;
    d.image_layer.blur_sigma = 1.6;
    d.image_layer.rotation_deg = 3.0;
    d.image_layer.compression = 0.5;
  }
  const auto nougat = make_parser(ParserKind::kNougat);
  const auto tesseract = make_parser(ParserKind::kTesseract);
  const double nougat_drop =
      corpus_bleu(*nougat, clean) - corpus_bleu(*nougat, degraded);
  const double tess_drop =
      corpus_bleu(*tesseract, clean) - corpus_bleu(*tesseract, degraded);
  EXPECT_LT(nougat_drop, tess_drop);
}

TEST(ParserQuality, ExtractionUnaffectedByImageDegradation) {
  // Text extraction never looks at the image layer (paper excludes it from
  // Table 2 for exactly this reason).
  const auto& clean = small_corpus(10, 41);
  auto degraded = clean;
  for (auto& d : degraded) {
    d.image_layer.born_digital = false;
    d.image_layer.blur_sigma = 2.0;
  }
  const auto mupdf = make_parser(ParserKind::kPyMuPdf);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(mupdf->parse(clean[i]).full_text(),
              mupdf->parse(degraded[i]).full_text());
  }
}

TEST(ParserQuality, NougatWinsOnMathHeavyBadLayerDocs) {
  // The crossover that motivates adaptive parsing: when the embedded layer
  // is bad (legacy toolchain + heavy math), the ViT wins.
  auto docs = small_corpus(30, 43);
  std::size_t compared = 0;
  double nougat_sum = 0.0, mupdf_sum = 0.0;
  const auto nougat = make_parser(ParserKind::kNougat);
  const auto mupdf = make_parser(ParserKind::kPyMuPdf);
  for (auto& d : docs) {
    d.meta.producer = doc::ProducerTool::kGhostscript;  // force bad layer
    // Rebuild not possible without regenerating; emulate by dropping layer.
    d.text_layer.present = false;
    const auto ref = d.full_groundtruth();
    nougat_sum += metrics::bleu(nougat->parse(d).full_text(), ref);
    mupdf_sum += metrics::bleu(mupdf->parse(d).full_text(), ref);
    ++compared;
  }
  ASSERT_GT(compared, 0U);
  EXPECT_GT(nougat_sum / compared, mupdf_sum / compared + 0.2);
}

class AllParsersTest : public ::testing::TestWithParam<ParserKind> {};

// all_kinds() returns by value: taking begin() from one temporary and end()
// from another hands the vector constructor an invalid range (it constructed
// empty, silently dropping the whole cohort suite). Bind it once.
constexpr auto kAllKinds = all_kinds();

INSTANTIATE_TEST_SUITE_P(
    Cohort, AllParsersTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<ParserKind>& info) {
      // Index-prefixed names: gtest requires case-insensitively unique
      // parameterized test names ("PyMuPDF" vs "pypdf" would collide).
      std::string name = "k" + std::to_string(info.index) + "_";
      for (char c : std::string(parser_name(info.param))) {
        name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      }
      return name;
    });

TEST_P(AllParsersTest, OutputIsNonTrivialOnHealthyDocs) {
  const auto& docs = small_corpus(8, 47);
  const auto parser = make_parser(GetParam());
  std::size_t nonempty = 0;
  for (const auto& d : docs) {
    const auto parse = parser->parse(d);
    ASSERT_TRUE(parse.ok);
    if (parse.full_text().size() > 200) ++nonempty;
  }
  EXPECT_GE(nonempty, 6U);
}

TEST_P(AllParsersTest, BleuWithinPlausibleBand) {
  const auto& docs = small_corpus(20, 53);
  const double score = corpus_bleu(*make_parser(GetParam()), docs);
  EXPECT_GT(score, 0.05);
  EXPECT_LT(score, 0.98);
}

TEST_P(AllParsersTest, CostsArePositiveAndFinite) {
  const auto& docs = small_corpus(5, 59);
  const auto parser = make_parser(GetParam());
  for (const auto& d : docs) {
    const auto cost = parser->estimate_cost(d);
    EXPECT_GT(cost.cpu_seconds + cost.gpu_seconds, 0.0);
    EXPECT_GT(cost.bytes_read, 0.0);
    EXPECT_TRUE(std::isfinite(cost.cpu_seconds));
    EXPECT_TRUE(std::isfinite(cost.gpu_seconds));
  }
}

}  // namespace
}  // namespace adaparse::parsers
