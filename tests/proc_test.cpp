// Tests for the proc module: fork/waitpid child handles, pipe I/O
// helpers, and the framed wire codec the campaign coordinator speaks.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "io/fsio.hpp"
#include "proc/child.hpp"
#include "proc/pipe.hpp"
#include "proc/wire.hpp"

namespace adaparse::proc {
namespace {

// ---------------------------------------------------------------- child ----

TEST(Child, ExitCodeRoundTrips) {
  Child child = Child::spawn([] { return 42; });
  EXPECT_GT(child.pid(), 0);
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 42);
  EXPECT_FALSE(status.signaled);
  EXPECT_FALSE(child.running());
}

TEST(Child, ThrowingBodyExitsNonzero) {
  Child child = Child::spawn([]() -> int {
    throw std::runtime_error("worker blew up");
  });
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 125);
}

TEST(Child, SigkillReportsTerminationSignal) {
  Pipe ready;
  Child child = Child::spawn([&ready]() -> int {
    ready.close_read();
    write_all(ready.write_fd(), "x");
    for (;;) ::pause();
  });
  ready.close_write();
  // Wait for the child to signal it is parked, so the kill races nothing.
  char buf = 0;
  ASSERT_EQ(::read(ready.read_fd(), &buf, 1), 1);
  child.kill(SIGKILL);
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
  EXPECT_FALSE(status.exited);
}

TEST(Child, TryWaitIsNonblockingAndReportsOnce) {
  Pipe gate;
  Child child = Child::spawn([&gate] {
    gate.close_write();
    // Block until the parent closes its write end (EOF), then exit.
    std::string sink;
    char buf = 0;
    while (::read(gate.read_fd(), &buf, 1) > 0) sink.push_back(buf);
    return 7;
  });
  gate.close_read();
  EXPECT_FALSE(child.try_wait().has_value());  // still parked on the pipe
  EXPECT_TRUE(child.running());
  gate.close_write();  // EOF: child exits
  std::optional<ExitStatus> status;
  for (int i = 0; i < 2000 && !status; ++i) {
    status = child.try_wait();
    if (!status) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->exited);
  EXPECT_EQ(status->exit_code, 7);
  // Reaped exactly once; later polls report nothing.
  EXPECT_FALSE(child.try_wait().has_value());
}

TEST(Child, DestructorReapsARunningChild) {
  pid_t pid = -1;
  {
    Child child = Child::spawn([]() -> int {
      for (;;) ::pause();
    });
    pid = child.pid();
    ASSERT_GT(pid, 0);
  }
  // The dropped handle SIGKILLed and reaped: the pid is no longer ours.
  // (kill(pid, 0) failing with ESRCH, or the pid belonging to a new
  // process, both mean "not our zombie"; waitpid is the precise check.)
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
}

// ----------------------------------------------------------------- pipe ----

TEST(Pipe, WriteAllThenReadAvailableRoundTrips) {
  Pipe pipe;
  Pipe::set_nonblocking(pipe.read_fd());
  const std::string payload(100000, 'x');  // larger than the pipe buffer
  std::string received;
  std::thread writer([&] { EXPECT_TRUE(write_all(pipe.write_fd(), payload)); });
  while (received.size() < payload.size()) {
    if (!read_available(pipe.read_fd(), received)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  EXPECT_EQ(received, payload);
}

TEST(Pipe, ReadAvailableReportsEofAfterWriterCloses) {
  Pipe pipe;
  Pipe::set_nonblocking(pipe.read_fd());
  write_all(pipe.write_fd(), "tail");
  pipe.close_write();
  std::string received;
  // Drains the buffered bytes, then reports EOF (false).
  EXPECT_FALSE(read_available(pipe.read_fd(), received));
  EXPECT_EQ(received, "tail");
}

TEST(Pipe, WriteToClosedReadEndFailsInsteadOfKilling) {
  signal(SIGPIPE, SIG_IGN);
  Pipe pipe;
  pipe.close_read();
  EXPECT_FALSE(write_all(pipe.write_fd(), "nobody listens"));
}

// ----------------------------------------------------------------- wire ----

Message sample_result() {
  Message m;
  m.type = MsgType::kResult;
  m.status = 1;
  m.shard = 3;
  m.attempt = 2;
  m.docs_done = 17;
  m.records = 24;
  m.bytes = 123456;
  m.checksum = 0xfeedfacecafebeefULL;
  m.quarantined = 1;
  m.restaged = 1;
  m.wall_ms = 250;
  m.failed_doc_id = "doc-031";
  m.quarantine = {"doc-007", "doc-019"};
  return m;
}

void expect_equal(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.docs_done, b.docs_done);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.restaged, b.restaged);
  EXPECT_EQ(a.wall_ms, b.wall_ms);
  EXPECT_EQ(a.failed_doc_id, b.failed_doc_id);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.quarantine, b.quarantine);
}

TEST(Wire, FrameRoundTrips) {
  const Message sent = sample_result();
  FrameDecoder decoder;
  decoder.feed(encode_frame(sent));
  const auto received = decoder.next();
  ASSERT_TRUE(received.has_value());
  expect_equal(*received, sent);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, DecoderHandlesArbitraryChunking) {
  // Pipes deliver byte streams, not messages: feeding one byte at a time
  // must produce exactly the same frames as one big feed.
  const Message first = sample_result();
  Message second;
  second.type = MsgType::kHeartbeat;
  second.shard = 9;
  second.attempt = 1;
  second.docs_done = 5;
  const std::string stream = encode_frame(first) + encode_frame(second);
  FrameDecoder decoder;
  std::vector<Message> received;
  for (const char byte : stream) {
    decoder.feed(std::string_view(&byte, 1));
    while (auto message = decoder.next()) received.push_back(*message);
  }
  ASSERT_EQ(received.size(), 2u);
  expect_equal(received[0], first);
  expect_equal(received[1], second);
}

TEST(Wire, CorruptPayloadThrows) {
  std::string frame = encode_frame(sample_result());
  frame[frame.size() / 2] ^= 0x40;  // flip a payload bit; CRC must catch it
  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(Wire, OversizedLengthThrows) {
  // A garbage length prefix (e.g. reading a binary torrent of noise) must
  // be rejected immediately, not buffered toward 4 GiB.
  std::string frame;
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(0xFF));
  frame.resize(12, '\0');
  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

// Rewrites a frame's type byte to `type` and fixes up the CRC, producing a
// structurally valid frame of a kind this build does not know about.
std::string frame_with_type(const Message& m, char type) {
  std::string payload = encode_frame(m).substr(12);
  payload[0] = type;
  std::string frame;
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((size >> (8 * i)) & 0xFF));
  }
  const std::uint64_t crc = io::fnv1a(payload);
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  frame += payload;
  return frame;
}

TEST(Wire, UnknownTypeDecodesToSkippableMessage) {
  // Forward compatibility: a checksum-valid frame of an unknown kind (a
  // newer peer's message) must decode to kUnknown for the receiver to
  // skip, not kill the connection like corruption does.
  FrameDecoder decoder;
  decoder.feed(frame_with_type(sample_result(), 99));
  const auto received = decoder.next();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, MsgType::kUnknown);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, DecoderContinuesPastUnknownFrame) {
  // The frame after a skipped unknown one must still decode cleanly — the
  // length prefix, not the payload schema, delimits frames.
  const Message keeper = sample_result();
  FrameDecoder decoder;
  decoder.feed(frame_with_type(sample_result(), 77) + encode_frame(keeper));
  const auto skipped = decoder.next();
  ASSERT_TRUE(skipped.has_value());
  EXPECT_EQ(skipped->type, MsgType::kUnknown);
  const auto kept = decoder.next();
  ASSERT_TRUE(kept.has_value());
  expect_equal(*kept, keeper);
}

TEST(Wire, SpansFrameRoundTripsPayload) {
  Message m;
  m.type = MsgType::kSpans;
  m.shard = 3;
  m.spans = std::string("\x00\x01\xFFopaque-span-bytes\x00", 20);
  FrameDecoder decoder;
  decoder.feed(encode_frame(m));
  const auto received = decoder.next();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, MsgType::kSpans);
  EXPECT_EQ(received->shard, 3u);
  EXPECT_EQ(received->spans, m.spans);  // binary payload, byte-exact
}

TEST(Wire, PartialFrameYieldsNothing) {
  const std::string frame = encode_frame(sample_result());
  FrameDecoder decoder;
  decoder.feed(std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
}

}  // namespace
}  // namespace adaparse::proc
