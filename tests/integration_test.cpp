// End-to-end integration tests: the full corpus -> train -> route -> parse
// -> score -> serialize pipeline, checking the paper's headline claims in
// miniature (AdaParse beats its cheap constituent on quality while staying
// far cheaper than Nougat-only parsing).
#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "core/training.hpp"
#include "doc/augment.hpp"
#include "doc/generator.hpp"
#include "hpc/campaign.hpp"
#include "io/jsonl.hpp"
#include "metrics/bleu.hpp"
#include "metrics/scores.hpp"
#include "parsers/registry.hpp"
#include "pref/study.hpp"

namespace adaparse {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(doc::benchmark_config(300, 11)).generate());
    test_docs_ = new std::vector<doc::Document>(
        doc::CorpusGenerator(doc::benchmark_config(150, 22)).generate());
    core::TrainAdaParseOptions options;
    options.engine.threads = 4;
    options.engine.batch_size = 64;
    options.regression.epochs = 10;
    options.apply_dpo = false;
    bundle_ = new core::TrainedAdaParse(
        core::train_adaparse(*train_docs_, nullptr, nullptr, options));
  }
  static void TearDownTestSuite() {
    delete train_docs_;
    delete test_docs_;
    delete bundle_;
    train_docs_ = test_docs_ = nullptr;
    bundle_ = nullptr;
  }

  static metrics::CorpusScores score_system(
      const std::vector<doc::Document>& docs,
      const std::vector<io::ParseRecord>& records) {
    metrics::CorpusScores scores;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      metrics::DocumentScores ds;
      ds.bleu = metrics::bleu(records[i].text, docs[i].full_groundtruth());
      ds.coverage =
          docs[i].num_pages() > 0
              ? static_cast<double>(records[i].pages_retrieved) /
                    static_cast<double>(docs[i].num_pages())
              : 0.0;
      ds.tokens = records[i].text.size() / 6;
      scores.add(ds);
    }
    return scores;
  }

  static metrics::CorpusScores score_parser(
      const std::vector<doc::Document>& docs, parsers::ParserKind kind) {
    const auto parser = parsers::make_parser(kind);
    metrics::CorpusScores scores;
    for (const auto& d : docs) {
      const auto parse = parser->parse(d);
      metrics::DocumentScores ds;
      ds.bleu = metrics::bleu(parse.full_text(), d.full_groundtruth());
      ds.tokens = parse.full_text().size() / 6;
      scores.add(ds);
    }
    return scores;
  }

  static std::vector<doc::Document>* train_docs_;
  static std::vector<doc::Document>* test_docs_;
  static core::TrainedAdaParse* bundle_;
};

std::vector<doc::Document>* PipelineFixture::train_docs_ = nullptr;
std::vector<doc::Document>* PipelineFixture::test_docs_ = nullptr;
core::TrainedAdaParse* PipelineFixture::bundle_ = nullptr;

TEST_F(PipelineFixture, AdaParseBeatsItsCheapConstituent) {
  // Headline Table 1 property: AdaParse's BLEU exceeds PyMuPDF-only.
  const auto output = bundle_->llm->run(*test_docs_);
  const auto ada = score_system(*test_docs_, output.records);
  const auto mupdf = score_parser(*test_docs_, parsers::ParserKind::kPyMuPdf);
  EXPECT_GT(ada.bleu(), mupdf.bleu());
}

TEST_F(PipelineFixture, AdaParseFarCheaperThanNougatOnly) {
  const auto decisions = bundle_->llm->route(*test_docs_);
  const auto ada_tasks = bundle_->llm->plan_tasks(*test_docs_, decisions);
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const auto nougat_tasks = hpc::campaign_tasks(*nougat, *test_docs_);
  double ada_gpu = 0.0, nougat_gpu = 0.0;
  for (const auto& t : ada_tasks) ada_gpu += t.gpu_seconds;
  for (const auto& t : nougat_tasks) nougat_gpu += t.gpu_seconds;
  // alpha=5% of documents -> GPU demand should be a small fraction.
  EXPECT_LT(ada_gpu, 0.2 * nougat_gpu);
}

TEST_F(PipelineFixture, ThroughputAtLeastTenTimesNougat) {
  // The paper's 17x single-node claim; we require >=10x to stay robust to
  // corpus randomness.
  const auto decisions = bundle_->llm->route(*test_docs_);
  const auto ada_tasks = bundle_->llm->plan_tasks(*test_docs_, decisions);
  hpc::ClusterConfig config;
  config.nodes = 1;
  const double ada_throughput = hpc::simulate(config, ada_tasks).throughput;
  const auto nougat = parsers::make_parser(parsers::ParserKind::kNougat);
  const double nougat_throughput =
      hpc::simulate(hpc::cluster_for_parser(parsers::ParserKind::kNougat, 1),
                    hpc::campaign_tasks(*nougat, *test_docs_))
          .throughput;
  EXPECT_GT(ada_throughput, 10.0 * nougat_throughput);
}

TEST_F(PipelineFixture, JsonlRoundTripOfFullRun) {
  const auto output = bundle_->llm->run(*test_docs_);
  std::ostringstream os;
  io::JsonlWriter writer(os);
  for (const auto& record : output.records) writer.write(record);
  std::istringstream is(os.str());
  const auto records = io::read_jsonl(is);
  ASSERT_EQ(records.size(), output.records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].document_id, output.records[i].document_id);
    EXPECT_EQ(records[i].text, output.records[i].text);
  }
}

TEST_F(PipelineFixture, RobustToTextLayerPerturbation) {
  // Table 3 shape: replace 15% of text layers; AdaParse should stay at
  // least as good as PyMuPDF-only on the same perturbed corpus.
  auto perturbed = *test_docs_;
  util::Rng rng(5);
  doc::augment_text_layer(perturbed, {.fraction = 0.15}, rng);
  const auto output = bundle_->llm->run(perturbed);
  const auto ada = score_system(perturbed, output.records);
  const auto mupdf = score_parser(perturbed, parsers::ParserKind::kPyMuPdf);
  EXPECT_GE(ada.bleu(), mupdf.bleu() - 0.005);
}

TEST_F(PipelineFixture, FullPipelineWithDpoRuns) {
  // Smaller end-to-end check that the DPO path trains and routes.
  const auto study =
      pref::run_study(*train_docs_, parsers::all_parsers(),
                      {.num_pages = 80,
                       .train_judgments = 300,
                       .val_judgments = 50,
                       .test_judgments = 200,
                       .seed = 77});
  core::TrainAdaParseOptions options;
  options.engine.threads = 4;
  options.regression.epochs = 6;
  options.apply_dpo = true;
  options.dpo.epochs = 10;
  const auto tuned = core::train_adaparse(
      std::vector<doc::Document>(train_docs_->begin(),
                                 train_docs_->begin() + 120),
      &study, train_docs_, options);
  EXPECT_TRUE(tuned.predictor->has_dpo());
  const auto decisions = tuned.llm->route(*test_docs_);
  EXPECT_EQ(decisions.size(), test_docs_->size());
}

TEST_F(PipelineFixture, ScalingSweepShapesMatchPaper) {
  // Miniature Figure 5: PyMuPDF >> AdaParse >> Nougat >> Marker at 8 nodes;
  // Marker stalls while others scale.
  const std::vector<int> nodes = {1, 8};
  const auto docs = *test_docs_;
  auto throughput_at = [&](parsers::ParserKind kind, int n) {
    const auto parser = parsers::make_parser(kind);
    return hpc::simulate(hpc::cluster_for_parser(kind, n),
                         hpc::campaign_tasks(*parser, docs))
        .throughput;
  };
  const double mupdf8 = throughput_at(parsers::ParserKind::kPyMuPdf, 8);
  const double nougat8 = throughput_at(parsers::ParserKind::kNougat, 8);
  const double marker8 = throughput_at(parsers::ParserKind::kMarker, 8);
  const auto decisions = bundle_->llm->route(docs);
  const auto ada_tasks = bundle_->llm->plan_tasks(docs, decisions);
  hpc::ClusterConfig ada_config;
  const double ada8 =
      hpc::throughput_sweep_tasks(ada_tasks, ada_config, {8})[0].throughput;

  EXPECT_GT(mupdf8, ada8);
  EXPECT_GT(ada8, nougat8);
  EXPECT_GT(nougat8, marker8);
}

}  // namespace
}  // namespace adaparse
