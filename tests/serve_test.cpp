// Tests for the serve:: subsystem: fair-share scheduling (DRR + deadline
// boost), admission control watermarks, the job lifecycle with cooperative
// cancellation and incremental results, byte-identical equivalence with a
// standalone engine run, the shared warm-model cache, and the metrics
// registry (quantiles + Prometheus rendering).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/doc_source.hpp"
#include "doc/generator.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "simd/dispatch.hpp"

namespace adaparse::serve {
namespace {

using namespace std::chrono_literals;

std::vector<doc::Document> mixed_corpus(std::size_t n, std::uint64_t seed) {
  auto config = doc::benchmark_config(n, seed);
  config.corrupted_fraction = 0.05;
  return doc::CorpusGenerator(config).generate();
}

/// FT-variant config: works with an untrained Cls2Improver (p = 0.5 for
/// every document), so tests need no training pass; alpha still routes
/// floor(alpha*k) documents per batch to Nougat.
core::EngineConfig ft_config(std::size_t batch_size, double alpha = 0.25) {
  core::EngineConfig config;
  config.variant = core::Variant::kFastText;
  config.batch_size = batch_size;
  config.alpha = alpha;
  return config;
}

std::shared_ptr<core::Cls2Improver> shared_improver() {
  static const auto improver = std::make_shared<core::Cls2Improver>();
  return improver;
}

JobRequest make_request(std::string tenant,
                        const std::vector<doc::Document>& docs,
                        std::size_t batch_size, double alpha = 0.25) {
  JobRequest request;
  request.spec.tenant = std::move(tenant);
  request.spec.engine = ft_config(batch_size, alpha);
  request.source = std::make_unique<core::VectorSource>(docs);
  return request;
}

/// Source whose next() blocks until open() — holds a dispatcher mid-slice
/// so admission tests can fill the queue deterministically.
class GateSource final : public core::DocumentSource {
 public:
  explicit GateSource(std::vector<doc::Document> docs)
      : docs_(std::move(docs)) {}

  std::shared_ptr<const doc::Document> next() override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    }
    if (next_ >= docs_.size()) return nullptr;
    const doc::Document* doc = &docs_[next_++];
    return std::shared_ptr<const doc::Document>(
        std::shared_ptr<const doc::Document>(), doc);
  }

  std::size_t size_hint() const override { return docs_.size(); }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::vector<doc::Document> docs_;
  std::size_t next_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ----------------------------------------------------------- scheduler ----

ScheduleItem item(std::uint64_t id, std::string tenant,
                  std::size_t cost = 10, int priority = 0) {
  ScheduleItem it;
  it.id = id;
  it.tenant = std::move(tenant);
  it.priority = priority;
  it.slice_cost = cost;
  return it;
}

TEST(FairSchedulerTest, EqualWeightsAlternateFairly) {
  FairSchedulerConfig config;
  config.quantum_docs = 10;
  FairScheduler sched(config);
  for (std::uint64_t i = 0; i < 40; ++i) {
    sched.enqueue(item(100 + i, "a"));
    sched.enqueue(item(200 + i, "b"));
  }
  std::map<std::string, int> first40;
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 40; ++i) {
    auto next = sched.next(now);
    ASSERT_TRUE(next.has_value());
    ++first40[next->tenant];
  }
  // Equal weights, equal costs: shares within one quantum burst of equal.
  EXPECT_NEAR(first40["a"], 20, 4);
  EXPECT_NEAR(first40["b"], 20, 4);
  EXPECT_EQ(sched.queued(), 40U);
}

TEST(FairSchedulerTest, WeightsScaleShares) {
  FairSchedulerConfig config;
  config.quantum_docs = 10;
  FairScheduler sched(config);
  sched.set_weight("heavy", 2.0);
  sched.set_weight("light", 1.0);
  for (std::uint64_t i = 0; i < 90; ++i) {
    sched.enqueue(item(100 + i, "heavy"));
    sched.enqueue(item(300 + i, "light"));
  }
  std::map<std::string, int> picks;
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 60; ++i) ++picks[sched.next(now)->tenant];
  // 2:1 weights -> ~40:20, within burst granularity.
  EXPECT_GE(picks["heavy"], 32);
  EXPECT_LE(picks["heavy"], 48);
  EXPECT_EQ(picks["heavy"] + picks["light"], 60);
}

TEST(FairSchedulerTest, PriorityOrdersWithinTenantFifoWithinClass) {
  FairScheduler sched;
  sched.enqueue(item(1, "t", 10, /*priority=*/0));
  sched.enqueue(item(2, "t", 10, /*priority=*/5));
  sched.enqueue(item(3, "t", 10, /*priority=*/0));
  sched.enqueue(item(4, "t", 10, /*priority=*/5));
  const auto now = std::chrono::steady_clock::now();
  EXPECT_EQ(sched.next(now)->id, 2U);  // high priority first, FIFO inside
  EXPECT_EQ(sched.next(now)->id, 4U);
  EXPECT_EQ(sched.next(now)->id, 1U);
  EXPECT_EQ(sched.next(now)->id, 3U);
}

TEST(FairSchedulerTest, RequeueGoesToFrontOfItsPriorityClass) {
  FairScheduler sched;
  sched.enqueue(item(1, "t"));
  sched.enqueue(item(2, "t"));
  const auto now = std::chrono::steady_clock::now();
  auto first = sched.next(now);
  EXPECT_EQ(first->id, 1U);
  sched.requeue(*first);  // mid-run job continues before job 2 starts
  EXPECT_EQ(sched.next(now)->id, 1U);
  EXPECT_EQ(sched.next(now)->id, 2U);
}

TEST(FairSchedulerTest, DeadlineNearJobsJumpTheRotationEarliestFirst) {
  FairSchedulerConfig config;
  config.deadline_slack = 250ms;
  FairScheduler sched(config);
  const auto now = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < 10; ++i) sched.enqueue(item(100 + i, "bulk"));
  auto urgent_late = item(2, "urgent");
  urgent_late.deadline = now + 200ms;
  auto urgent_soon = item(1, "urgent");
  urgent_soon.deadline = now + 50ms;
  sched.enqueue(urgent_late);
  sched.enqueue(urgent_soon);
  // Both deadlines are inside the slack window: EDF order, ahead of bulk.
  EXPECT_EQ(sched.next(now)->id, 1U);
  EXPECT_EQ(sched.next(now)->id, 2U);
  // Urgency spent the tenant's credit; bulk gets the rotation back.
  EXPECT_EQ(sched.next(now)->tenant, "bulk");
}

TEST(FairSchedulerTest, DeadlineStampingCannotStarveOtherTenants) {
  // A tenant that puts a tight deadline on every job borrows at most two
  // quanta of capacity; past that its jobs go through the normal rotation,
  // so an honest backlogged tenant keeps roughly half the service.
  FairSchedulerConfig config;
  config.quantum_docs = 10;
  config.deadline_slack = 250ms;
  FairScheduler sched(config);
  const auto now = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < 60; ++i) {
    sched.enqueue(item(500 + i, "honest", 10));
  }
  std::map<std::string, int> picks;
  std::uint64_t abuser_id = 1;
  auto abusive_item = [&] {
    auto it = item(abuser_id++, "abuser", 10);
    it.deadline = now;  // always "urgent"
    return it;
  };
  sched.enqueue(abusive_item());
  for (int round = 0; round < 40; ++round) {
    auto next = sched.next(now);
    ASSERT_TRUE(next.has_value());
    ++picks[next->tenant];
    // The abuser immediately resubmits deadline-stamped work (the
    // requeue-between-slices pattern of one long job).
    if (next->tenant == "abuser") sched.enqueue(abusive_item());
  }
  EXPECT_GE(picks["honest"], 16)
      << "deadline stamping starved the honest tenant";
  EXPECT_GE(picks["abuser"], 2);  // the borrow allowance did boost it
}

TEST(FairSchedulerTest, FarDeadlinesDoNotBoost) {
  FairSchedulerConfig config;
  config.deadline_slack = 50ms;
  FairScheduler sched(config);
  const auto now = std::chrono::steady_clock::now();
  auto relaxed = item(7, "t");
  relaxed.deadline = now + 10s;  // far outside the slack window
  sched.enqueue(item(5, "t"));
  sched.enqueue(relaxed);
  EXPECT_EQ(sched.next(now)->id, 5U);  // plain FIFO, no jump
}

TEST(FairSchedulerTest, RequeueCycleDoesNotStarveOtherTenants) {
  // Regression: a tenant with ONE long job leaves and re-enters the
  // rotation on every slice (pop empties its queue; requeue re-adds it).
  // That cycle must not let it capture the cursor and starve a tenant
  // whose jobs sit queued the whole time.
  FairSchedulerConfig config;
  config.quantum_docs = 16;
  FairScheduler sched(config);
  const auto now = std::chrono::steady_clock::now();
  sched.enqueue(item(1, "solo", 16));  // one job, requeued after each slice
  for (std::uint64_t i = 0; i < 50; ++i) {
    sched.enqueue(item(100 + i, "backlog", 16));
  }
  std::map<std::string, int> picks;
  for (int round = 0; round < 40; ++round) {
    auto next = sched.next(now);
    ASSERT_TRUE(next.has_value());
    ++picks[next->tenant];
    if (next->tenant == "solo") sched.requeue(*next);  // job continues
  }
  EXPECT_NEAR(picks["solo"], 20, 6);
  EXPECT_NEAR(picks["backlog"], 20, 6);
}

TEST(FairSchedulerTest, RemoveAndTakeAll) {
  FairScheduler sched;
  sched.enqueue(item(1, "a"));
  sched.enqueue(item(2, "a"));
  sched.enqueue(item(3, "b"));
  EXPECT_TRUE(sched.remove(2));
  EXPECT_FALSE(sched.remove(2));
  EXPECT_EQ(sched.queued(), 2U);
  const auto all = sched.take_all();
  EXPECT_EQ(all.size(), 2U);
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.next(std::chrono::steady_clock::now()).has_value());
}

// ------------------------------------------------------------- metrics ----

TEST(MetricsRegistryTest, CountersQuantilesAndPrometheusRendering) {
  MetricsRegistry metrics;
  metrics.on_submitted("acme");
  metrics.on_submitted("acme");
  metrics.on_started("acme", 0.25);
  metrics.on_docs_completed("acme", 64);
  metrics.on_completed("acme", 1.5);
  metrics.on_cancelled("acme", 0.5);
  metrics.on_rejected("other");
  metrics.set_gauges(3, 1, 640);

  const auto snap = metrics.snapshot();
  ASSERT_EQ(snap.tenants.size(), 2U);
  const auto& acme = snap.tenants[0];
  EXPECT_EQ(acme.tenant, "acme");
  EXPECT_EQ(acme.jobs_submitted, 2U);
  EXPECT_EQ(acme.jobs_completed, 1U);
  EXPECT_EQ(acme.jobs_cancelled, 1U);
  EXPECT_EQ(acme.docs_completed, 64U);
  EXPECT_NEAR(acme.queue_wait_mean_seconds, 0.25, 1e-12);
  // Two latency samples (1.5, 0.5): the p50 estimate interpolates between
  // them and every quantile stays within the observed range.
  EXPECT_GE(acme.latency_p50_seconds, 0.5);
  EXPECT_LE(acme.latency_p99_seconds, 1.5);
  EXPECT_GT(acme.throughput_docs_per_second, 0.0);
  EXPECT_EQ(snap.tenants[1].jobs_rejected, 1U);
  EXPECT_EQ(snap.queued_jobs, 3U);
  EXPECT_EQ(snap.resident_documents, 640U);

  const std::string text = metrics.render_prometheus();
  EXPECT_NE(text.find("# TYPE adaparse_serve_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("adaparse_serve_jobs_total{tenant=\"acme\","
                      "outcome=\"completed\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("adaparse_serve_docs_completed_total{tenant=\"acme\"}"
                      " 64"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "adaparse_serve_job_latency_seconds{tenant=\"acme\",quantile="),
      std::string::npos);
  EXPECT_NE(text.find("adaparse_serve_queued_jobs 3"), std::string::npos);
  EXPECT_NE(text.find("adaparse_serve_resident_documents 640"),
            std::string::npos);
}

/// Replaces the value on time-derived exposition lines (uptime, and the
/// per-tenant throughput that divides by it) so the rest of the payload can
/// be compared byte-for-byte.
std::string normalize_volatile_lines(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("adaparse_serve_tenant_throughput_docs_per_second{", 0) ==
            0 ||
        line.rfind("adaparse_serve_uptime_seconds ", 0) == 0) {
      line.erase(line.rfind(' ') + 1);
      line += "<time-derived>";
    }
    out << line << '\n';
  }
  return out.str();
}

TEST(MetricsRegistryTest, PrometheusExpositionMatchesGoldenText) {
  // Byte-exact regression gate for the migration onto obs::Registry: this
  // golden was captured from the pre-migration hand-rolled renderer. HELP
  // lines, family and series order, integer-vs-default-double formatting,
  // and label layout must all survive. Only the two time-derived values
  // are normalized away.
  const simd::TierScope scope(simd::Tier::kScalar);
  MetricsRegistry metrics;
  metrics.on_submitted("acme");
  metrics.on_submitted("acme");
  metrics.on_submitted("beta");
  metrics.on_rejected("beta");
  metrics.on_started("acme", 0.25);
  metrics.on_docs_completed("acme", 64);
  metrics.on_completed("acme", 1.5);
  metrics.on_cancelled("acme", 0.5);
  metrics.set_gauges(3, 1, 640);

  const std::string golden = R"(# HELP adaparse_serve_jobs_total Jobs by tenant and terminal-or-submitted outcome
# TYPE adaparse_serve_jobs_total counter
adaparse_serve_jobs_total{tenant="acme",outcome="submitted"} 2
adaparse_serve_jobs_total{tenant="acme",outcome="completed"} 1
adaparse_serve_jobs_total{tenant="acme",outcome="cancelled"} 1
adaparse_serve_jobs_total{tenant="acme",outcome="rejected"} 0
adaparse_serve_jobs_total{tenant="acme",outcome="failed"} 0
adaparse_serve_jobs_total{tenant="beta",outcome="submitted"} 1
adaparse_serve_jobs_total{tenant="beta",outcome="completed"} 0
adaparse_serve_jobs_total{tenant="beta",outcome="cancelled"} 0
adaparse_serve_jobs_total{tenant="beta",outcome="rejected"} 1
adaparse_serve_jobs_total{tenant="beta",outcome="failed"} 0
# HELP adaparse_serve_docs_completed_total Documents parsed to completion by tenant
# TYPE adaparse_serve_docs_completed_total counter
adaparse_serve_docs_completed_total{tenant="acme"} 64
adaparse_serve_docs_completed_total{tenant="beta"} 0
# HELP adaparse_serve_queue_wait_seconds_mean Mean seconds jobs waited from submission to first slice
# TYPE adaparse_serve_queue_wait_seconds_mean gauge
adaparse_serve_queue_wait_seconds_mean{tenant="acme"} 0.25
adaparse_serve_queue_wait_seconds_mean{tenant="beta"} 0
# HELP adaparse_serve_job_latency_seconds Job latency (submission to terminal state) quantile estimates
# TYPE adaparse_serve_job_latency_seconds gauge
adaparse_serve_job_latency_seconds{tenant="acme",quantile="0.5"} 1
adaparse_serve_job_latency_seconds{tenant="acme",quantile="0.95"} 1.45
adaparse_serve_job_latency_seconds{tenant="acme",quantile="0.99"} 1.49
adaparse_serve_job_latency_seconds{tenant="beta",quantile="0.5"} 0
adaparse_serve_job_latency_seconds{tenant="beta",quantile="0.95"} 0
adaparse_serve_job_latency_seconds{tenant="beta",quantile="0.99"} 0
# HELP adaparse_serve_tenant_throughput_docs_per_second Completed documents per second of service uptime
# TYPE adaparse_serve_tenant_throughput_docs_per_second gauge
adaparse_serve_tenant_throughput_docs_per_second{tenant="acme"} <time-derived>
adaparse_serve_tenant_throughput_docs_per_second{tenant="beta"} <time-derived>
# HELP adaparse_serve_queued_jobs Jobs admitted and waiting
# TYPE adaparse_serve_queued_jobs gauge
adaparse_serve_queued_jobs 3
# HELP adaparse_serve_running_jobs Jobs with a slice executing now
# TYPE adaparse_serve_running_jobs gauge
adaparse_serve_running_jobs 1
# HELP adaparse_serve_resident_documents Estimated documents of admitted-but-unfinished work
# TYPE adaparse_serve_resident_documents gauge
adaparse_serve_resident_documents 640
# HELP adaparse_serve_uptime_seconds Seconds since service start
# TYPE adaparse_serve_uptime_seconds gauge
adaparse_serve_uptime_seconds <time-derived>
# HELP adaparse_simd_tier Active SIMD dispatch tier of the text hot path (1 = active)
# TYPE adaparse_simd_tier gauge
adaparse_simd_tier{tier="scalar"} 1
)";
  EXPECT_EQ(normalize_volatile_lines(metrics.render_prometheus()), golden);
}

TEST(MetricsRegistryTest, ZeroTenantsStillEmitsEveryFamilyHeader) {
  // A fresh registry must expose all families (HELP + TYPE) even before any
  // tenant exists — scrapers rely on stable family metadata.
  MetricsRegistry metrics;
  const std::string text = metrics.render_prometheus();
  for (const char* family :
       {"adaparse_serve_jobs_total", "adaparse_serve_docs_completed_total",
        "adaparse_serve_queue_wait_seconds_mean",
        "adaparse_serve_job_latency_seconds",
        "adaparse_serve_tenant_throughput_docs_per_second"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "),
              std::string::npos)
        << family;
    EXPECT_EQ(text.find(std::string(family) + "{"), std::string::npos)
        << family << " should have no series yet";
  }
}

TEST(MetricsRegistryTest, EscapesTenantNamesInPrometheusLabels) {
  MetricsRegistry metrics;
  metrics.on_submitted("we\"ird\\ten\nant");
  const std::string text = metrics.render_prometheus();
  // Label values must escape quote, backslash, and newline, or the whole
  // exposition payload is unparsable (and newline would inject lines).
  EXPECT_NE(text.find("tenant=\"we\\\"ird\\\\ten\\nant\""),
            std::string::npos);
  EXPECT_EQ(text.find('\n' + std::string("ant\"")), std::string::npos);
}

// ----------------------------------------------- service: equivalence ----

TEST(ParseServiceTest, JobResultsByteIdenticalToStandaloneRun) {
  const auto docs = mixed_corpus(150, 606);
  const auto engine_config = ft_config(/*batch_size=*/32);

  ServiceConfig config;
  config.dispatchers = 1;
  config.slice_batches = 2;  // slices of 64 docs; final slice is partial
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  JobRequest request;
  request.spec.tenant = "solo";
  request.spec.engine = engine_config;
  request.source = std::make_unique<core::VectorSource>(docs);
  auto job = service.submit(std::move(request));
  job->wait();
  ASSERT_EQ(job->state(), JobState::kCompleted);

  const auto results = job->take_results();
  ASSERT_EQ(results.size(), docs.size());

  const core::AdaParseEngine engine(engine_config, nullptr,
                                    shared_improver());
  const auto reference = engine.run(docs);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].record.to_json().dump(),
              reference.records[i].to_json().dump())
        << "record " << i << " diverged from the standalone run";
    EXPECT_EQ(results[i].decision.doc_index, reference.decisions[i].doc_index);
    EXPECT_EQ(results[i].decision.chosen, reference.decisions[i].chosen);
    EXPECT_EQ(results[i].decision.trail, reference.decisions[i].trail);
  }
  const auto stats = job->stats();
  EXPECT_EQ(stats.total_docs, docs.size());
  EXPECT_EQ(stats.routed_to_nougat, reference.stats.routed_to_nougat);
  EXPECT_GT(stats.routed_to_nougat, 0U);  // the upgrade lane was live
}

TEST(ParseServiceTest, IncrementalResultsArriveInOrder) {
  const auto docs = mixed_corpus(120, 707);
  ServiceConfig config;
  config.dispatchers = 1;
  config.slice_batches = 1;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  auto job = service.submit(make_request("inc", docs, /*batch_size=*/16));
  std::vector<JobRecord> seen;
  while (!job->wait_for(2ms)) {
    auto batch = job->take_results();
    seen.insert(seen.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  auto rest = job->take_results();
  seen.insert(seen.end(), std::make_move_iterator(rest.begin()),
              std::make_move_iterator(rest.end()));

  ASSERT_EQ(job->state(), JobState::kCompleted);
  ASSERT_EQ(seen.size(), docs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].index, i);  // strict input order across slices
  }
  EXPECT_TRUE(job->take_results().empty());  // drained
}

// ------------------------------------------------ service: fair share ----

TEST(ParseServiceTest, EqualWeightsGetEqualDocumentShareUnderContention) {
  // Tenant A offers twice the work of tenant B in one big job; B splits its
  // load across three jobs. While both are backlogged they must complete
  // documents at (near-)equal rates, so when B finishes, A should be within
  // 20% of B's total.
  const auto docs_a = mixed_corpus(960, 808);
  const auto docs_b = mixed_corpus(320, 909);

  ServiceConfig config;
  config.dispatchers = 1;  // strict slice interleaving
  config.slice_batches = 1;
  config.quantum_docs = 16;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  auto job_a = service.submit(make_request("a", docs_a, /*batch_size=*/16));
  std::vector<JobHandle> jobs_b;
  for (int i = 0; i < 3; ++i) {
    JobRequest request;
    request.spec.tenant = "b";
    request.spec.engine = ft_config(16);
    auto begin = docs_b.begin() + i * 100;
    auto slice = std::make_shared<std::vector<doc::Document>>(
        begin, i == 2 ? docs_b.end() : begin + 100);
    // Keep each sub-corpus alive for the job's lifetime via the source.
    class OwningSource final : public core::DocumentSource {
     public:
      explicit OwningSource(std::shared_ptr<std::vector<doc::Document>> docs)
          : docs_(std::move(docs)) {}
      std::shared_ptr<const doc::Document> next() override {
        if (next_ >= docs_->size()) return nullptr;
        return std::shared_ptr<const doc::Document>(docs_,
                                                    &(*docs_)[next_++]);
      }
      std::size_t size_hint() const override { return docs_->size(); }

     private:
      std::shared_ptr<std::vector<doc::Document>> docs_;
      std::size_t next_ = 0;
    };
    request.source = std::make_unique<OwningSource>(std::move(slice));
    jobs_b.push_back(service.submit(std::move(request)));
  }

  for (auto& job : jobs_b) {
    job->wait();
    ASSERT_EQ(job->state(), JobState::kCompleted);
  }
  // Snapshot A's progress the moment B's backlog is gone.
  const std::size_t a_done = job_a->progress().docs_completed;
  job_a->cancel();
  job_a->wait();

  const double equal_share = static_cast<double>(docs_b.size());
  EXPECT_GT(static_cast<double>(a_done), 0.8 * equal_share)
      << "tenant a starved under equal weights";
  EXPECT_LT(static_cast<double>(a_done), 1.2 * equal_share + 32.0)
      << "tenant a overshot its fair share";
}

// ------------------------------------------------- service: admission ----

TEST(ParseServiceTest, AdmissionRejectsPastQueueDepthWatermark) {
  const auto docs = mixed_corpus(16, 111);
  ServiceConfig config;
  config.dispatchers = 1;
  config.max_queued_jobs = 2;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  // Occupy the single dispatcher with a gated job.
  auto gate_source = std::make_unique<GateSource>(docs);
  GateSource* gate = gate_source.get();
  JobRequest blocked;
  blocked.spec.tenant = "x";
  blocked.spec.engine = ft_config(16);
  blocked.source = std::move(gate_source);
  auto running = service.submit(std::move(blocked));

  // Wait until the dispatcher has actually picked it up.
  for (int i = 0; i < 500 && service.running_jobs() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(service.running_jobs(), 1U);

  auto q1 = service.submit(make_request("x", docs, 16));
  auto q2 = service.submit(make_request("x", docs, 16));
  EXPECT_EQ(q1->state(), JobState::kQueued);
  EXPECT_EQ(q2->state(), JobState::kQueued);
  EXPECT_EQ(service.queued_jobs(), 2U);

  // Watermark reached: the next submit must be rejected, not queued.
  auto rejected = service.submit(make_request("x", docs, 16));
  EXPECT_EQ(rejected->state(), JobState::kRejected);
  EXPECT_NE(rejected->error().find("queued-jobs"), std::string::npos);
  EXPECT_EQ(service.queued_jobs(), 2U);  // queue did not grow
  EXPECT_EQ(service.metrics().tenants.at(0).jobs_rejected, 1U);

  gate->open();
  service.drain();
  EXPECT_EQ(running->state(), JobState::kCompleted);
  EXPECT_EQ(q1->state(), JobState::kCompleted);
  EXPECT_EQ(q2->state(), JobState::kCompleted);
}

TEST(ParseServiceTest, AdmissionRejectsPastResidentWorkWatermark) {
  const auto docs = mixed_corpus(40, 222);
  ServiceConfig config;
  config.dispatchers = 1;
  config.max_resident_documents = 100;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  auto gate_source = std::make_unique<GateSource>(docs);
  GateSource* gate = gate_source.get();
  JobRequest blocked;
  blocked.spec.tenant = "x";
  blocked.spec.engine = ft_config(16);
  blocked.source = std::move(gate_source);
  auto running = service.submit(std::move(blocked));  // resident: 40

  auto fits = service.submit(make_request("x", docs, 16));  // resident: 80
  EXPECT_NE(fits->state(), JobState::kRejected);
  EXPECT_EQ(service.resident_documents(), 80U);

  auto rejected = service.submit(make_request("x", docs, 16));  // would be 120
  EXPECT_EQ(rejected->state(), JobState::kRejected);
  EXPECT_NE(rejected->error().find("resident-work"), std::string::npos);
  EXPECT_EQ(service.resident_documents(), 80U);

  gate->open();
  service.drain();
  EXPECT_EQ(service.resident_documents(), 0U);  // released on completion
  EXPECT_EQ(running->state(), JobState::kCompleted);
}

TEST(ParseServiceTest, LlmJobWithoutPredictorIsRejectedNotCrashed) {
  ServiceConfig config;
  config.pool_threads = 2;
  ParseService service(config, nullptr, shared_improver());
  const auto docs = mixed_corpus(8, 333);
  JobRequest request;
  request.spec.tenant = "x";
  request.spec.engine.variant = core::Variant::kLlm;  // predictor required
  request.source = std::make_unique<core::VectorSource>(docs);
  auto job = service.submit(std::move(request));
  EXPECT_EQ(job->state(), JobState::kRejected);
  EXPECT_NE(job->error().find("engine:"), std::string::npos);
}

// ---------------------------------------------- service: cancellation ----

TEST(ParseServiceTest, CancellingARunningJobKeepsOtherJobsIntact) {
  // A long generated stream for tenant "big"; a normal job for "small".
  doc::GeneratorConfig generated = doc::benchmark_config(4000, 444);
  const auto docs_small = mixed_corpus(96, 555);

  ServiceConfig config;
  config.dispatchers = 1;
  config.slice_batches = 1;
  config.quantum_docs = 16;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  JobRequest big;
  big.spec.tenant = "big";
  big.spec.engine = ft_config(16);
  big.source = std::make_unique<core::GeneratorSource>(generated);
  auto job_big = service.submit(std::move(big));
  auto job_small = service.submit(make_request("small", docs_small, 16));

  // Let the big job make some progress, then cancel it mid-run.
  for (int i = 0; i < 2000 && job_big->progress().docs_completed == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GT(job_big->progress().docs_completed, 0U);
  job_big->cancel();
  job_big->wait();
  EXPECT_EQ(job_big->state(), JobState::kCancelled);
  const auto big_progress = job_big->progress();
  EXPECT_LT(big_progress.docs_completed, 4000U);  // stopped early
  EXPECT_GT(big_progress.latency_seconds, 0.0);

  // The other tenant's job is untouched: complete and correct.
  job_small->wait();
  ASSERT_EQ(job_small->state(), JobState::kCompleted);
  const auto results = job_small->take_results();
  ASSERT_EQ(results.size(), docs_small.size());
  const core::AdaParseEngine engine(ft_config(16), nullptr,
                                    shared_improver());
  const auto reference = engine.run(docs_small);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].record.to_json().dump(),
              reference.records[i].to_json().dump());
  }
  // Cancelled partial results are retained, in order.
  const auto partial = job_big->take_results();
  EXPECT_EQ(partial.size(), big_progress.docs_completed);
  for (std::size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].index, i);
  }
}

TEST(ParseServiceTest, CancellingQueuedJobsReleasesAdmissionCapacity) {
  // Jobs cancelled while still queued must be reaped without waiting for
  // their fair-share turn: their resident-work charge is released, so the
  // watermark stops rejecting other tenants' submits.
  const auto docs = mixed_corpus(40, 999);
  doc::GeneratorConfig long_job = doc::benchmark_config(4000, 123);

  ServiceConfig config;
  config.dispatchers = 1;
  config.max_resident_documents = 4050;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  // Keep the dispatcher cycling on a long-running tenant.
  JobRequest busy;
  busy.spec.tenant = "busy";
  busy.spec.engine = ft_config(16);
  busy.source = std::make_unique<core::GeneratorSource>(long_job);
  auto job_busy = service.submit(std::move(busy));  // resident: 4000

  auto queued = service.submit(make_request("other", docs, 16));  // 4040
  ASSERT_NE(queued->state(), JobState::kRejected);
  auto rejected = service.submit(make_request("other", docs, 16));  // 4080+40
  ASSERT_EQ(rejected->state(), JobState::kRejected);

  queued->cancel();
  queued->wait();  // reaped between the busy tenant's slices
  EXPECT_EQ(queued->state(), JobState::kCancelled);

  // Capacity came back: the same submit that was just shed now admits.
  auto retry = service.submit(make_request("other", docs, 16));
  EXPECT_NE(retry->state(), JobState::kRejected);

  job_busy->cancel();
  service.drain();
}

TEST(ParseServiceTest, ShutdownCancelsQueuedJobsAndDrainsCleanly) {
  const auto docs = mixed_corpus(16, 666);
  ServiceConfig config;
  config.dispatchers = 1;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  auto gate_source = std::make_unique<GateSource>(docs);
  GateSource* gate = gate_source.get();
  JobRequest blocked;
  blocked.spec.tenant = "x";
  blocked.spec.engine = ft_config(16);
  blocked.source = std::move(gate_source);
  auto running = service.submit(std::move(blocked));
  auto queued = service.submit(make_request("x", docs, 16));

  for (int i = 0; i < 500 && service.running_jobs() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  gate->open();  // let the in-flight slice finish; shutdown joins it
  service.shutdown();

  EXPECT_TRUE(job_state_terminal(running->state()));
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_NE(queued->error().find("shutdown"), std::string::npos);

  // Submits after shutdown are shed, not queued.
  auto late = service.submit(make_request("x", docs, 16));
  EXPECT_EQ(late->state(), JobState::kRejected);
}

TEST(ParseServiceTest, DeadlineDrainReturnsEmptyWhenServiceGoesIdle) {
  const auto docs = mixed_corpus(32, 1234);
  ServiceConfig config;
  config.dispatchers = 1;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  auto job = service.submit(make_request("x", docs, 16));
  const auto unfinished = service.drain(std::chrono::seconds(30));
  EXPECT_TRUE(unfinished.empty());
  EXPECT_EQ(job->state(), JobState::kCompleted);
  EXPECT_EQ(service.queued_jobs(), 0U);
  EXPECT_EQ(service.running_jobs(), 0U);
}

TEST(ParseServiceTest, DeadlineDrainCancelsStragglersAndReturnsTheirIds) {
  // A scripted latency spike makes every document cost ~20 ms of wall
  // time, so these jobs cannot finish inside the drain deadline; the drain
  // must cancel them, settle, and report exactly the unfinished ids.
  const auto docs = mixed_corpus(128, 4321);
  ServiceConfig config;
  config.dispatchers = 1;
  config.slice_batches = 1;
  config.pool_threads = 4;
  FaultPlan::LatencySpike spike;
  spike.per_doc_delay = std::chrono::milliseconds(20);
  config.fault_plan.latency_spikes.push_back(spike);
  ParseService service(config, nullptr, shared_improver());

  auto slow = service.submit(make_request("x", docs, 16));
  auto queued = service.submit(make_request("x", docs, 16));
  ASSERT_FALSE(job_state_terminal(slow->state()));

  const auto unfinished = service.drain(std::chrono::milliseconds(100));
  ASSERT_EQ(unfinished.size(), 2U);

  // Both jobs are terminal (cancelled mid-flight, partial results kept)
  // and the service really is idle afterwards — drain settled, not bailed.
  EXPECT_EQ(slow->state(), JobState::kCancelled);
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_EQ(service.queued_jobs(), 0U);
  EXPECT_EQ(service.running_jobs(), 0U);
  EXPECT_EQ(service.resident_documents(), 0U);

  // The service stays usable after a deadline drain: a tiny job clears
  // even with the spike still active (4 docs x 20 ms).
  auto after = service.submit(make_request("x", mixed_corpus(4, 9), 4));
  after->wait();
  EXPECT_EQ(after->state(), JobState::kCompleted);
}

TEST(ParseServiceTest, DeadlineShutdownCancelsAndRefusesNewWork) {
  const auto docs = mixed_corpus(128, 5678);
  ServiceConfig config;
  config.dispatchers = 1;
  config.pool_threads = 4;
  FaultPlan::LatencySpike spike;
  spike.per_doc_delay = std::chrono::milliseconds(20);
  config.fault_plan.latency_spikes.push_back(spike);
  ParseService service(config, nullptr, shared_improver());

  auto slow = service.submit(make_request("x", docs, 16));
  const auto unfinished = service.shutdown(std::chrono::milliseconds(50));
  ASSERT_EQ(unfinished.size(), 1U);
  EXPECT_EQ(slow->state(), JobState::kCancelled);

  auto late = service.submit(make_request("x", docs, 16));
  EXPECT_EQ(late->state(), JobState::kRejected);
}

// ------------------------------------------------- shared warm cache ----

TEST(ParseServiceTest, ManyConcurrentJobsShareOneWarmModelLoad) {
  // Satellite: WarmModelCache::get_or_load under service concurrency —
  // every job routes documents to Nougat, yet the model loads exactly once
  // service-wide (the paper's persist-beyond-task-boundary mechanism).
  const auto docs = mixed_corpus(64, 777);
  ServiceConfig config;
  config.dispatchers = 2;  // concurrent slices contend for the cache
  config.slice_batches = 1;
  config.pool_threads = 8;
  ParseService service(config, nullptr, shared_improver());

  std::vector<JobHandle> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(service.submit(
        make_request("tenant" + std::to_string(i % 3), docs, 16,
                     /*alpha=*/0.3)));
  }
  std::size_t upgraded = 0;
  for (auto& job : jobs) {
    job->wait();
    ASSERT_EQ(job->state(), JobState::kCompleted);
    upgraded += job->stats().routed_to_nougat;
  }
  ASSERT_GT(upgraded, 1U);  // the expensive lane ran many times...
  const auto cache_stats = service.warm_cache().stats("nougat");
  EXPECT_EQ(cache_stats.loads, 1U);  // ...but the model loaded once
  EXPECT_GE(cache_stats.hits, upgraded - 1);
}

// ------------------------------------------------------ service metrics ----

TEST(ParseServiceTest, MetricsTrackJobsAndRenderPrometheus) {
  const auto docs = mixed_corpus(64, 888);
  ServiceConfig config;
  config.dispatchers = 1;
  config.pool_threads = 4;
  ParseService service(config, nullptr, shared_improver());

  service.submit(make_request("acme", docs, 16))->wait();
  service.submit(make_request("acme", docs, 16))->wait();
  service.drain();

  const auto snap = service.metrics();
  ASSERT_EQ(snap.tenants.size(), 1U);
  const auto& acme = snap.tenants[0];
  EXPECT_EQ(acme.jobs_submitted, 2U);
  EXPECT_EQ(acme.jobs_completed, 2U);
  EXPECT_EQ(acme.docs_completed, 2 * docs.size());
  EXPECT_GT(acme.latency_p50_seconds, 0.0);
  EXPECT_LE(acme.latency_p50_seconds, acme.latency_p99_seconds);
  EXPECT_GT(acme.throughput_docs_per_second, 0.0);
  EXPECT_GE(acme.queue_wait_mean_seconds, 0.0);

  const auto text = service.metrics_text();
  EXPECT_NE(text.find("adaparse_serve_jobs_total{tenant=\"acme\","
                      "outcome=\"completed\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("adaparse_serve_uptime_seconds"), std::string::npos);
}

}  // namespace
}  // namespace adaparse::serve
