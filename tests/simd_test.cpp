// Tests for the vectorized text hot path: runtime dispatch semantics, the
// bitstream helpers against naive per-bit references, the self-verified
// byte classifiers, and — the load-bearing property — randomized
// differential sweeps proving every SIMD tier produces bit-identical
// tokens, features, hashes, and metric scores to the scalar path, across
// all input lengths 0..300 and all 32 starting alignments, on text and on
// arbitrary binary input (embedded NULs and bytes >= 0x80 included).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/bleu.hpp"
#include "metrics/rouge.hpp"
#include "ml/feature_hash.hpp"
#include "reference/seed_impl.hpp"
#include "simd/bits.hpp"
#include "simd/classify.hpp"
#include "simd/dispatch.hpp"
#include "text/char_class.hpp"
#include "text/features.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse {
namespace {

/// Every tier this machine can actually run, scalar first.
std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::detected_tier() >= simd::Tier::kSse2) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (simd::detected_tier() >= simd::Tier::kAvx2) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

std::string random_text(util::Rng& rng, std::size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " \t\n  .,;:!?-_'\"(){}[]$\\^#=@+/";
  std::string s(n, '\0');
  for (auto& c : s) {
    c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return s;
}

std::string random_binary(util::Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.below(256));
  return s;
}

// ------------------------------------------------------------- dispatch --

TEST(SimdDispatch, NamesRoundTripAndUnknownNamesAreRejected) {
  const simd::Tier before = simd::active_tier();
  EXPECT_FALSE(simd::set_tier("avx512"));
  EXPECT_FALSE(simd::set_tier(""));
  EXPECT_EQ(simd::active_tier(), before);

  for (const simd::Tier t : available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    EXPECT_EQ(simd::active_tier(), t);
    EXPECT_STREQ(simd::active_tier_name(), simd::tier_name(t));
  }
  ASSERT_TRUE(simd::set_tier("auto"));
  EXPECT_EQ(simd::active_tier(), simd::detected_tier());
  simd::set_tier(before);
}

TEST(SimdDispatch, RequestsAboveDetectedClampDown) {
  const simd::Tier before = simd::active_tier();
  simd::set_tier(simd::Tier::kAvx2);
  EXPECT_LE(simd::active_tier(), simd::detected_tier());
  simd::set_tier(before);
}

TEST(SimdDispatch, TierScopeRestores) {
  const simd::Tier before = simd::active_tier();
  {
    simd::TierScope scope(simd::Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
  EXPECT_EQ(simd::active_tier(), before);
}

TEST(SimdDispatch, ShortInputsStayScalar) {
  EXPECT_FALSE(simd::use_simd(0));
  EXPECT_FALSE(simd::use_simd(simd::kSimdMinBytes - 1));
}

// --------------------------------------------------------- bits helpers --

TEST(SimdBits, HelpersMatchNaiveOnRandomMasks) {
  util::Rng rng(0xB175);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(200);
    const std::size_t words = simd::mask_words(n);
    std::vector<std::uint64_t> mask(words);
    for (auto& w : mask) {
      // Mix dense, sparse, and balanced masks so runs of every length occur.
      w = rng.next_u64() & rng.next_u64();
      if (rng.chance(0.3)) w |= rng.next_u64();
    }
    if (n % 64 != 0) mask[words - 1] &= (std::uint64_t{1} << (n % 64)) - 1;

    const auto bit = [&](std::size_t i) { return simd::test_bit(mask.data(), i); };
    const std::size_t a = rng.below(n + 1);
    const std::size_t b = a + rng.below(n + 1 - a);

    std::size_t pop = 0, best = 0, run = 0;
    bool all = true;
    for (std::size_t i = a; i < b; ++i) {
      if (bit(i)) {
        ++pop;
        run = run + 1;
        if (run > best) best = run;
      } else {
        run = 0;
        all = false;
      }
    }
    EXPECT_EQ(simd::popcount_range(mask.data(), a, b), pop);
    EXPECT_EQ(simd::all_set(mask.data(), a, b), all);
    EXPECT_EQ(simd::longest_one_run(mask.data(), a, b), best);

    if (a >= 1) {
      std::size_t transitions = 0;
      for (std::size_t i = a; i < b; ++i) {
        if (bit(i) != bit(i - 1)) ++transitions;
      }
      EXPECT_EQ(simd::transition_count(mask.data(), a, b), transitions);
    }

    const std::size_t from = rng.below(n + 1);
    std::size_t want_set = n, want_zero = n;
    for (std::size_t i = from; i < n; ++i) {
      if (bit(i) && want_set == n) want_set = i;
      if (!bit(i) && want_zero == n) want_zero = i;
    }
    EXPECT_EQ(simd::next_set_bit(mask.data(), from, n), want_set);
    EXPECT_EQ(simd::next_zero_bit(mask.data(), from, n), want_zero);
  }
}

TEST(SimdBits, EmptyAndFullRangeEdgeCases) {
  std::uint64_t mask[2] = {~std::uint64_t{0}, ~std::uint64_t{0}};
  EXPECT_EQ(simd::popcount_range(mask, 5, 5), 0U);
  EXPECT_TRUE(simd::all_set(mask, 5, 5));
  EXPECT_EQ(simd::longest_one_run(mask, 0, 128), 128U);
  EXPECT_EQ(simd::transition_count(mask, 1, 128), 0U);
}

// ----------------------------------------------------------- classifiers --

TEST(SimdClassify, EveryHotPathClassifierAgreesWithItsTableExhaustively) {
  const auto& t = text::charclass::tables();
  const auto& cls = text::charclass::classifiers();
  const std::pair<const simd::ByteClassifier*, const bool*> pairs[] = {
      {&cls.space, t.space},   {&cls.word, t.word},
      {&cls.alpha, t.alpha},   {&cls.upper, t.upper},
      {&cls.vowel, t.vowel},   {&cls.smiles, t.smiles},
      {&cls.ring_or_bond, t.ring_or_bond}};
  std::string all_bytes;
  for (int b = 0; b < 256; ++b) all_bytes += static_cast<char>(b);

  for (const auto& [classifier, table] : pairs) {
    for (int c = 0; c < 256; ++c) {
      EXPECT_EQ(classifier->test(static_cast<unsigned char>(c)), table[c]);
    }
    for (const simd::Tier tier : available_tiers()) {
      simd::TierScope scope(tier);
      std::uint64_t mask[4] = {};
      classifier->build_mask(all_bytes.data(), all_bytes.size(), mask);
      for (int c = 0; c < 256; ++c) {
        EXPECT_EQ(simd::test_bit(mask, static_cast<std::size_t>(c)), table[c])
            << "tier " << simd::tier_name(tier) << " byte " << c;
      }
    }
  }
}

TEST(SimdClassify, MasksMatchScalarOnRandomBinaryAtEveryTierAndAlignment) {
  const auto& cls = text::charclass::classifiers();
  util::Rng rng(0xC1A55);
  const std::string base = random_binary(rng, 512);
  for (const simd::Tier tier : available_tiers()) {
    simd::TierScope scope(tier);
    for (std::size_t align = 0; align < 32; ++align) {
      for (const std::size_t len : {0UL, 1UL, 31UL, 64UL, 65UL, 127UL, 300UL}) {
        const char* p = base.data() + align;
        std::vector<std::uint64_t> got(simd::mask_words(len) + 1, ~0ULL);
        std::vector<std::uint64_t> want(simd::mask_words(len) + 1, ~0ULL);
        cls.word.build_mask(p, len, got.data());
        for (std::size_t w = 0; w < simd::mask_words(len); ++w) {
          std::uint64_t bits = 0;
          for (std::size_t j = 0; j < 64 && w * 64 + j < len; ++j) {
            bits |= static_cast<std::uint64_t>(cls.word.test(
                        static_cast<unsigned char>(p[w * 64 + j])))
                    << j;
          }
          want[w] = bits;
        }
        want.back() = ~0ULL;  // sentinel: builder must not write past the end
        EXPECT_EQ(got, want) << "tier " << simd::tier_name(tier) << " align "
                             << align << " len " << len;
      }
    }
  }
}

TEST(SimdClassify, EqMaskMatchesNaiveAtEveryTier) {
  util::Rng rng(0xE0);
  // Low-entropy bytes so equal-neighbor runs are common.
  std::string s(300, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.below(3));
  for (const simd::Tier tier : available_tiers()) {
    simd::TierScope scope(tier);
    for (const std::size_t len : {1UL, 2UL, 63UL, 64UL, 65UL, 130UL, 300UL}) {
      std::vector<std::uint64_t> mask(simd::mask_words(len));
      simd::build_eq_mask(s.data(), len, mask.data());
      for (std::size_t i = 0; i < len; ++i) {
        const bool want = i > 0 && s[i] == s[i - 1];
        EXPECT_EQ(simd::test_bit(mask.data(), i), want)
            << "tier " << simd::tier_name(tier) << " len " << len << " i " << i;
      }
    }
  }
}

TEST(SimdClassify, ToLowerMatchesTableAtEveryTier) {
  const auto& t = text::charclass::tables();
  ASSERT_TRUE(text::charclass::classifiers().lower_is_ascii);
  std::string all_bytes;
  for (int rep = 0; rep < 2; ++rep) {
    for (int b = 0; b < 256; ++b) all_bytes += static_cast<char>(b);
  }
  for (const simd::Tier tier : available_tiers()) {
    simd::TierScope scope(tier);
    std::string out(all_bytes.size(), 'X');
    simd::to_lower_buf(all_bytes.data(), all_bytes.size(), out.data());
    for (std::size_t i = 0; i < all_bytes.size(); ++i) {
      EXPECT_EQ(out[i], t.lower[static_cast<unsigned char>(all_bytes[i])]);
    }
  }
}

TEST(SimdClassify, ScratchExhaustionFallsBackToScalarResults) {
  // Hold every scratch slot so the hot paths cannot lease masks; they must
  // fall back to the scalar loops and still produce identical output.
  util::Rng rng(0x5C8A);
  const std::string s = random_text(rng, 400);
  const auto want_features = text::compute_features(s).to_array();
  const auto want_tokens = text::tokenize(s);
  const auto want_hash = ml::hash_text(s, {});
  {
    const simd::ScratchLease l0 = simd::acquire_scratch(8);
    const simd::ScratchLease l1 = simd::acquire_scratch(8);
    const simd::ScratchLease l2 = simd::acquire_scratch(8);
    const simd::ScratchLease l3 = simd::acquire_scratch(8);
    ASSERT_TRUE(l0 && l1 && l2 && l3);
    EXPECT_FALSE(simd::acquire_scratch(8));
    EXPECT_EQ(text::compute_features(s).to_array(), want_features);
    EXPECT_EQ(text::tokenize(s), want_tokens);
    const auto hash = ml::hash_text(s, {});
    ASSERT_EQ(hash.size(), want_hash.size());
    for (std::size_t i = 0; i < hash.size(); ++i) {
      EXPECT_EQ(hash[i].index, want_hash[i].index);
      EXPECT_EQ(hash[i].value, want_hash[i].value);
    }
  }
  EXPECT_TRUE(simd::acquire_scratch(8));  // slots released by the leases
}

// ------------------------------------------------- differential sweeps --

struct TokenRecord {
  std::size_t offset;
  std::size_t length;
  bool operator==(const TokenRecord&) const = default;
};

std::vector<TokenRecord> token_records(std::string_view s) {
  std::vector<TokenRecord> out;
  text::for_each_token(s, [&](std::string_view t) {
    out.push_back({static_cast<std::size_t>(t.data() - s.data()), t.size()});
  });
  return out;
}

std::vector<TokenRecord> whitespace_records(std::string_view s) {
  std::vector<TokenRecord> out;
  text::for_each_whitespace_token(s, [&](std::string_view t) {
    out.push_back({static_cast<std::size_t>(t.data() - s.data()), t.size()});
  });
  return out;
}

/// The mandated sweep: every length 0..300 at every one of the 32 starting
/// alignments, text and binary payloads, each SIMD tier against scalar.
/// Tokens, whitespace chunks, token counts, features, and hashes must be
/// bit-identical.
TEST(SimdDifferential, AllLengthsAndAlignmentsMatchScalar) {
  util::Rng rng(0xD1FF);
  const std::string text_base = random_text(rng, 300 + 64);
  const std::string binary_base = random_binary(rng, 300 + 64);
  ml::HashOptions hash_options;
  hash_options.dim = 1 << 10;

  for (const std::string* base : {&text_base, &binary_base}) {
    for (std::size_t len = 0; len <= 300; ++len) {
      // Rotate through all 32 alignments as the length advances; every
      // alignment is also exercised at len 269..300 ( > kSimdMinBytes).
      const std::size_t align = (len * 7 + 13) % 32;
      const std::string_view s(base->data() + align, len);

      std::vector<TokenRecord> want_tokens, want_chunks;
      std::size_t want_count = 0;
      std::array<double, text::TextFeatures::kDim> want_features{};
      ml::SparseVec want_hash;
      {
        simd::TierScope scope(simd::Tier::kScalar);
        want_tokens = token_records(s);
        want_chunks = whitespace_records(s);
        want_count = text::count_tokens(s);
        want_features = text::compute_features(s).to_array();
        want_hash = ml::hash_text(s, hash_options);
      }
      for (const simd::Tier tier : available_tiers()) {
        if (tier == simd::Tier::kScalar) continue;
        simd::TierScope scope(tier);
        EXPECT_EQ(token_records(s), want_tokens)
            << simd::tier_name(tier) << " len " << len << " align " << align;
        EXPECT_EQ(whitespace_records(s), want_chunks)
            << simd::tier_name(tier) << " len " << len << " align " << align;
        EXPECT_EQ(text::count_tokens(s), want_count)
            << simd::tier_name(tier) << " len " << len << " align " << align;
        EXPECT_EQ(text::compute_features(s).to_array(), want_features)
            << simd::tier_name(tier) << " len " << len << " align " << align;
        const ml::SparseVec hash = ml::hash_text(s, hash_options);
        ASSERT_EQ(hash.size(), want_hash.size())
            << simd::tier_name(tier) << " len " << len << " align " << align;
        for (std::size_t i = 0; i < hash.size(); ++i) {
          EXPECT_EQ(hash[i].index, want_hash[i].index);
          EXPECT_EQ(hash[i].value, want_hash[i].value);
        }
      }
    }
  }
}

/// Every alignment at a fixed SIMD-sized length, so all 32 offsets are
/// exercised with every tier's full-word and tail code paths.
TEST(SimdDifferential, EveryAlignmentAtSimdLengths) {
  util::Rng rng(0xA116);
  const std::string base = random_binary(rng, 400);
  for (const std::size_t len : {32UL, 100UL, 192UL, 300UL}) {
    for (std::size_t align = 0; align < 32; ++align) {
      const std::string_view s(base.data() + align, len);
      std::vector<TokenRecord> want_tokens;
      std::array<double, text::TextFeatures::kDim> want_features{};
      {
        simd::TierScope scope(simd::Tier::kScalar);
        want_tokens = token_records(s);
        want_features = text::compute_features(s).to_array();
      }
      for (const simd::Tier tier : available_tiers()) {
        if (tier == simd::Tier::kScalar) continue;
        simd::TierScope scope(tier);
        EXPECT_EQ(token_records(s), want_tokens)
            << simd::tier_name(tier) << " len " << len << " align " << align;
        EXPECT_EQ(text::compute_features(s).to_array(), want_features)
            << simd::tier_name(tier) << " len " << len << " align " << align;
      }
    }
  }
}

/// Binary regression corpus: embedded NULs and bytes >= 0x80 in positions
/// chosen to land in heads, tails, and full vector blocks. Every tier must
/// match the frozen seed implementations exactly.
TEST(SimdDifferential, BinaryInputMatchesSeedReferenceAtEveryTier) {
  std::vector<std::string> corpus;
  corpus.push_back(std::string("\0\0\0 word \0 after-nul", 21));
  corpus.push_back("hi\x80\xFF\xC3\xA9 caf\xC3\xA9 " + std::string(40, '\xEE'));
  {
    std::string s;
    for (int b = 255; b >= 0; --b) {
      s += static_cast<char>(b);
      if (b % 7 == 0) s += ' ';
    }
    corpus.push_back(s);
  }
  {
    std::string s(130, 'A');
    s[0] = '\0';
    s[64] = '\0';
    s[129] = '\xFF';
    corpus.push_back(s + " tail\x80tail");
  }
  util::Rng rng(0xB1A2);
  corpus.push_back(random_binary(rng, 4096));

  for (const auto& s : corpus) {
    const auto seed_features = reference::compute_features_seed(s).to_array();
    const auto seed_hash = reference::hash_text_seed(s, {});
    for (const simd::Tier tier : available_tiers()) {
      simd::TierScope scope(tier);
      EXPECT_EQ(text::compute_features(s).to_array(), seed_features)
          << "tier " << simd::tier_name(tier);
      const auto hash = ml::hash_text(s, {});
      ASSERT_EQ(hash.size(), seed_hash.size()) << simd::tier_name(tier);
      for (std::size_t i = 0; i < hash.size(); ++i) {
        EXPECT_EQ(hash[i].index, seed_hash[i].index);
        EXPECT_EQ(hash[i].value, seed_hash[i].value);
      }
    }
  }
}

TEST(SimdDifferential, BleuAndRougeIdenticalAcrossTiers) {
  util::Rng rng(0xB1EU);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 4; ++i) {
    pairs.emplace_back(random_text(rng, 200 + 40 * static_cast<std::size_t>(i)),
                       random_text(rng, 220));
  }
  pairs.emplace_back("the cat sat on the mat", "the cat sat on a mat");
  for (const auto& [cand, ref] : pairs) {
    double want_bleu = 0.0, want_rouge = 0.0;
    {
      simd::TierScope scope(simd::Tier::kScalar);
      want_bleu = metrics::bleu(cand, ref);
      want_rouge = metrics::rouge(cand, ref);
    }
    for (const simd::Tier tier : available_tiers()) {
      simd::TierScope scope(tier);
      EXPECT_EQ(metrics::bleu(cand, ref), want_bleu);
      EXPECT_EQ(metrics::rouge(cand, ref), want_rouge);
    }
  }
}

}  // namespace
}  // namespace adaparse
