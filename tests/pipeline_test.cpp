// Tests for the streaming pipeline engine: equivalence with the barrier
// reference implementation (byte-identical records/decisions), streaming
// sources (vector / generator / shard), in-order incremental sinks, and
// the memory-boundedness the bounded queues buy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <vector>

#include "core/doc_source.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "doc/generator.hpp"
#include "io/doc_codec.hpp"
#include "io/jsonl.hpp"

namespace adaparse::core {
namespace {

/// Mixed corpus with some corrupted (unreadable) documents, so the failure
/// lane flows through the pipeline too.
std::vector<doc::Document> mixed_corpus(std::size_t n, std::uint64_t seed) {
  auto config = doc::benchmark_config(n, seed);
  config.corrupted_fraction = 0.05;
  return doc::CorpusGenerator(config).generate();
}

void expect_identical(const RunOutput& streaming, const RunOutput& barrier) {
  ASSERT_EQ(streaming.records.size(), barrier.records.size());
  ASSERT_EQ(streaming.decisions.size(), barrier.decisions.size());
  for (std::size_t i = 0; i < barrier.records.size(); ++i) {
    // Byte-identical serialized records.
    EXPECT_EQ(streaming.records[i].to_json().dump(),
              barrier.records[i].to_json().dump())
        << "record " << i << " diverged";
    const auto& sd = streaming.decisions[i];
    const auto& bd = barrier.decisions[i];
    EXPECT_EQ(sd.doc_index, bd.doc_index);
    EXPECT_EQ(sd.chosen, bd.chosen);
    EXPECT_EQ(sd.cls1_valid, bd.cls1_valid);
    EXPECT_EQ(sd.predicted_gain, bd.predicted_gain);
    EXPECT_EQ(sd.predicted_accuracy, bd.predicted_accuracy);
    EXPECT_EQ(sd.trail, bd.trail);
  }
  EXPECT_EQ(streaming.stats.total_docs, barrier.stats.total_docs);
  EXPECT_EQ(streaming.stats.cls1_invalid, barrier.stats.cls1_invalid);
  EXPECT_EQ(streaming.stats.routed_to_nougat, barrier.stats.routed_to_nougat);
  EXPECT_EQ(streaming.stats.accepted_extraction,
            barrier.stats.accepted_extraction);
  EXPECT_EQ(streaming.stats.failed_docs, barrier.stats.failed_docs);
  EXPECT_NEAR(streaming.stats.extraction_cpu_seconds,
              barrier.stats.extraction_cpu_seconds, 1e-9);
  EXPECT_NEAR(streaming.stats.nougat_gpu_seconds,
              barrier.stats.nougat_gpu_seconds, 1e-9);
}

/// Trains a small bundle once for the whole suite (CLS II + CLS III).
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto train_docs =
        doc::CorpusGenerator(doc::benchmark_config(160, 404)).generate();
    TrainAdaParseOptions options;
    options.engine.threads = 4;
    options.engine.alpha = 0.10;
    options.engine.batch_size = 32;
    options.regression.epochs = 6;
    options.apply_dpo = false;
    bundle_ = new TrainedAdaParse(
        train_adaparse(train_docs, nullptr, nullptr, options));
    docs_ = new std::vector<doc::Document>(mixed_corpus(150, 505));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    delete docs_;
    bundle_ = nullptr;
    docs_ = nullptr;
  }
  static TrainedAdaParse* bundle_;
  static std::vector<doc::Document>* docs_;
};

TrainedAdaParse* PipelineFixture::bundle_ = nullptr;
std::vector<doc::Document>* PipelineFixture::docs_ = nullptr;

// ----------------------------------------------------------- equivalence ----

TEST_F(PipelineFixture, StreamingMatchesBarrierLlmVariant) {
  const auto& engine = *bundle_->llm;
  const auto barrier = engine.run_barrier(*docs_);
  const auto streaming = Pipeline(engine).run_collect(*docs_);
  EXPECT_TRUE(streaming.stats.pipeline.streaming);
  EXPECT_FALSE(barrier.stats.pipeline.streaming);
  EXPECT_GT(barrier.stats.routed_to_nougat, 0U);  // the GPU lane is live
  expect_identical(streaming, barrier);
}

TEST_F(PipelineFixture, StreamingMatchesBarrierFtVariant) {
  const auto& engine = *bundle_->ft;
  const auto barrier = engine.run_barrier(*docs_);
  const auto streaming = Pipeline(engine).run_collect(*docs_);
  expect_identical(streaming, barrier);
}

TEST_F(PipelineFixture, RunDelegatesToStreamingPipeline) {
  const auto output = bundle_->llm->run(*docs_);
  EXPECT_TRUE(output.stats.pipeline.streaming);
  expect_identical(output, bundle_->llm->run_barrier(*docs_));
}

TEST_F(PipelineFixture, TinyQueuesStillMatch) {
  // Capacity 1 everywhere: maximal backpressure must change nothing but
  // timing.
  PipelineConfig config;
  config.queue_capacity = 1;
  config.extract_workers = 3;
  const auto streaming =
      Pipeline(*bundle_->llm, config).run_collect(*docs_);
  expect_identical(streaming, bundle_->llm->run_barrier(*docs_));
}

// ---------------------------------------------------------------- sources ----

TEST_F(PipelineFixture, GeneratorSourceMatchesInMemoryCorpus) {
  auto config = doc::benchmark_config(90, 717);
  config.corrupted_fraction = 0.04;
  const auto materialized = doc::CorpusGenerator(config).generate();

  GeneratorSource source(config);
  EXPECT_EQ(source.size_hint(), materialized.size());
  std::vector<io::ParseRecord> streamed;
  Pipeline(*bundle_->llm)
      .run(source, [&](std::size_t index, const io::ParseRecord& record,
                       const RouteDecision&) {
        EXPECT_EQ(index, streamed.size());
        streamed.push_back(record);
      });

  const auto reference = bundle_->llm->run_barrier(materialized);
  ASSERT_EQ(streamed.size(), reference.records.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].to_json().dump(),
              reference.records[i].to_json().dump());
  }
}

TEST_F(PipelineFixture, ShardSourceMatchesInMemoryCorpus) {
  const auto subset =
      std::vector<doc::Document>(docs_->begin(), docs_->begin() + 60);
  ShardSource source(io::pack_corpus_shard(subset));
  EXPECT_EQ(source.size_hint(), subset.size());

  std::vector<io::ParseRecord> streamed;
  Pipeline(*bundle_->llm)
      .run(source, [&](std::size_t, const io::ParseRecord& record,
                       const RouteDecision&) { streamed.push_back(record); });

  const auto reference = bundle_->llm->run_barrier(subset);
  ASSERT_EQ(streamed.size(), reference.records.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].to_json().dump(),
              reference.records[i].to_json().dump());
  }
}

// ------------------------------------------------------------ sink order ----

TEST_F(PipelineFixture, SinkSeesStrictInputOrder) {
  std::vector<std::size_t> order;
  VectorSource source(*docs_);
  Pipeline(*bundle_->llm)
      .run(source, [&](std::size_t index, const io::ParseRecord&,
                       const RouteDecision&) { order.push_back(index); });
  ASSERT_EQ(order.size(), docs_->size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST_F(PipelineFixture, JsonlSinkStreamsEveryRecord) {
  std::ostringstream os;
  VectorSource source(*docs_);
  const auto stats = Pipeline(*bundle_->llm).run_to_jsonl(source, os);
  EXPECT_EQ(stats.total_docs, docs_->size());

  std::istringstream is(os.str());
  const auto records = io::read_jsonl(is);
  const auto reference = bundle_->llm->run_barrier(*docs_);
  ASSERT_EQ(records.size(), reference.records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].to_json().dump(),
              reference.records[i].to_json().dump());
  }
}

// ------------------------------------------------------------- hooks ----

TEST(PipelineHooks, OnProgressReportsEveryEmittedRecordInOrder) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  const AdaParseEngine engine(config, nullptr,
                              std::make_shared<Cls2Improver>());
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(40, 343)).generate();

  std::vector<std::size_t> progress;
  PipelineConfig pipeline_config;
  pipeline_config.on_progress = [&progress](std::size_t emitted) {
    progress.push_back(emitted);
  };
  VectorSource source(docs);
  std::size_t sunk = 0;
  Pipeline(engine, pipeline_config)
      .run(source, [&](std::size_t, const io::ParseRecord&,
                       const RouteDecision&) { ++sunk; });

  // Called once per record, on the writer thread, with the running total.
  ASSERT_EQ(progress.size(), docs.size());
  ASSERT_EQ(sunk, docs.size());
  for (std::size_t i = 0; i < progress.size(); ++i) {
    EXPECT_EQ(progress[i], i + 1);
  }
}

TEST(PipelineHooks, CancelFlagStopsAdmissionAndDrainsInFlight) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  const AdaParseEngine engine(config, nullptr,
                              std::make_shared<Cls2Improver>());
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(400, 454)).generate();

  std::atomic<bool> cancel{false};
  PipelineConfig pipeline_config;
  pipeline_config.cancel = &cancel;
  pipeline_config.queue_capacity = 4;
  VectorSource source(docs);
  std::size_t emitted = 0;
  const auto stats =
      Pipeline(engine, pipeline_config)
          .run(source, [&](std::size_t index, const io::ParseRecord&,
                           const RouteDecision&) {
            EXPECT_EQ(index, emitted);  // drained records stay in order
            ++emitted;
            if (emitted == 20) cancel.store(true);
          });

  EXPECT_TRUE(stats.pipeline.cancelled);
  EXPECT_GE(emitted, 20U);          // everything admitted still drained
  EXPECT_LT(emitted, docs.size());  // but admission stopped early
  EXPECT_EQ(stats.total_docs, emitted);
}

// --------------------------------------------------------- boundedness ----

TEST(PipelineMemory, PeakResidentExtractionsBoundedByWindowNotCorpus) {
  // FT variant with an untrained improver: no training cost, deterministic.
  EngineConfig engine_config;
  engine_config.variant = Variant::kFastText;
  engine_config.batch_size = 32;
  engine_config.threads = 4;
  const AdaParseEngine engine(engine_config, nullptr,
                              std::make_shared<Cls2Improver>());

  auto corpus_config = doc::benchmark_config(400, 919);
  const auto docs = doc::CorpusGenerator(corpus_config).generate();

  PipelineConfig config;
  config.queue_capacity = 4;
  config.extract_workers = 4;
  config.upgrade_workers = 2;
  const auto output = Pipeline(engine, config).run_collect(docs);

  const auto& pipeline = output.stats.pipeline;
  EXPECT_EQ(output.stats.total_docs, docs.size());
  // The admission-credit window is the hard bound on resident extractions;
  // it is sized from batch size + queue capacities, far below the corpus.
  EXPECT_GT(pipeline.peak_resident_extractions, 0U);
  EXPECT_GT(pipeline.resident_window, 0U);
  EXPECT_LE(pipeline.peak_resident_extractions, pipeline.resident_window);
  EXPECT_LT(pipeline.resident_window, docs.size() / 2);
  EXPECT_LT(pipeline.peak_resident_extractions, docs.size() / 2);
  // Queues respected their bound.
  EXPECT_LE(pipeline.prefetch.peak_queue_depth, config.queue_capacity);
  EXPECT_LE(pipeline.extract.peak_queue_depth, config.queue_capacity);
  EXPECT_LE(pipeline.route.peak_queue_depth, config.queue_capacity);
  EXPECT_LE(pipeline.upgrade.peak_queue_depth, config.queue_capacity);
  // Every stage processed every document.
  EXPECT_EQ(pipeline.prefetch.items, docs.size());
  EXPECT_EQ(pipeline.extract.items, docs.size());
  EXPECT_EQ(pipeline.route.items, docs.size());
  EXPECT_EQ(pipeline.upgrade.items, docs.size());
  EXPECT_EQ(pipeline.write.items, docs.size());
}

// --------------------------------------------------------------- edges ----

TEST(PipelineEdge, EmptyCorpusCompletes) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  const AdaParseEngine engine(config, nullptr,
                              std::make_shared<Cls2Improver>());
  const auto output = Pipeline(engine).run_collect({});
  EXPECT_TRUE(output.records.empty());
  EXPECT_TRUE(output.decisions.empty());
  EXPECT_EQ(output.stats.total_docs, 0U);
  EXPECT_TRUE(output.stats.pipeline.streaming);
}

TEST(PipelineEdge, BatchLargerThanCorpus) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  config.batch_size = 256;  // corpus far smaller than one batch
  const AdaParseEngine engine(config, nullptr,
                              std::make_shared<Cls2Improver>());
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(7, 121)).generate();
  const auto streaming = Pipeline(engine).run_collect(docs);
  ASSERT_EQ(streaming.records.size(), docs.size());
  const auto barrier = engine.run_barrier(docs);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(streaming.records[i].to_json().dump(),
              barrier.records[i].to_json().dump());
  }
}

TEST(PipelineEdge, SinkExceptionPropagatesAndShutsDownCleanly) {
  EngineConfig config;
  config.variant = Variant::kFastText;
  const AdaParseEngine engine(config, nullptr,
                              std::make_shared<Cls2Improver>());
  const auto docs =
      doc::CorpusGenerator(doc::benchmark_config(50, 232)).generate();
  VectorSource source(docs);
  Pipeline pipeline(engine);
  EXPECT_THROW(
      pipeline.run(source,
                   [](std::size_t index, const io::ParseRecord&,
                      const RouteDecision&) {
                     if (index == 3) throw std::runtime_error("sink failed");
                   }),
      std::runtime_error);
  // A fresh run on the same pipeline object still works (no poisoned state).
  VectorSource retry(docs);
  std::size_t count = 0;
  pipeline.run(retry, [&](std::size_t, const io::ParseRecord&,
                          const RouteDecision&) { ++count; });
  EXPECT_EQ(count, docs.size());
}

}  // namespace
}  // namespace adaparse::core
