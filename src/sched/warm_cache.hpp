// Warm-start model cache (paper §5.2 / §6.1).
//
// Parsl dispatches tasks as pure functions, so ML model weights would be
// reloaded per task ("loading the Swin ViT can take up to 15 seconds on an
// A100"). The paper modifies Parsl to persist models on each GPU beyond the
// task boundary. WarmModelCache reproduces that mechanism: get_or_load()
// loads a model at most once per worker slot and reuses it afterwards,
// while counting loads so the ablation bench can price cold starts.
//
// Real model loads also fail transiently (checkpoint fetch hiccups, GPU
// allocator pressure), so get_or_load() retries with capped exponential
// backoff plus deterministic jitter. A serve::FaultPlan scripts such
// failures through the load-failure hook; past the retry budget the
// loader's exception propagates, so the job whose slice needed the model
// fails cleanly instead of hanging.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/rng.hpp"

namespace adaparse::sched {

/// Statistics for one cached model key.
struct WarmCacheStats {
  std::size_t loads = 0;  ///< load attempts (the loader actually ran)
  std::size_t hits = 0;   ///< times a cached instance was reused
  std::size_t failures = 0;  ///< load attempts that failed
  std::size_t retries = 0;   ///< failed attempts that were retried
  double load_seconds_paid = 0.0;  ///< simulated load time accumulated
};

/// Retry discipline for transient load failures: up to `max_attempts`
/// loads per get_or_load() call, sleeping min(base * 2^(attempt-1), max)
/// plus up to 50% deterministic jitter between attempts.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{250};
  std::uint64_t jitter_seed = 0x5EEDBACC;
};

/// Keyed cache of opaque model handles with once-per-key loading.
class WarmModelCache {
 public:
  using Handle = std::shared_ptr<void>;
  using Loader = std::function<Handle()>;
  /// Fault-injection hook consulted before each load attempt. `attempt` is
  /// the per-key cumulative attempt ordinal (1-based, across the cache
  /// lifetime); returning true makes that attempt fail as if the loader
  /// threw. Scripted by serve::FaultPlan::load_fail_attempts.
  using LoadFailureHook =
      std::function<bool(const std::string& key, std::size_t attempt)>;

  /// When disabled, every call pays the loader (cold-start ablation mode).
  explicit WarmModelCache(bool enabled = true)
      : enabled_(enabled), jitter_(RetryPolicy{}.jitter_seed) {}

  /// Returns the cached handle for `key`, loading it on first use.
  /// `load_seconds` is the simulated load cost accounted to stats.
  /// Retries transient failures per the RetryPolicy; once the per-call
  /// attempt budget is spent the failure propagates to the caller.
  Handle get_or_load(const std::string& key, const Loader& loader,
                     double load_seconds);

  void set_retry_policy(const RetryPolicy& policy);
  void set_load_failure_hook(LoadFailureHook hook);

  WarmCacheStats stats(const std::string& key) const;
  /// Sum of simulated seconds spent loading across all keys.
  double total_load_seconds() const;
  bool enabled() const { return enabled_; }
  void clear();

 private:
  bool enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, Handle> cache_;
  std::map<std::string, WarmCacheStats> stats_;
  RetryPolicy retry_;
  LoadFailureHook failure_hook_;
  util::Rng jitter_;
};

}  // namespace adaparse::sched
