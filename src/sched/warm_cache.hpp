// Warm-start model cache (paper §5.2 / §6.1).
//
// Parsl dispatches tasks as pure functions, so ML model weights would be
// reloaded per task ("loading the Swin ViT can take up to 15 seconds on an
// A100"). The paper modifies Parsl to persist models on each GPU beyond the
// task boundary. WarmModelCache reproduces that mechanism: get_or_load()
// loads a model at most once per worker slot and reuses it afterwards,
// while counting loads so the ablation bench can price cold starts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace adaparse::sched {

/// Statistics for one cached model key.
struct WarmCacheStats {
  std::size_t loads = 0;  ///< times the loader actually ran
  std::size_t hits = 0;   ///< times a cached instance was reused
  double load_seconds_paid = 0.0;  ///< simulated load time accumulated
};

/// Keyed cache of opaque model handles with once-per-key loading.
class WarmModelCache {
 public:
  using Handle = std::shared_ptr<void>;
  using Loader = std::function<Handle()>;

  /// When disabled, every call pays the loader (cold-start ablation mode).
  explicit WarmModelCache(bool enabled = true) : enabled_(enabled) {}

  /// Returns the cached handle for `key`, loading it on first use.
  /// `load_seconds` is the simulated load cost accounted to stats.
  Handle get_or_load(const std::string& key, const Loader& loader,
                     double load_seconds);

  WarmCacheStats stats(const std::string& key) const;
  /// Sum of simulated seconds spent loading across all keys.
  double total_load_seconds() const;
  bool enabled() const { return enabled_; }
  void clear();

 private:
  bool enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, Handle> cache_;
  std::map<std::string, WarmCacheStats> stats_;
};

}  // namespace adaparse::sched
