// Bounded multi-producer multi-consumer queue with shutdown semantics.
//
// Connects the pipeline stages of the execution engine (prefetch ->
// extract/classify -> GPU parse -> write). Bounding the queue applies
// back-pressure so the prefetcher cannot run arbitrarily far ahead of the
// parsers — the same reason the paper stages batches into node-local RAM
// rather than unboundedly.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace adaparse::sched {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      peak_ = std::max(peak_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Non-blocking pop; returns nullopt when the queue is currently empty
  /// (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Blocks until an item arrives, the timeout expires, or the queue is
  /// closed and drained. Returns nullopt on timeout or close-and-drained;
  /// callers that need to tell the two apart check closed(). Lets a
  /// dispatch loop interleave popping with periodic admission/shutdown
  /// checks instead of parking forever in pop().
  std::optional<T> pop_for(std::chrono::steady_clock::duration timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Closes the queue: pending pops drain remaining items, new pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of the queue depth (pipeline observability).
  std::size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  /// Pops the front item and releases `lock` before notifying.
  T pop_locked(std::unique_lock<std::mutex>& lock) {
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace adaparse::sched
