#include "sched/thread_pool.hpp"

#include <algorithm>

namespace adaparse::sched {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++completed_;
      if (tasks_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

}  // namespace adaparse::sched
