// Accumulates items into fixed-size batches.
//
// AdaParse applies its alpha-budget per batch of k documents (paper App. C:
// "for a batch of size k at most floor(alpha*k) documents will be parsed by
// Nougat", k=256), and the LLM selector runs inference per batch. Batcher
// is the piece that forms those batches from the document stream.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace adaparse::sched {

template <typename T>
class Batcher {
 public:
  using FlushFn = std::function<void(std::vector<T>&&)>;

  Batcher(std::size_t batch_size, FlushFn flush)
      : batch_size_(batch_size == 0 ? 1 : batch_size),
        flush_(std::move(flush)) {
    pending_.reserve(batch_size_);
  }

  /// Adds one item; triggers a flush when the batch fills.
  void add(T item) {
    pending_.push_back(std::move(item));
    if (pending_.size() >= batch_size_) flush_now();
  }

  /// Flushes a partial batch (end of stream).
  void flush_now() {
    if (pending_.empty()) return;
    std::vector<T> batch;
    batch.reserve(batch_size_);
    batch.swap(pending_);
    flush_(std::move(batch));
    ++batches_flushed_;
  }

  std::size_t pending() const { return pending_.size(); }
  std::size_t batches_flushed() const { return batches_flushed_; }
  std::size_t batch_size() const { return batch_size_; }

 private:
  std::size_t batch_size_;
  FlushFn flush_;
  std::vector<T> pending_;
  std::size_t batches_flushed_ = 0;
};

}  // namespace adaparse::sched
