// Fixed-size thread pool — the worker substrate of the execution engine.
//
// Plays the role Parsl's worker processes play in the paper's deployment:
// tasks are pure functions dispatched to idle workers; the pool never
// re-enters user code on the submitting thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace adaparse::sched {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1 enforced).
  explicit ThreadPool(std::size_t num_threads);
  /// Drains remaining tasks, then joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result. Throws
  /// std::runtime_error if the pool is already shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    if (auto future = try_submit(std::forward<F>(f))) {
      return std::move(*future);
    }
    throw std::runtime_error("ThreadPool: submit after shutdown");
  }

  /// Non-throwing submit: returns nullopt instead of throwing when the pool
  /// is shutting down. The race matters for services: a dispatcher may race
  /// an in-flight enqueue against shutdown(), and a rejected task must be a
  /// normal outcome, not a crash. A task accepted here is guaranteed to run
  /// (shutdown drains the queue before joining).
  template <typename F>
  auto try_submit(F&& f)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return std::nullopt;
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Stops accepting new tasks, drains the queued ones, and joins the
  /// workers. Idempotent; the destructor calls it. Safe to race against
  /// try_submit from other threads (they observe the rejection instead of
  /// throwing).
  void shutdown();

  /// Blocks until every queued task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }
  /// Number of tasks executed so far.
  std::size_t completed() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< wakes workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
  std::size_t active_ = 0;
  std::size_t completed_ = 0;
  bool stopping_ = false;
};

}  // namespace adaparse::sched
