#include "sched/warm_cache.hpp"

namespace adaparse::sched {

WarmModelCache::Handle WarmModelCache::get_or_load(const std::string& key,
                                                   const Loader& loader,
                                                   double load_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (enabled_) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_[key].hits;
      return it->second;
    }
  }
  // Pay the load. (Loader runs under the lock: model loads are rare and
  // serializing them mirrors real GPU memory allocation behaviour.)
  auto& s = stats_[key];
  ++s.loads;
  s.load_seconds_paid += load_seconds;
  Handle handle = loader();
  if (enabled_) cache_[key] = handle;
  return handle;
}

WarmCacheStats WarmModelCache::stats(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stats_.find(key);
  return it != stats_.end() ? it->second : WarmCacheStats{};
}

double WarmModelCache::total_load_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [key, s] : stats_) total += s.load_seconds_paid;
  return total;
}

void WarmModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace adaparse::sched
