#include "sched/warm_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace adaparse::sched {

WarmModelCache::Handle WarmModelCache::get_or_load(const std::string& key,
                                                   const Loader& loader,
                                                   double load_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (std::size_t call_attempt = 1;; ++call_attempt) {
    if (enabled_) {
      // Re-checked on every iteration: while this thread slept off a
      // backoff, another may have loaded the key successfully.
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_[key].hits;
        return it->second;
      }
    }
    // Pay the load. (Loader runs under the lock: model loads are rare and
    // serializing them mirrors real GPU memory allocation behaviour.)
    auto& s = stats_[key];
    ++s.loads;
    s.load_seconds_paid += load_seconds;
    const std::size_t attempt_ordinal = s.loads;  // per-key, lifetime-wide
    try {
      if (failure_hook_ && failure_hook_(key, attempt_ordinal)) {
        throw std::runtime_error("injected load failure for model '" + key +
                                 "' (attempt " +
                                 std::to_string(attempt_ordinal) + ")");
      }
      Handle handle = loader();
      if (enabled_) cache_[key] = handle;
      return handle;
    } catch (...) {
      ++s.failures;
      if (call_attempt >= std::max<std::size_t>(1, retry_.max_attempts)) {
        throw;  // budget spent: surface as a failed job, never a hang
      }
      ++s.retries;
      // Capped exponential backoff with deterministic jitter (up to +50%).
      const auto shift = std::min<std::size_t>(call_attempt - 1, 20);
      std::chrono::milliseconds backoff{retry_.base_backoff.count()
                                        << shift};
      backoff = std::min(backoff, retry_.max_backoff);
      const auto jittered = backoff + std::chrono::milliseconds(jitter_.below(
                                          static_cast<std::uint64_t>(
                                              backoff.count() / 2 + 1)));
      lock.unlock();  // never sleep while holding the cache
      std::this_thread::sleep_for(jittered);
      lock.lock();
    }
  }
}

void WarmModelCache::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  retry_ = policy;
  jitter_ = util::Rng(policy.jitter_seed);
}

void WarmModelCache::set_load_failure_hook(LoadFailureHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  failure_hook_ = std::move(hook);
}

WarmCacheStats WarmModelCache::stats(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stats_.find(key);
  return it != stats_.end() ? it->second : WarmCacheStats{};
}

double WarmModelCache::total_load_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [key, s] : stats_) total += s.load_seconds_paid;
  return total;
}

void WarmModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace adaparse::sched
