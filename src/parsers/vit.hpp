// Vision-Transformer parsers (paper §3.1.3): end-to-end page-image decoding.
//
// SimNougat models Nougat (Blecher et al., 2023): a Swin-based ViT trained
// on scientific documents — it decodes LaTeX correctly, tolerates the scan
// augmentations it was trained with, but exhibits the paper's "most severe
// failure mode": dropping entire pages (repetition collapse), and is highly
// compute-intensive (quadratic in image patches). SimMarker models Marker:
// explicit layout detection followed by per-element recognition (texify) —
// the best page coverage of the cohort, but the slowest throughput and the
// worst parallel scaling (centralized coordination, Figure 5).
#pragma once

#include "parsers/parser.hpp"

namespace adaparse::parsers {

/// Nougat-style ViT: fixed 896x672 input, page batch size Bp.
class SimNougat final : public Parser {
 public:
  /// Page batch size (paper §5.2 finds Bp=10 maximizes throughput within
  /// A100 memory).
  static constexpr int kPageBatch = 10;

  ParserKind kind() const override { return ParserKind::kNougat; }
  Resource resource() const override { return Resource::kGpu; }
  /// Swin ViT weights take ~15 s to load on an A100 (paper §5.2) — the
  /// motivation for the warm-start mechanism in the runtime.
  double model_load_seconds() const override { return 15.0; }
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

/// Marker-style pipeline: layout detection + element-wise recognition.
class SimMarker final : public Parser {
 public:
  ParserKind kind() const override { return ParserKind::kMarker; }
  Resource resource() const override { return Resource::kGpu; }
  double model_load_seconds() const override { return 22.0; }
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

}  // namespace adaparse::parsers
