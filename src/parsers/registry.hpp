// Factory for the simulated parser cohort.
#pragma once

#include <array>
#include <vector>

#include "parsers/parser.hpp"

namespace adaparse::parsers {

/// Creates a parser of the given kind.
ParserPtr make_parser(ParserKind kind);

/// All six constituent parsers in ParserKind order.
std::vector<ParserPtr> all_parsers();

/// All ParserKind values in order.
constexpr std::array<ParserKind, kNumParsers> all_kinds() {
  return {ParserKind::kPyMuPdf, ParserKind::kPypdf,  ParserKind::kTesseract,
          ParserKind::kGrobid,  ParserKind::kMarker, ParserKind::kNougat};
}

}  // namespace adaparse::parsers
