#include "parsers/ocr.hpp"

#include <algorithm>
#include <cmath>

#include "text/corrupt.hpp"
#include "util/rng.hpp"

namespace adaparse::parsers {
namespace {

util::Rng noise_stream(const doc::Document& document, ParserKind kind) {
  return util::Rng(
      util::mix64(document.seed, 0xA11CE000ULL + static_cast<int>(kind)));
}

double document_bytes(const doc::Document& document) {
  // OCR rasterizes: reads the full page images.
  double bytes = 150'000.0;
  bytes += 450'000.0 * static_cast<double>(document.num_pages());
  return bytes;
}

ParseResult corrupted_result(const doc::Document& document) {
  ParseResult r;
  r.ok = false;
  r.error = "unreadable PDF: " + document.id;
  return r;
}

}  // namespace

Cost SimTesseract::estimate_cost(const doc::Document& document) const {
  Cost c;
  // LSTM line transcription: ~8 CPU-s per page in sim units (node of 32
  // cores sustains ~0.35 PDF/s, linear in Figure 5).
  c.cpu_seconds = 3.0 + 8.5 * static_cast<double>(document.num_pages());
  c.bytes_read = document_bytes(document);
  return c;
}

ParseResult SimTesseract::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kTesseract);

  const double q = document.image_layer.quality();
  // Error rates rise as render quality falls; a per-(document, parser)
  // severity factor models unrecorded page-level difficulty.
  const double severity = std::exp(rng.normal(0.0, 0.35));
  const double char_noise = (0.042 + 0.060 * (1.0 - q)) * severity;
  const double word_sub = (0.044 + 0.04 * (1.0 - q)) * severity;
  const double word_drop = (0.038 + 0.06 * (1.0 - q)) * severity;
  const double scramble = (0.024 + 0.05 * (1.0 - q)) * severity;

  result.pages.reserve(document.num_pages());
  for (const auto& gt : document.groundtruth_pages) {
    // Very degraded pages fail line segmentation entirely.
    const double drop_p =
        0.030 + 0.09 * document.layout_complexity + 0.25 * (1.0 - q);
    if (rng.chance(std::min(0.9, drop_p))) {
      result.pages.emplace_back();
      continue;
    }
    // OCR reads rendered glyphs: LaTeX appears as garbled symbols.
    std::string t = text::mangle_latex(gt, 0.92, rng);
    t = text::drop_words(t, word_drop, rng);
    t = text::substitute_words(t, word_sub, rng);
    t = text::substitute_chars(t, char_noise, rng);
    t = text::scramble_words(t, scramble, rng);
    t = text::layout_artifacts(t, 0.12 + 0.2 * document.layout_complexity,
                               rng);
    result.pages.push_back(std::move(t));
  }
  return result;
}

Cost SimGrobid::estimate_cost(const doc::Document& document) const {
  Cost c;
  // Segmentation models + assembly; multithreaded server in reality, here
  // expressed as per-document core-seconds (~0.5 PDF/s per node).
  c.cpu_seconds = 6.0 + 5.5 * static_cast<double>(document.num_pages());
  c.bytes_read = 0.6 * document_bytes(document);
  return c;
}

ParseResult SimGrobid::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kGrobid);

  result.pages.reserve(document.num_pages());
  for (std::size_t p = 0; p < document.groundtruth_pages.size(); ++p) {
    // GROBID targets bibliographic/body structure: pages that do not match
    // its segmentation models are skipped wholesale (coverage ~81%).
    const double drop_p = 0.11 + 0.20 * document.layout_complexity;
    if (rng.chance(std::min(0.9, drop_p))) {
      result.pages.emplace_back();
      continue;
    }
    const auto& gt = document.groundtruth_pages[p];
    // Clean characters, but non-body regions are excised: equations,
    // captions, and large parts of the reference list vanish (the brevity
    // penalty drives GROBID's BLEU to the bottom of Table 1).
    std::string t = text::mangle_latex(gt, 0.15, rng);
    t = text::drop_words(t, 0.30, rng);
    t = text::substitute_words(t, 0.02, rng);
    result.pages.push_back(std::move(t));
  }
  return result;
}

}  // namespace adaparse::parsers
