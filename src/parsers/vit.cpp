#include "parsers/vit.hpp"

#include <algorithm>
#include <cmath>

#include "text/corrupt.hpp"
#include "util/rng.hpp"

namespace adaparse::parsers {
namespace {

util::Rng noise_stream(const doc::Document& document, ParserKind kind) {
  return util::Rng(
      util::mix64(document.seed, 0xA11CE000ULL + static_cast<int>(kind)));
}

double document_bytes(const doc::Document& document) {
  // ViTs consume rendered page images at fixed resolution.
  return 120'000.0 + 520'000.0 * static_cast<double>(document.num_pages());
}

ParseResult corrupted_result(const doc::Document& document) {
  ParseResult r;
  r.ok = false;
  r.error = "unreadable PDF: " + document.id;
  return r;
}

}  // namespace

Cost SimNougat::estimate_cost(const doc::Document& document) const {
  Cost c;
  // Autoregressive decode per page at fixed resolution; page batching (Bp)
  // normalizes task size. ~6.4 GPU-s/page lands a 4-GPU node at the
  // ~0.0625 PDF/s of Figure 5.
  const auto pages = static_cast<double>(document.num_pages());
  const double batches = std::ceil(pages / kPageBatch);
  c.gpu_seconds = 1.0 * batches + 6.0 * pages;
  c.cpu_seconds = 0.8 + 0.25 * pages;  // rasterization + pre/post-processing
  c.bytes_read = document_bytes(document);
  return c;
}

ParseResult SimNougat::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kNougat);

  const double q = document.image_layer.quality();
  // Trained with scan-style augmentations: degradation hurts, but far less
  // than it hurts classical OCR. Base rates calibrated to the paper's
  // Nougat row (BLEU ~48, CAR ~66 on born-digital).
  const double degradation = (1.0 - q) * 0.35;
  const double severity = std::exp(rng.normal(0.0, 0.35));
  const double char_noise = (0.024 + 0.030 * degradation) * severity;
  const double word_sub = (0.058 + 0.03 * degradation) * severity;
  const double word_drop = (0.044 + 0.02 * degradation) * severity;

  result.pages.reserve(document.num_pages());
  for (const auto& gt : document.groundtruth_pages) {
    // Repetition collapse drops whole pages — worse on layout-dense pages.
    const double drop_p =
        0.040 + 0.05 * document.layout_complexity + 0.08 * degradation;
    if (rng.chance(std::min(0.8, drop_p))) {
      result.pages.emplace_back();
      continue;
    }
    // Decodes LaTeX essentially correctly (trained for it); math costs it
    // almost nothing. Hallucination substitutes/drops prose words.
    std::string t = text::mangle_latex(gt, 0.04, rng);
    t = text::drop_words(t, word_drop, rng);
    t = text::substitute_words(t, word_sub, rng);
    t = text::substitute_chars(t, char_noise, rng);
    t = text::layout_artifacts(t, 0.15, rng);  // markdown-ish
    result.pages.push_back(std::move(t));
  }
  return result;
}

Cost SimMarker::estimate_cost(const doc::Document& document) const {
  Cost c;
  // Layout detection + per-element texify decode: the slowest of the cohort
  // (~0.0125 PDF/s per node before its scaling collapse).
  const auto pages = static_cast<double>(document.num_pages());
  c.gpu_seconds = 4.0 + 30.0 * pages;
  c.cpu_seconds = 2.0 + 1.2 * pages;
  c.bytes_read = document_bytes(document);
  return c;
}

ParseResult SimMarker::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kMarker);

  const double q = document.image_layer.quality();
  // Calibrated to the paper's Marker row (BLEU ~47.5, CAR ~60 — best
  // coverage, slightly behind Nougat on text fidelity).
  const double degradation = (1.0 - q) * 0.5;
  const double severity = std::exp(rng.normal(0.0, 0.35));
  const double char_noise = (0.030 + 0.03 * degradation) * severity;

  result.pages.reserve(document.num_pages());
  for (const auto& gt : document.groundtruth_pages) {
    // Explicit layout detection recovers almost every page (best coverage
    // in Table 1), even under degradation.
    const double drop_p = 0.015 + 0.03 * document.layout_complexity +
                          0.04 * degradation;
    if (rng.chance(std::min(0.6, drop_p))) {
      result.pages.emplace_back();
      continue;
    }
    // Good but not Nougat-grade math; layout model occasionally reorders
    // blocks (scramble at the word level approximates block transpositions).
    std::string t = text::mangle_latex(gt, 0.22, rng);
    t = text::drop_words(t, 0.042 * severity, rng);
    t = text::substitute_words(t, 0.052 * severity, rng);
    t = text::substitute_chars(t, char_noise, rng);
    t = text::scramble_words(t, 0.022 + 0.02 * document.layout_complexity,
                             rng);
    t = text::layout_artifacts(t, 0.60, rng);
    t = text::pad_whitespace(t, 0.5, rng);
    result.pages.push_back(std::move(t));
  }
  return result;
}

}  // namespace adaparse::parsers
