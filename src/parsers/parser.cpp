#include "parsers/parser.hpp"

namespace adaparse::parsers {

const char* parser_name(ParserKind k) {
  switch (k) {
    case ParserKind::kPyMuPdf: return "PyMuPDF";
    case ParserKind::kPypdf: return "pypdf";
    case ParserKind::kTesseract: return "Tesseract";
    case ParserKind::kGrobid: return "GROBID";
    case ParserKind::kMarker: return "Marker";
    case ParserKind::kNougat: return "Nougat";
  }
  return "?";
}

std::string ParseResult::full_text() const {
  std::string out;
  bool first = true;
  for (const auto& page : pages) {
    if (page.empty()) continue;
    if (!first) out += '\n';
    first = false;
    out += page;
  }
  return out;
}

}  // namespace adaparse::parsers
