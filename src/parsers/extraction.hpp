// Text-extraction parsers (paper §3.1.1): read the embedded text layer.
//
// Fast and language-agnostic, but entirely at the mercy of the layer's
// quality — they "falter when text is either not embedded explicitly or is
// of poor quality". SimPyMuPdf models MuPDF's clean, fast extraction;
// SimPypdf models pypdf's slower pure-Python extraction with its
// characteristic whitespace/layout damage (the paper measures pypdf's CAR
// at 32.3%, by far the worst character-level fidelity of the cohort).
#pragma once

#include "parsers/parser.hpp"

namespace adaparse::parsers {

/// MuPDF-style extraction: near-verbatim text layer, minimal overhead.
class SimPyMuPdf final : public Parser {
 public:
  ParserKind kind() const override { return ParserKind::kPyMuPdf; }
  Resource resource() const override { return Resource::kCpu; }
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

/// pypdf-style extraction: pure-Python, ~13x slower, heavy whitespace and
/// line-layout artifacts (low CAR), occasional lost words.
class SimPypdf final : public Parser {
 public:
  ParserKind kind() const override { return ParserKind::kPypdf; }
  Resource resource() const override { return Resource::kCpu; }
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

}  // namespace adaparse::parsers
