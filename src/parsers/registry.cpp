#include "parsers/registry.hpp"

#include <stdexcept>

#include "parsers/extraction.hpp"
#include "parsers/ocr.hpp"
#include "parsers/vit.hpp"

namespace adaparse::parsers {

ParserPtr make_parser(ParserKind kind) {
  switch (kind) {
    case ParserKind::kPyMuPdf: return std::make_shared<SimPyMuPdf>();
    case ParserKind::kPypdf: return std::make_shared<SimPypdf>();
    case ParserKind::kTesseract: return std::make_shared<SimTesseract>();
    case ParserKind::kGrobid: return std::make_shared<SimGrobid>();
    case ParserKind::kMarker: return std::make_shared<SimMarker>();
    case ParserKind::kNougat: return std::make_shared<SimNougat>();
  }
  throw std::invalid_argument("unknown parser kind");
}

std::vector<ParserPtr> all_parsers() {
  std::vector<ParserPtr> parsers;
  parsers.reserve(kNumParsers);
  for (ParserKind kind : all_kinds()) {
    parsers.push_back(make_parser(kind));
  }
  return parsers;
}

}  // namespace adaparse::parsers
