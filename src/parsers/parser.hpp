// The parser abstraction: everything AdaParse knows about a parser.
//
// A parser maps a Document to per-page text plus a resource cost. AdaParse
// treats parsers as black boxes characterized by (output text, cost,
// resource class) — exactly the interface this header defines. The six
// simulated parsers reproduce the error profiles and cost ratios of the
// real tools benchmarked in the paper (PyMuPDF, pypdf, Tesseract, GROBID,
// Marker, Nougat).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "doc/document.hpp"

namespace adaparse::parsers {

/// Identity of the six constituent parsers. Order matters: it is the output
/// order of the m=6 accuracy-prediction head (paper Appendix A).
enum class ParserKind : std::uint8_t {
  kPyMuPdf = 0,
  kPypdf = 1,
  kTesseract = 2,
  kGrobid = 3,
  kMarker = 4,
  kNougat = 5,
};
inline constexpr std::size_t kNumParsers = 6;
const char* parser_name(ParserKind k);

/// Hardware class a parser occupies (paper §5.2: PyMuPDF runs exclusively
/// on CPUs, so it never competes with Nougat for GPUs).
enum class Resource : std::uint8_t { kCpu, kGpu };

/// Simulated resource consumption of one parse.
struct Cost {
  double cpu_seconds = 0.0;  ///< CPU-core-seconds
  double gpu_seconds = 0.0;  ///< GPU-seconds
  double bytes_read = 0.0;   ///< input I/O volume (drives FS contention)
};

/// Output of one parse.
struct ParseResult {
  bool ok = true;            ///< false: unreadable/corrupted input
  std::string error;         ///< diagnostic when !ok
  std::vector<std::string> pages;  ///< per-page text; "" = page dropped
  Cost cost;                 ///< simulated resources actually spent

  /// Concatenated page text (newline-separated; dropped pages skipped).
  std::string full_text() const;
};

/// Abstract parser.
class Parser {
 public:
  virtual ~Parser() = default;

  virtual ParserKind kind() const = 0;
  std::string_view name() const { return parser_name(kind()); }
  virtual Resource resource() const = 0;

  /// One-time model-load cost (seconds) paid per worker unless the runtime
  /// warm-starts it (paper: Nougat's ViT takes ~15 s to load on an A100).
  virtual double model_load_seconds() const { return 0.0; }

  /// Expected cost of parsing `document` without running it — used by the
  /// scheduler for placement and by the budget optimizer.
  virtual Cost estimate_cost(const doc::Document& document) const = 0;

  /// Runs the parser. Deterministic given (document.seed, kind).
  virtual ParseResult parse(const doc::Document& document) const = 0;
};

using ParserPtr = std::shared_ptr<const Parser>;

}  // namespace adaparse::parsers
