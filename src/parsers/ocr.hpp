// OCR-class parsers (paper §3.1.2): rasterize pages and transcribe them.
//
// Robust to missing/broken text layers (they never read one), but pay a
// large compute cost and inherit the render quality of the page image.
// SimTesseract models the Tesseract 5 LSTM line recognizer; SimGrobid
// models GROBID's structured extraction (clean body text, but whole
// non-body regions — references, equations, captions — are dropped, which
// is why the paper measures its coverage at 81% and BLEU at 26.5%).
#pragma once

#include "parsers/parser.hpp"

namespace adaparse::parsers {

/// Tesseract-style OCR: character-accurate on clean renders, math-blind,
/// error rate scales with scan degradation.
class SimTesseract final : public Parser {
 public:
  ParserKind kind() const override { return ParserKind::kTesseract; }
  Resource resource() const override { return Resource::kCpu; }
  double model_load_seconds() const override { return 1.5; }  // LSTM models
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

/// GROBID-style structured extraction: ML segmentation + text assembly.
class SimGrobid final : public Parser {
 public:
  ParserKind kind() const override { return ParserKind::kGrobid; }
  Resource resource() const override { return Resource::kCpu; }
  double model_load_seconds() const override { return 6.0; }  // CRF/DL models
  Cost estimate_cost(const doc::Document& document) const override;
  ParseResult parse(const doc::Document& document) const override;
};

}  // namespace adaparse::parsers
