#include "parsers/extraction.hpp"

#include "text/corrupt.hpp"
#include "util/rng.hpp"

namespace adaparse::parsers {
namespace {

/// Per-(document, parser) deterministic noise stream.
util::Rng noise_stream(const doc::Document& document, ParserKind kind) {
  return util::Rng(
      util::mix64(document.seed, 0xA11CE000ULL + static_cast<int>(kind)));
}

/// Approximate input size: PDFs carry images/fonts beyond the text.
double document_bytes(const doc::Document& document) {
  double bytes = 200'000.0;  // structure + fonts
  for (const auto& page : document.groundtruth_pages) {
    bytes += 60'000.0 + 2.0 * static_cast<double>(page.size());
  }
  if (!document.image_layer.born_digital) bytes *= 2.2;  // scan images
  return bytes;
}

ParseResult corrupted_result(const doc::Document& document) {
  ParseResult r;
  r.ok = false;
  r.error = "unreadable PDF: " + document.id;
  return r;
}

}  // namespace

Cost SimPyMuPdf::estimate_cost(const doc::Document& document) const {
  Cost c;
  // Effective per-document CPU cost (parse + orchestration overhead),
  // calibrated so a 32-core node sustains ~2.5 PDF/s as in Figure 5.
  c.cpu_seconds = 1.2 + 1.18 * static_cast<double>(document.num_pages());
  c.bytes_read = document_bytes(document);
  return c;
}

ParseResult SimPyMuPdf::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kPyMuPdf);

  result.pages.reserve(document.num_pages());
  if (!document.text_layer.present) {
    // No embedded text: extraction returns nothing per page.
    result.pages.assign(document.num_pages(), std::string());
    return result;
  }
  for (std::size_t p = 0; p < document.text_layer.pages.size(); ++p) {
    // Pages whose content lives in figures/vector art yield no text; more
    // likely in layout-dense documents.
    const double drop_p = 0.035 + 0.11 * document.layout_complexity;
    if (rng.chance(drop_p)) {
      result.pages.emplace_back();
      continue;
    }
    // Near-verbatim; mild reflow (MuPDF reads in layout order).
    std::string t = text::layout_artifacts(
        document.text_layer.pages[p],
        0.10 + 0.25 * document.layout_complexity, rng);
    result.pages.push_back(std::move(t));
  }
  return result;
}

Cost SimPypdf::estimate_cost(const doc::Document& document) const {
  Cost c;
  // ~13x the per-page cost of MuPDF extraction (paper §5.1) and ~4x the
  // filesystem operations (object-by-object reads), which is what makes
  // pypdf plateau earlier than PyMuPDF at scale (Figure 5).
  c.cpu_seconds = 2.0 + 3.6 * static_cast<double>(document.num_pages());
  c.bytes_read = 4.0 * document_bytes(document);
  return c;
}

ParseResult SimPypdf::parse(const doc::Document& document) const {
  if (document.corrupted) return corrupted_result(document);
  ParseResult result;
  result.cost = estimate_cost(document);
  auto rng = noise_stream(document, ParserKind::kPypdf);

  result.pages.reserve(document.num_pages());
  if (!document.text_layer.present) {
    result.pages.assign(document.num_pages(), std::string());
    return result;
  }
  for (std::size_t p = 0; p < document.text_layer.pages.size(); ++p) {
    const double drop_p = 0.030 + 0.10 * document.layout_complexity;
    if (rng.chance(drop_p)) {
      result.pages.emplace_back();
      continue;
    }
    // pypdf's signature: aggressive line-by-line emission (reflow), spurious
    // whitespace, occasional lost words and encoding damage. Token stream
    // survives (moderate BLEU), character stream does not (CAR ~32%).
    // Word-level channels first (drop_words re-joins on single spaces and
    // would erase whitespace damage applied before it), then the layout and
    // whitespace channels that give pypdf its CAR-collapsing signature.
    std::string t = document.text_layer.pages[p];
    t = text::drop_words(t, 0.002, rng);
    t = text::scramble_words(t, 0.002, rng);
    t = text::substitute_words(t, 0.006, rng);
    t = text::mojibake(t, 0.004, rng);
    t = text::layout_artifacts(t, 0.55, rng);
    t = text::pad_whitespace(t, 3.0, rng);
    t = text::inject_whitespace(t, 0.012, rng);
    result.pages.push_back(std::move(t));
  }
  return result;
}

}  // namespace adaparse::parsers
