// The simulated expert annotator (paper §6.3).
//
// 23 scientists judged pairs of parser outputs for the same page. We model
// an annotator's latent utility for a candidate text as
//
//   U = w_acc * BLEU(text, groundtruth) + taste . style(text) + noise
//
// where style(text) are visible stylistic properties (LaTeX residue,
// whitespace damage, scrambled words, truncation) and `taste` varies mildly
// per annotator. Utility depends on the *text only* — annotators never see
// parser identity — so a meta-parser like AdaParse inherits the judgment of
// whatever output it routed to. Weights are calibrated so that BLEU
// correlates with observed win rates at rho ~ 0.47 (paper §7.1): clearly
// informative, far from fully predictive.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace adaparse::pref {

/// Stylistic utility features, computed from the candidate text alone.
struct StyleScore {
  double latex_residue = 0.0;    ///< LaTeX artifacts per 1k chars
  double whitespace_mess = 0.0;  ///< whitespace beyond prose-typical
  double scrambled = 0.0;        ///< scrambled-token ratio
  double truncation = 0.0;       ///< 1 - candidate/reference length ratio
  double mojibake = 0.0;         ///< non-ASCII artifact ratio
};

StyleScore compute_style(std::string_view candidate,
                         std::string_view reference);

/// One simulated expert.
class Annotator {
 public:
  /// `id` individualizes tastes deterministically; `pool_seed` is shared.
  Annotator(std::size_t id, std::uint64_t pool_seed);

  /// Latent utility of a candidate text for a given page.
  /// `bleu` is the candidate's true page BLEU (the annotator perceives
  /// quality correlated with it, not equal to it).
  double utility(double bleu, const StyleScore& style, util::Rng& rng) const;

  /// Indifference threshold: |U_a - U_b| below this yields "neither".
  double indifference() const { return indifference_; }

  std::size_t id() const { return id_; }

 private:
  std::size_t id_;
  double w_accuracy_;       ///< weight on true quality
  double w_latex_;
  double w_whitespace_;
  double w_scrambled_;
  double w_truncation_;
  double w_mojibake_;
  double noise_sigma_;      ///< judgment noise
  double indifference_;
};

/// The 23-expert pool.
std::vector<Annotator> make_annotator_pool(std::size_t n = 23,
                                           std::uint64_t seed = 0xBEEF);

}  // namespace adaparse::pref
