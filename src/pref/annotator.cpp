#include "pref/annotator.hpp"

#include <algorithm>
#include <cmath>

#include "text/detect.hpp"

namespace adaparse::pref {

StyleScore compute_style(std::string_view candidate,
                         std::string_view reference) {
  StyleScore s;
  if (candidate.empty()) {
    s.truncation = 1.0;
    return s;
  }
  const double per_kchar = 1000.0 / static_cast<double>(candidate.size());
  s.latex_residue =
      static_cast<double>(text::latex_artifact_count(candidate)) * per_kchar;
  // Whitespace beyond the ~16% typical of prose.
  s.whitespace_mess =
      std::max(0.0, text::whitespace_ratio(candidate) - 0.16) * 10.0;
  s.scrambled = text::scrambled_token_ratio(candidate);
  if (!reference.empty()) {
    s.truncation = std::clamp(
        1.0 - static_cast<double>(candidate.size()) /
                  static_cast<double>(reference.size()),
        0.0, 1.0);
  }
  s.mojibake = text::non_ascii_ratio(candidate) * 20.0;
  return s;
}

Annotator::Annotator(std::size_t id, std::uint64_t pool_seed) : id_(id) {
  util::Rng rng(util::mix64(pool_seed, id * 977 + 13));
  // Population means chosen so that, over the parser cohort's output
  // distribution, BLEU explains roughly half the variance in choices.
  w_accuracy_ = rng.normal(3.0, 0.4);
  w_latex_ = rng.normal(-0.55, 0.15);       // residue is very visible
  w_whitespace_ = rng.normal(-0.50, 0.15);
  w_scrambled_ = rng.normal(-2.2, 0.4);
  w_truncation_ = rng.normal(-1.6, 0.3);
  w_mojibake_ = rng.normal(-0.8, 0.2);
  noise_sigma_ = std::max(0.15, rng.normal(0.42, 0.08));
  indifference_ = std::max(0.02, rng.normal(0.105, 0.03));
}

double Annotator::utility(double bleu, const StyleScore& style,
                          util::Rng& rng) const {
  double u = w_accuracy_ * bleu;
  u += w_latex_ * std::min(style.latex_residue, 8.0) / 8.0;
  u += w_whitespace_ * std::min(style.whitespace_mess, 3.0);
  u += w_scrambled_ * style.scrambled;
  u += w_truncation_ * style.truncation;
  u += w_mojibake_ * std::min(style.mojibake, 1.0);
  u += rng.normal(0.0, noise_sigma_);
  return u;
}

std::vector<Annotator> make_annotator_pool(std::size_t n,
                                           std::uint64_t seed) {
  std::vector<Annotator> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pool.emplace_back(i, seed);
  return pool;
}

}  // namespace adaparse::pref
