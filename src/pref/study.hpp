// The preference-collection study and its statistics (paper §6.3, §7.1).
//
// Samples document pages, runs all seven parsers' outputs through simulated
// expert pairwise judgments, and produces: the preference dataset with the
// paper's train/val/test page-level split (712/234/1848 judgments), per-
// parser normalized win rates, the consensus rate over repeated triplets,
// and the BLEU-vs-win-rate correlation test.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "doc/document.hpp"
#include "parsers/parser.hpp"
#include "util/stats.hpp"

namespace adaparse::pref {

/// Which split a judgment belongs to (split by page, as in the paper).
enum class Split : std::uint8_t { kTrain, kVal, kTest };

/// One pairwise judgment. `choice`: 0 = parser_a, 1 = parser_b, 2 = neither.
struct Judgment {
  std::size_t doc_index = 0;
  std::size_t page = 0;
  parsers::ParserKind parser_a{};
  parsers::ParserKind parser_b{};
  int choice = 2;
  std::size_t annotator = 0;
  Split split = Split::kTrain;
};

struct StudyConfig {
  std::size_t num_annotators = 23;
  std::size_t num_pages = 642;       ///< distinct (doc, page) items
  std::size_t train_judgments = 712;
  std::size_t val_judgments = 234;
  std::size_t test_judgments = 1848;
  /// Fraction of test triplets deliberately repeated across annotators to
  /// measure consensus.
  double repeat_fraction = 0.45;
  std::uint64_t seed = 0xC0FFEE;
};

struct StudyResult {
  std::vector<Judgment> judgments;
  /// Sampled items: (document index, page index).
  std::vector<std::pair<std::size_t, std::size_t>> pages;

  /// Normalized win rate per parser: wins / decided comparisons involving
  /// that parser (paper reports these, noting they do not sum to 100%).
  std::map<parsers::ParserKind, double> win_rate;
  /// Fraction of judgments where a preference was expressed (paper: 91.3%).
  double decision_rate = 0.0;
  /// Agreement among repeated triplets (paper: 82.2%).
  double consensus_rate = 0.0;
  /// Correlation of page BLEU with win rate over (page, parser) cells
  /// (paper: rho ~ 0.47, p ~ 1e-49).
  util::CorrelationTest bleu_win_correlation;
};

/// Runs the full simulated study on `docs` with the given parser cohort.
StudyResult run_study(const std::vector<doc::Document>& docs,
                      const std::vector<parsers::ParserPtr>& parsers,
                      const StudyConfig& config = {});

/// Round-robin pairwise win rates for arbitrary candidate texts: used to
/// fill the WR column of Tables 1-3 where AdaParse (not a fixed parser) is
/// among the systems. `outputs[s][d]` is system s's text for document d;
/// `references[d]` the groundtruth; `bleus[s][d]` the document BLEU.
/// Returns one normalized win rate per system.
std::vector<double> tournament_win_rates(
    const std::vector<std::vector<std::string>>& outputs,
    const std::vector<std::string>& references,
    const std::vector<std::vector<double>>& bleus,
    std::size_t judgments_per_pair = 3, std::uint64_t seed = 0x7EAA);

}  // namespace adaparse::pref
