#include "pref/study.hpp"

#include <algorithm>
#include <unordered_map>

#include "metrics/bleu.hpp"
#include "pref/annotator.hpp"
#include "util/rng.hpp"

namespace adaparse::pref {
namespace {

/// Key for a unique comparison item (page + unordered parser pair).
struct TripletKey {
  std::size_t page_item;
  int pa;
  int pb;
  bool operator==(const TripletKey&) const = default;
};

struct TripletKeyHash {
  std::size_t operator()(const TripletKey& k) const {
    return static_cast<std::size_t>(
        util::mix64(k.page_item, static_cast<std::uint64_t>(k.pa * 31 + k.pb)));
  }
};

/// Cached per-(page item, parser) candidate state.
struct Candidate {
  std::string text;
  double bleu = 0.0;
  StyleScore style;
};

}  // namespace

StudyResult run_study(const std::vector<doc::Document>& docs,
                      const std::vector<parsers::ParserPtr>& parser_list,
                      const StudyConfig& config) {
  StudyResult result;
  if (docs.empty() || parser_list.size() < 2) return result;
  util::Rng rng(config.seed);

  // --- Sample distinct (doc, page) items. ------------------------------
  result.pages.reserve(config.num_pages);
  for (std::size_t i = 0; i < config.num_pages; ++i) {
    const auto d = static_cast<std::size_t>(rng.below(docs.size()));
    const auto& document = docs[d];
    if (document.num_pages() == 0 || document.corrupted) continue;
    const auto p = static_cast<std::size_t>(rng.below(document.num_pages()));
    result.pages.emplace_back(d, p);
  }

  // --- Run each parser once per referenced document; cache page outputs. --
  std::unordered_map<std::size_t, std::vector<parsers::ParseResult>> parses;
  for (const auto& [d, p] : result.pages) {
    if (parses.count(d) > 0) continue;
    auto& per_parser = parses[d];
    per_parser.reserve(parser_list.size());
    for (const auto& parser : parser_list) {
      per_parser.push_back(parser->parse(docs[d]));
    }
  }

  // Candidate cache: page text + page BLEU + style, per (item, parser).
  std::vector<std::vector<Candidate>> candidates(result.pages.size());
  for (std::size_t item = 0; item < result.pages.size(); ++item) {
    const auto [d, p] = result.pages[item];
    const auto& reference = docs[d].groundtruth_pages[p];
    candidates[item].resize(parser_list.size());
    for (std::size_t j = 0; j < parser_list.size(); ++j) {
      auto& c = candidates[item][j];
      const auto& pages = parses[d][j].pages;
      c.text = p < pages.size() ? pages[p] : std::string();
      c.bleu = metrics::bleu(c.text, reference);
      c.style = compute_style(c.text, reference);
    }
  }

  const auto annotators =
      make_annotator_pool(config.num_annotators, config.seed ^ 0xA77);

  // --- Assign page items to splits (split by page, as in the paper). ----
  std::vector<std::size_t> item_order(result.pages.size());
  for (std::size_t i = 0; i < item_order.size(); ++i) item_order[i] = i;
  rng.shuffle(item_order);
  const double total_judgments = static_cast<double>(
      config.train_judgments + config.val_judgments + config.test_judgments);
  const auto n_train_pages = static_cast<std::size_t>(
      static_cast<double>(item_order.size()) *
      static_cast<double>(config.train_judgments) / total_judgments);
  const auto n_val_pages = static_cast<std::size_t>(
      static_cast<double>(item_order.size()) *
      static_cast<double>(config.val_judgments) / total_judgments);
  auto split_of_item = [&](std::size_t item) {
    const auto pos = static_cast<std::size_t>(
        std::find(item_order.begin(), item_order.end(), item) -
        item_order.begin());
    if (pos < n_train_pages) return Split::kTrain;
    if (pos < n_train_pages + n_val_pages) return Split::kVal;
    return Split::kTest;
  };
  std::vector<std::size_t> items_by_split[3];
  for (std::size_t pos = 0; pos < item_order.size(); ++pos) {
    const Split s = pos < n_train_pages
                        ? Split::kTrain
                        : (pos < n_train_pages + n_val_pages ? Split::kVal
                                                             : Split::kTest);
    items_by_split[static_cast<int>(s)].push_back(item_order[pos]);
  }
  (void)split_of_item;

  // --- Generate judgments. ----------------------------------------------
  std::vector<TripletKey> seen_triplets;  // candidates for repetition
  auto judge = [&](Split split, std::size_t count) {
    const auto& pool = items_by_split[static_cast<int>(split)];
    if (pool.empty()) return;
    for (std::size_t i = 0; i < count; ++i) {
      TripletKey key{};
      const bool repeat = split == Split::kTest && !seen_triplets.empty() &&
                          rng.chance(config.repeat_fraction);
      if (repeat) {
        key = seen_triplets[rng.below(seen_triplets.size())];
      } else {
        key.page_item = pool[rng.below(pool.size())];
        key.pa = static_cast<int>(rng.below(parser_list.size()));
        do {
          key.pb = static_cast<int>(rng.below(parser_list.size()));
        } while (key.pb == key.pa);
        if (key.pa > key.pb) std::swap(key.pa, key.pb);
        if (split == Split::kTest) seen_triplets.push_back(key);
      }
      const auto& annotator = annotators[rng.below(annotators.size())];
      const auto& ca =
          candidates[key.page_item][static_cast<std::size_t>(key.pa)];
      const auto& cb =
          candidates[key.page_item][static_cast<std::size_t>(key.pb)];
      const double ua = annotator.utility(ca.bleu, ca.style, rng);
      const double ub = annotator.utility(cb.bleu, cb.style, rng);
      Judgment judgment;
      judgment.doc_index = result.pages[key.page_item].first;
      judgment.page = result.pages[key.page_item].second;
      judgment.parser_a = static_cast<parsers::ParserKind>(key.pa);
      judgment.parser_b = static_cast<parsers::ParserKind>(key.pb);
      judgment.annotator = annotator.id();
      judgment.split = split;
      if (std::abs(ua - ub) < annotator.indifference()) {
        judgment.choice = 2;
      } else {
        judgment.choice = ua > ub ? 0 : 1;
      }
      result.judgments.push_back(judgment);
    }
  };
  judge(Split::kTrain, config.train_judgments);
  judge(Split::kVal, config.val_judgments);
  judge(Split::kTest, config.test_judgments);

  // --- Statistics. --------------------------------------------------------
  std::map<parsers::ParserKind, std::pair<std::size_t, std::size_t>> tally;
  std::size_t decided = 0;
  for (const auto& judgment : result.judgments) {
    if (judgment.choice == 2) continue;
    ++decided;
    const auto winner =
        judgment.choice == 0 ? judgment.parser_a : judgment.parser_b;
    const auto loser =
        judgment.choice == 0 ? judgment.parser_b : judgment.parser_a;
    ++tally[winner].first;
    ++tally[winner].second;
    ++tally[loser].second;
  }
  result.decision_rate = result.judgments.empty()
                             ? 0.0
                             : static_cast<double>(decided) /
                                   static_cast<double>(result.judgments.size());
  for (const auto& [kind, counts] : tally) {
    result.win_rate[kind] =
        counts.second > 0
            ? static_cast<double>(counts.first) /
                  static_cast<double>(counts.second)
            : 0.0;
  }

  // Consensus over repeated triplets: majority-agreement frequency among
  // decided judgments sharing a triplet.
  std::unordered_map<TripletKey, std::vector<int>, TripletKeyHash> by_triplet;
  for (const auto& judgment : result.judgments) {
    if (judgment.split != Split::kTest || judgment.choice == 2) continue;
    TripletKey key{0, static_cast<int>(judgment.parser_a),
                   static_cast<int>(judgment.parser_b)};
    // Recover the page item index.
    for (std::size_t item = 0; item < result.pages.size(); ++item) {
      if (result.pages[item].first == judgment.doc_index &&
          result.pages[item].second == judgment.page) {
        key.page_item = item;
        break;
      }
    }
    by_triplet[key].push_back(judgment.choice);
  }
  std::size_t agreeing_pairs = 0, total_pairs = 0;
  std::size_t multi_triplets = 0;
  for (const auto& [key, choices] : by_triplet) {
    if (choices.size() < 2) continue;
    ++multi_triplets;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      for (std::size_t j = i + 1; j < choices.size(); ++j) {
        ++total_pairs;
        if (choices[i] == choices[j]) ++agreeing_pairs;
      }
    }
  }
  result.consensus_rate =
      total_pairs > 0 ? static_cast<double>(agreeing_pairs) /
                            static_cast<double>(total_pairs)
                      : 0.0;

  // BLEU vs win-rate correlation over (page item, parser) cells.
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
      cell_tally;  // key = item * kNumParsers + parser
  for (const auto& judgment : result.judgments) {
    if (judgment.choice == 2) continue;
    std::size_t item = 0;
    for (std::size_t i = 0; i < result.pages.size(); ++i) {
      if (result.pages[i].first == judgment.doc_index &&
          result.pages[i].second == judgment.page) {
        item = i;
        break;
      }
    }
    const auto ka = static_cast<std::uint64_t>(
        item * parsers::kNumParsers + static_cast<std::size_t>(judgment.parser_a));
    const auto kb = static_cast<std::uint64_t>(
        item * parsers::kNumParsers + static_cast<std::size_t>(judgment.parser_b));
    ++cell_tally[ka].second;
    ++cell_tally[kb].second;
    ++cell_tally[judgment.choice == 0 ? ka : kb].first;
  }
  std::vector<double> cell_bleu, cell_wr;
  for (const auto& [cell, counts] : cell_tally) {
    const std::size_t item = cell / parsers::kNumParsers;
    const std::size_t parser = cell % parsers::kNumParsers;
    cell_bleu.push_back(candidates[item][parser].bleu);
    cell_wr.push_back(static_cast<double>(counts.first) /
                      static_cast<double>(counts.second));
  }
  result.bleu_win_correlation = util::correlation_test(cell_bleu, cell_wr);
  return result;
}

std::vector<double> tournament_win_rates(
    const std::vector<std::vector<std::string>>& outputs,
    const std::vector<std::string>& references,
    const std::vector<std::vector<double>>& bleus,
    std::size_t judgments_per_pair, std::uint64_t seed) {
  const std::size_t systems = outputs.size();
  std::vector<double> rates(systems, 0.0);
  if (systems < 2 || references.empty()) return rates;
  util::Rng rng(seed);
  const auto annotators = make_annotator_pool(23, seed ^ 0x5EED);

  // Cache style scores lazily per (system, doc).
  std::vector<std::vector<char>> style_ready(
      systems, std::vector<char>(references.size(), 0));
  std::vector<std::vector<StyleScore>> styles(
      systems, std::vector<StyleScore>(references.size()));
  auto style_of = [&](std::size_t s, std::size_t d) -> const StyleScore& {
    if (style_ready[s][d] == 0) {
      styles[s][d] = compute_style(outputs[s][d], references[d]);
      style_ready[s][d] = 1;
    }
    return styles[s][d];
  };

  std::vector<std::size_t> wins(systems, 0), involved(systems, 0);
  for (std::size_t d = 0; d < references.size(); ++d) {
    for (std::size_t a = 0; a < systems; ++a) {
      for (std::size_t b = a + 1; b < systems; ++b) {
        for (std::size_t k = 0; k < judgments_per_pair; ++k) {
          const auto& annotator = annotators[rng.below(annotators.size())];
          const double ua =
              annotator.utility(bleus[a][d], style_of(a, d), rng);
          const double ub =
              annotator.utility(bleus[b][d], style_of(b, d), rng);
          if (std::abs(ua - ub) < annotator.indifference()) continue;
          ++involved[a];
          ++involved[b];
          ++wins[ua > ub ? a : b];
        }
      }
    }
  }
  for (std::size_t s = 0; s < systems; ++s) {
    rates[s] = involved[s] > 0 ? static_cast<double>(wins[s]) /
                                     static_cast<double>(involved[s])
                               : 0.0;
  }
  return rates;
}

}  // namespace adaparse::pref
