#include "ml/linear.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"

namespace adaparse::ml {
namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

}  // namespace

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

MultiOutputRegressor::MultiOutputRegressor(std::uint32_t input_dim,
                                           std::size_t outputs)
    : input_dim_(input_dim),
      weights_(outputs, std::vector<double>(input_dim, 0.0)),
      biases_(outputs, 0.0) {}

void MultiOutputRegressor::fit(std::span<const SparseVec> inputs,
                               std::span<const std::vector<double>> targets,
                               const TrainOptions& options) {
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("regressor fit: size mismatch");
  }
  util::Rng rng(options.seed);
  const std::size_t m = outputs();
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // 1/sqrt decay keeps late epochs stable without a schedule parameter.
    const double lr =
        options.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    double loss = 0.0;
    for (std::size_t i : shuffled_indices(inputs.size(), rng)) {
      const SparseVec& x = inputs[i];
      for (std::size_t k = 0; k < m; ++k) {
        const double err = dot(x, weights_[k]) + biases_[k] - targets[i][k];
        loss += err * err;
        const double g = lr * err;
        // Weight decay applied only to touched coordinates (standard sparse
        // SGD approximation; exact decay would densify every step).
        for (const auto& f : x) {
          double& w = weights_[k][f.index];
          w -= g * static_cast<double>(f.value) + lr * options.l2 * w;
        }
        biases_[k] -= g;
      }
    }
    if (options.verbose) {
      util::log_info() << "regressor epoch " << epoch << " mse "
                       << loss / std::max<std::size_t>(1, inputs.size() * m);
    }
  }
}

std::vector<double> MultiOutputRegressor::predict(const SparseVec& input) const {
  std::vector<double> out(outputs());
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = dot(input, weights_[k]) + biases_[k];
  }
  return out;
}

double MultiOutputRegressor::predict_one(const SparseVec& input,
                                         std::size_t output) const {
  return dot(input, weights_[output]) + biases_[output];
}

LogisticRegression::LogisticRegression(std::uint32_t input_dim)
    : input_dim_(input_dim), w_(input_dim, 0.0) {}

void LogisticRegression::fit(std::span<const SparseVec> inputs,
                             std::span<const int> labels,
                             const TrainOptions& options) {
  if (inputs.size() != labels.size()) {
    throw std::invalid_argument("logistic fit: size mismatch");
  }
  util::Rng rng(options.seed);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr =
        options.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (std::size_t i : shuffled_indices(inputs.size(), rng)) {
      const SparseVec& x = inputs[i];
      const double p = sigmoid(dot(x, w_) + b_);
      const double err = p - static_cast<double>(labels[i]);
      for (const auto& f : x) {
        double& w = w_[f.index];
        w -= lr * (err * static_cast<double>(f.value) + options.l2 * w);
      }
      b_ -= lr * err;
    }
  }
}

double LogisticRegression::predict_proba(const SparseVec& input) const {
  return sigmoid(dot(input, w_) + b_);
}

int LogisticRegression::predict(const SparseVec& input,
                                double threshold) const {
  return predict_proba(input) >= threshold ? 1 : 0;
}

LinearSvc::LinearSvc(std::uint32_t input_dim, std::size_t num_classes)
    : input_dim_(input_dim),
      w_(num_classes, std::vector<double>(input_dim, 0.0)),
      b_(num_classes, 0.0) {}

void LinearSvc::fit(std::span<const SparseVec> inputs,
                    std::span<const int> labels,
                    const TrainOptions& options) {
  if (inputs.size() != labels.size()) {
    throw std::invalid_argument("svc fit: size mismatch");
  }
  util::Rng rng(options.seed);
  const std::size_t classes = w_.size();
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr =
        options.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (std::size_t i : shuffled_indices(inputs.size(), rng)) {
      const SparseVec& x = inputs[i];
      for (std::size_t c = 0; c < classes; ++c) {
        const double y = labels[i] == static_cast<int>(c) ? 1.0 : -1.0;
        const double margin = y * (dot(x, w_[c]) + b_[c]);
        if (margin < 1.0) {  // hinge subgradient
          for (const auto& f : x) {
            double& w = w_[c][f.index];
            w += lr * (y * static_cast<double>(f.value) - options.l2 * w);
          }
          b_[c] += lr * y;
        } else {
          for (const auto& f : x) {
            w_[c][f.index] *= 1.0 - lr * options.l2;
          }
        }
      }
    }
  }
}

std::vector<double> LinearSvc::decision(const SparseVec& input) const {
  std::vector<double> scores(w_.size());
  for (std::size_t c = 0; c < w_.size(); ++c) {
    scores[c] = dot(input, w_[c]) + b_[c];
  }
  return scores;
}

int LinearSvc::predict(const SparseVec& input) const {
  const auto scores = decision(input);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace adaparse::ml
