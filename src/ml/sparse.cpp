#include "ml/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace adaparse::ml {

void compact(SparseVec& v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end(),
            [](const Feature& a, const Feature& b) { return a.index < b.index; });
  std::size_t out = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].index == v[out].index) {
      v[out].value += v[i].value;
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
}

void l2_normalize(SparseVec& v) {
  double norm_sq = 0.0;
  for (const auto& f : v) norm_sq += static_cast<double>(f.value) * f.value;
  if (norm_sq <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& f : v) f.value *= inv;
}

double dot(const SparseVec& v, const std::vector<double>& w) {
  double s = 0.0;
  for (const auto& f : v) {
    if (f.index < w.size()) s += static_cast<double>(f.value) * w[f.index];
  }
  return s;
}

void axpy(double alpha, const SparseVec& v, std::vector<double>& y) {
  for (const auto& f : v) {
    if (f.index < y.size()) y[f.index] += alpha * static_cast<double>(f.value);
  }
}

}  // namespace adaparse::ml
