// Small multi-layer perceptron over sparse inputs — the nonlinear option
// for the accuracy-prediction head (used in ablation benchmarks against the
// linear head).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/linear.hpp"
#include "ml/sparse.hpp"

namespace adaparse::ml {

/// One hidden ReLU layer: y = W2 relu(W1 x + b1) + b2.
class Mlp {
 public:
  Mlp(std::uint32_t input_dim, std::size_t hidden, std::size_t outputs,
      std::uint64_t seed = 3);

  void fit(std::span<const SparseVec> inputs,
           std::span<const std::vector<double>> targets,
           const TrainOptions& options = {});

  std::vector<double> predict(const SparseVec& input) const;

  std::size_t hidden_size() const { return b1_.size(); }
  std::size_t outputs() const { return b2_.size(); }

 private:
  /// Forward pass into caller-provided buffers; returns output activations.
  void forward(const SparseVec& input, std::vector<double>& hidden,
               std::vector<double>& out) const;

  std::uint32_t input_dim_;
  std::vector<std::vector<double>> w1_;  ///< [hidden][input]
  std::vector<double> b1_;
  std::vector<std::vector<double>> w2_;  ///< [output][hidden]
  std::vector<double> b2_;
};

}  // namespace adaparse::ml
