// JSON (de)serialization of trained models.
//
// A production deployment trains the routing models once (paper: the
// preferences are "collected only once and used offline ... no further
// human input is required when the model is deployed") and then ships the
// weights to every worker. This module persists the regression head and
// the logistic CLS II model as JSON documents so campaigns can reload them
// without retraining. Weights are stored sparsely (non-zero entries only) —
// hashed-feature models are mostly zeros.
#pragma once

#include <string>

#include "ml/linear.hpp"
#include "util/json.hpp"

namespace adaparse::ml {

/// Serializes a multi-output regressor (weights + biases) to JSON.
util::Json to_json(const MultiOutputRegressor& model);

/// Restores a regressor; throws std::runtime_error on malformed input or
/// dimension mismatch markers.
MultiOutputRegressor regressor_from_json(const util::Json& j);

/// Round-trip helpers over strings (what a file or object store would hold).
std::string save_regressor(const MultiOutputRegressor& model);
MultiOutputRegressor load_regressor(const std::string& text);

}  // namespace adaparse::ml
