#include "ml/dpo.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace adaparse::ml {

DpoAdapter::DpoAdapter(const MultiOutputRegressor& base,
                       const DpoOptions& options)
    : base_(base),
      options_(options),
      a_(options.rank, std::vector<double>(base.input_dim(), 0.0)),
      u_(base.outputs(), std::vector<double>(options.rank, 0.0)),
      c_(base.outputs(), 0.0) {
  // A initialized with small random values (learned); u starts at zero so
  // the adapter is an exact no-op before training — the DPO model starts at
  // the reference policy, as the objective requires.
  util::Rng rng(options.seed);
  const double scale = 1.0 / std::sqrt(64.0);
  for (auto& row : a_) {
    for (auto& w : row) w = rng.normal(0.0, scale);
  }
}

std::vector<double> DpoAdapter::project(const SparseVec& x) const {
  std::vector<double> h(a_.size(), 0.0);
  for (std::size_t r = 0; r < a_.size(); ++r) {
    h[r] = dot(x, a_[r]);
  }
  return h;
}

std::vector<double> DpoAdapter::delta(const SparseVec& x) const {
  const auto h = project(x);
  std::vector<double> out(u_.size(), 0.0);
  for (std::size_t k = 0; k < u_.size(); ++k) {
    double z = c_[k];
    for (std::size_t r = 0; r < h.size(); ++r) z += u_[k][r] * h[r];
    // Bounded influence: the preference signal re-ranks near-ties but
    // cannot override a confident accuracy prediction.
    out[k] = options_.max_delta * std::tanh(z / options_.max_delta);
  }
  return out;
}

std::vector<double> DpoAdapter::predict(const SparseVec& x) const {
  auto out = base_.predict(x);
  const auto d = delta(x);
  for (std::size_t k = 0; k < out.size(); ++k) out[k] += d[k];
  return out;
}

void DpoAdapter::fit(std::span<const PreferencePair> pairs) {
  if (pairs.empty()) return;
  util::Rng rng(options_.seed ^ 0xD0D0ULL);
  std::vector<std::size_t> idx(pairs.size());
  std::iota(idx.begin(), idx.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const double lr = options_.learning_rate /
                      std::sqrt(1.0 + static_cast<double>(epoch));
    rng.shuffle(idx);
    double loss_sum = 0.0;
    for (std::size_t i : idx) {
      const auto& pair = pairs[i];
      const auto h = project(pair.x);
      // Because the base is frozen and equals the reference model,
      // s_k - s_k^ref reduces to the adapter delta.
      auto delta_for = [&](std::size_t k) {
        double z = c_[k];
        for (std::size_t r = 0; r < h.size(); ++r) z += u_[k][r] * h[r];
        return z;
      };
      const double z =
          options_.beta * (delta_for(pair.winner) - delta_for(pair.loser));
      loss_sum += -std::log(std::max(1e-12, sigmoid(z)));
      const double g = -sigmoid(-z) * options_.beta;  // dLoss/d(margin term)

      // u and c updates.
      for (std::size_t r = 0; r < h.size(); ++r) {
        u_[pair.winner][r] -=
            lr * (g * h[r] + options_.l2 * u_[pair.winner][r]);
        u_[pair.loser][r] -=
            lr * (-g * h[r] + options_.l2 * u_[pair.loser][r]);
      }
      c_[pair.winner] -= lr * g;
      c_[pair.loser] -= lr * -g;

      // A update: dz/dA[r][j] = beta * (u_w[r] - u_l[r]) * x[j].
      for (std::size_t r = 0; r < a_.size(); ++r) {
        const double coeff = g * (u_[pair.winner][r] - u_[pair.loser][r]);
        if (coeff == 0.0) continue;
        for (const auto& f : pair.x) {
          a_[r][f.index] -= lr * coeff * static_cast<double>(f.value);
        }
      }
    }
    last_loss_ = loss_sum / static_cast<double>(pairs.size());
  }
}

}  // namespace adaparse::ml
