#include "ml/encoder.hpp"

#include "text/features.hpp"

namespace adaparse::ml {
namespace {

/// Appends the 12 dense malformed-text detector features into reserved
/// trailing slots of the index space.
void append_detectors(std::string_view body, std::uint32_t dim,
                      SparseVec& out) {
  const auto f = text::compute_features(body).to_array();
  // Normalize roughly to O(1) scales so they mix well with hashed values.
  const double scales[text::TextFeatures::kDim] = {
      1e-4, 1e-3, 0.2, 1.0, 1.0, 1.0, 10.0, 5.0, 0.2, 1.0, 0.2, 0.02};
  for (std::size_t i = 0; i < f.size(); ++i) {
    out.push_back({dim - static_cast<std::uint32_t>(f.size()) +
                       static_cast<std::uint32_t>(i),
                   static_cast<float>(f[i] * scales[i])});
  }
}

void append_metadata(const doc::Metadata& meta, std::uint32_t dim,
                     std::uint64_t salt, SparseVec& out) {
  out.push_back(hash_categorical("publisher", doc::publisher_name(meta.publisher),
                                 dim, salt));
  out.push_back(
      hash_categorical("domain", doc::domain_name(meta.domain), dim, salt));
  out.push_back(
      hash_categorical("format", doc::format_name(meta.format), dim, salt));
  out.push_back(hash_categorical("producer",
                                 doc::producer_name(meta.producer), dim, salt));
  out.push_back(hash_categorical("year", std::to_string(meta.year), dim, salt));
  out.push_back(hash_categorical(
      "subcat", std::to_string(meta.subcategory), dim, salt));
  // Page count, bucketed.
  out.push_back(hash_categorical(
      "pages", std::to_string(meta.num_pages / 4), dim, salt));
}

class HashingEncoder final : public TextEncoder {
 public:
  HashingEncoder(EncoderArch arch, HashOptions options, bool use_detectors,
                 bool use_metadata, bool use_body, bool use_title,
                 double cost_seconds)
      : arch_(arch),
        options_(options),
        use_detectors_(use_detectors),
        use_metadata_(use_metadata),
        use_body_(use_body),
        use_title_(use_title),
        cost_seconds_(cost_seconds) {}

  std::string_view name() const override { return encoder_name(arch_); }
  std::uint32_t dim() const override { return options_.dim; }
  double inference_cost_seconds() const override { return cost_seconds_; }

  SparseVec encode(const EncoderInput& input) const override {
    SparseVec v;
    if (use_body_ && !input.text.empty()) {
      v = hash_text(input.text, options_);
    }
    if (use_title_ && !input.title.empty()) {
      HashOptions title_options = options_;
      title_options.salt ^= 0x717133ULL;
      title_options.char_ngrams = 0;
      auto tv = hash_text(input.title, title_options);
      v.insert(v.end(), tv.begin(), tv.end());
    }
    if (use_metadata_ && input.metadata != nullptr) {
      append_metadata(*input.metadata, options_.dim, options_.salt, v);
    }
    if (use_detectors_ && !input.text.empty()) {
      append_detectors(input.text, options_.dim, v);
    }
    compact(v);
    l2_normalize(v);
    return v;
  }

 private:
  EncoderArch arch_;
  HashOptions options_;
  bool use_detectors_;
  bool use_metadata_;
  bool use_body_;
  bool use_title_;
  double cost_seconds_;
};

}  // namespace

const char* encoder_name(EncoderArch arch) {
  switch (arch) {
    case EncoderArch::kSciBert: return "SciBERT";
    case EncoderArch::kBert: return "BERT";
    case EncoderArch::kMiniLm: return "MiniLM-L6";
    case EncoderArch::kSpecter: return "SPECTER";
    case EncoderArch::kFastText: return "fastText";
  }
  return "?";
}

EncoderPtr make_encoder(EncoderArch arch) {
  HashOptions options;
  switch (arch) {
    case EncoderArch::kSciBert:
      // Science-aware: full n-gram stack + artifact detectors + metadata.
      options.dim = 1 << 14;
      options.salt = 0x5C1B;
      return std::make_shared<HashingEncoder>(
          arch, options, /*detectors=*/true, /*metadata=*/true,
          /*body=*/true, /*title=*/true, /*cost=*/0.35);
    case EncoderArch::kBert:
      // Generic web-scale: same capacity, no science-specific detectors.
      options.dim = 1 << 14;
      options.char_ngrams = 0;
      options.salt = 0xBE27;
      return std::make_shared<HashingEncoder>(
          arch, options, /*detectors=*/false, /*metadata=*/true,
          /*body=*/true, /*title=*/true, /*cost=*/0.35);
    case EncoderArch::kMiniLm:
      // Distilled: small index space.
      options.dim = 1 << 9;
      options.char_ngrams = 0;
      options.word_ngrams = 1;
      options.salt = 0x313A;
      return std::make_shared<HashingEncoder>(
          arch, options, /*detectors=*/false, /*metadata=*/true,
          /*body=*/false, /*title=*/true, /*cost=*/0.08);
    case EncoderArch::kSpecter:
      // Citation-informed document embeddings: title + metadata only.
      options.dim = 1 << 12;
      options.char_ngrams = 0;
      options.salt = 0x59EC;
      return std::make_shared<HashingEncoder>(
          arch, options, /*detectors=*/false, /*metadata=*/true,
          /*body=*/false, /*title=*/true, /*cost=*/0.20);
    case EncoderArch::kFastText:
      // Pre-defined word/char-gram embeddings (AdaParse (FT)): cheap,
      // detector-aware, smaller space.
      options.dim = 1 << 12;
      options.word_ngrams = 1;
      options.salt = 0xFA57;
      return std::make_shared<HashingEncoder>(
          arch, options, /*detectors=*/true, /*metadata=*/true,
          /*body=*/true, /*title=*/false, /*cost=*/0.02);
  }
  return nullptr;
}

}  // namespace adaparse::ml
