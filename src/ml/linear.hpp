// Linear models over sparse features: multi-output ridge regression (the
// accuracy-prediction head of Appendix A), binary logistic regression
// (CLS II improvement classifier), and a linear SVC (the metadata baselines
// of Table 4), all trained with averaged SGD.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/sparse.hpp"
#include "util/rng.hpp"

namespace adaparse::ml {

/// Shared SGD hyperparameters.
struct TrainOptions {
  int epochs = 12;
  double learning_rate = 0.25;
  double l2 = 1e-5;            ///< weight decay
  std::uint64_t seed = 17;     ///< shuffling seed
  bool verbose = false;
};

/// y = W x + b with m outputs; squared loss; this is the supervised
/// fine-tuning step (step 1) of the paper's three-step training recipe.
class MultiOutputRegressor {
 public:
  MultiOutputRegressor(std::uint32_t input_dim, std::size_t outputs);

  /// Fits on (x_i, y_i) pairs; y_i must have `outputs()` entries each.
  void fit(std::span<const SparseVec> inputs,
           std::span<const std::vector<double>> targets,
           const TrainOptions& options = {});

  /// Predicts all outputs for one input.
  std::vector<double> predict(const SparseVec& input) const;
  /// Predicts a single output (no allocation).
  double predict_one(const SparseVec& input, std::size_t output) const;

  std::uint32_t input_dim() const { return input_dim_; }
  std::size_t outputs() const { return biases_.size(); }

  /// Direct weight access for the DPO trainer (reference-model snapshot and
  /// LoRA-style updates).
  std::vector<double>& weights(std::size_t output) { return weights_[output]; }
  const std::vector<double>& weights(std::size_t output) const {
    return weights_[output];
  }
  double& bias(std::size_t output) { return biases_[output]; }
  double bias(std::size_t output) const { return biases_[output]; }

 private:
  std::uint32_t input_dim_;
  std::vector<std::vector<double>> weights_;  ///< [output][feature]
  std::vector<double> biases_;
};

/// Binary logistic regression: p(y=1|x) = sigmoid(w.x + b).
class LogisticRegression {
 public:
  explicit LogisticRegression(std::uint32_t input_dim);

  void fit(std::span<const SparseVec> inputs, std::span<const int> labels,
           const TrainOptions& options = {});

  double predict_proba(const SparseVec& input) const;
  int predict(const SparseVec& input, double threshold = 0.5) const;

 private:
  std::uint32_t input_dim_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Linear SVC (hinge loss, one-vs-rest for multiclass) — the "SVC" rows of
/// Table 4's metadata-driven baselines.
class LinearSvc {
 public:
  LinearSvc(std::uint32_t input_dim, std::size_t num_classes);

  void fit(std::span<const SparseVec> inputs, std::span<const int> labels,
           const TrainOptions& options = {});

  /// Per-class decision scores.
  std::vector<double> decision(const SparseVec& input) const;
  int predict(const SparseVec& input) const;

  std::size_t num_classes() const { return w_.size(); }

 private:
  std::uint32_t input_dim_;
  std::vector<std::vector<double>> w_;
  std::vector<double> b_;
};

double sigmoid(double z);

}  // namespace adaparse::ml
