// Text encoders standing in for the paper's pretrained language models.
//
// Table 4 compares parser-selection models built on SciBERT, BERT, MiniLM,
// and SPECTER. We reproduce the *capacity and inductive-bias ordering* of
// that comparison with hashing encoders:
//   - SciBertSim: large index space, word+char n-grams, plus the dense
//     malformed-text detectors (science-aware pretraining ~ sensitivity to
//     LaTeX/SMILES artifacts);
//   - BertSim:    same index space, word n-grams only (web-scale generic);
//   - MiniLmSim:  small index space (distilled capacity);
//   - SpecterSim: title+metadata oriented (citation-informed doc-level
//     embeddings; it never reads the body text).
// All are deterministic and "pretrained" in the sense that their feature
// map is fixed; only heads on top of them are trained.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "doc/document.hpp"
#include "ml/feature_hash.hpp"
#include "ml/sparse.hpp"

namespace adaparse::ml {

/// Input to an encoder: body text (usually the PyMuPDF first-page output),
/// optional title, optional metadata.
struct EncoderInput {
  std::string_view text;
  std::string_view title;
  const doc::Metadata* metadata = nullptr;
};

/// Deterministic featurizer with a fixed output index space.
class TextEncoder {
 public:
  virtual ~TextEncoder() = default;
  virtual std::string_view name() const = 0;
  virtual std::uint32_t dim() const = 0;
  virtual SparseVec encode(const EncoderInput& input) const = 0;

  /// Simulated inference cost in CPU-seconds per input (drives the
  /// AdaParse(LLM) vs AdaParse(FT) throughput gap).
  virtual double inference_cost_seconds() const = 0;
};

using EncoderPtr = std::shared_ptr<const TextEncoder>;

/// Which pretrained model an encoder mimics.
enum class EncoderArch : std::uint8_t {
  kSciBert,
  kBert,
  kMiniLm,
  kSpecter,
  kFastText,
};
const char* encoder_name(EncoderArch arch);

/// Factory.
EncoderPtr make_encoder(EncoderArch arch);

}  // namespace adaparse::ml
