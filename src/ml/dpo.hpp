// Direct preference optimization of the parser-selection scores
// (paper §4.2 and Appendix A).
//
// After supervised fine-tuning, the m-output accuracy head is post-trained
// on human preference pairs: for a document whose extracted text is x, the
// user preferred parser w's output over parser l's. DPO maximizes
//   log sigmoid( beta * [ (s_w(x) - s_w^ref(x)) - (s_l(x) - s_l^ref(x)) ] )
// where s^ref are the frozen pre-DPO scores. Instead of updating the full
// weight matrix, a LoRA-style low-rank delta (B A x + c) is learned per
// output — mirroring the paper's parameter-efficient LoRA fine-tuning.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/linear.hpp"
#include "ml/sparse.hpp"

namespace adaparse::ml {

/// One preference observation: for input features x, output `winner` was
/// preferred to `loser` by a human annotator.
struct PreferencePair {
  SparseVec x;
  std::size_t winner = 0;
  std::size_t loser = 0;
};

struct DpoOptions {
  int epochs = 8;
  double learning_rate = 0.008;
  double beta = 1.0;        ///< inverse-temperature of the DPO objective
  std::uint32_t rank = 4;   ///< LoRA rank
  /// Weight decay keeps the adapted policy close to the reference —
  /// the role the KL anchor plays in full DPO.
  double l2 = 2e-2;
  /// Hard bound on the per-output score shift: delta is squashed through
  /// max_delta * tanh(raw / max_delta). Predicted accuracies live on a
  /// [0,1] BLEU scale, so 0.05 means DPO can only flip selections the
  /// supervised model considered closer than ~12 BLEU points — alignment
  /// re-ranks near-ties toward human preference instead of overriding the
  /// accuracy model (its role in the paper).
  double max_delta = 0.12;
  std::uint64_t seed = 23;
};

/// Low-rank adapter on top of a frozen MultiOutputRegressor: the adapted
/// score is s_k(x) = base_k(x) + u_k . (A x) + c_k, with a shared
/// rank-`r` projection A and per-output mixing vectors u_k.
class DpoAdapter {
 public:
  /// `base` must outlive the adapter and is treated as frozen (it is also
  /// the DPO reference model).
  DpoAdapter(const MultiOutputRegressor& base, const DpoOptions& options);

  /// Runs DPO over the preference pairs.
  void fit(std::span<const PreferencePair> pairs);

  /// Adapted scores (base + delta).
  std::vector<double> predict(const SparseVec& x) const;
  /// Delta only (useful in tests).
  std::vector<double> delta(const SparseVec& x) const;

  /// Mean training loss of the last epoch (monotonically decreasing loss is
  /// asserted by tests).
  double last_loss() const { return last_loss_; }

 private:
  /// Projects x through A into rank-space.
  std::vector<double> project(const SparseVec& x) const;

  const MultiOutputRegressor& base_;
  DpoOptions options_;
  std::vector<std::vector<double>> a_;  ///< [rank][input_dim], frozen random
  std::vector<std::vector<double>> u_;  ///< [output][rank], learned
  std::vector<double> c_;               ///< per-output bias, learned
  double last_loss_ = 0.0;
};

}  // namespace adaparse::ml
