#include "ml/serialize.hpp"

#include <stdexcept>

namespace adaparse::ml {
namespace {

constexpr const char* kFormat = "adaparse.regressor.v1";

}  // namespace

util::Json to_json(const MultiOutputRegressor& model) {
  util::JsonObject root;
  root["format"] = kFormat;
  root["input_dim"] = static_cast<std::size_t>(model.input_dim());
  root["outputs"] = model.outputs();
  util::JsonArray heads;
  for (std::size_t k = 0; k < model.outputs(); ++k) {
    util::JsonObject head;
    head["bias"] = model.bias(k);
    // Sparse weight storage: [index, value] pairs for non-zeros.
    util::JsonArray weights;
    const auto& w = model.weights(k);
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0) {
        weights.push_back(util::Json(util::JsonArray{
            util::Json(static_cast<std::size_t>(i)), util::Json(w[i])}));
      }
    }
    head["weights"] = std::move(weights);
    heads.push_back(util::Json(std::move(head)));
  }
  root["heads"] = std::move(heads);
  return util::Json(std::move(root));
}

MultiOutputRegressor regressor_from_json(const util::Json& j) {
  if (!j.contains("format") || j.at("format").as_string() != kFormat) {
    throw std::runtime_error("regressor_from_json: unknown format");
  }
  const auto input_dim =
      static_cast<std::uint32_t>(j.at("input_dim").as_number());
  const auto outputs = static_cast<std::size_t>(j.at("outputs").as_number());
  const auto& heads = j.at("heads").as_array();
  if (heads.size() != outputs) {
    throw std::runtime_error("regressor_from_json: head count mismatch");
  }
  MultiOutputRegressor model(input_dim, outputs);
  for (std::size_t k = 0; k < outputs; ++k) {
    const auto& head = heads[k];
    model.bias(k) = head.at("bias").as_number();
    auto& w = model.weights(k);
    for (const auto& entry : head.at("weights").as_array()) {
      const auto& pair = entry.as_array();
      if (pair.size() != 2) {
        throw std::runtime_error("regressor_from_json: malformed weight");
      }
      const auto index = static_cast<std::size_t>(pair[0].as_number());
      if (index >= w.size()) {
        throw std::runtime_error("regressor_from_json: index out of range");
      }
      w[index] = pair[1].as_number();
    }
  }
  return model;
}

std::string save_regressor(const MultiOutputRegressor& model) {
  return to_json(model).dump();
}

MultiOutputRegressor load_regressor(const std::string& text) {
  return regressor_from_json(util::Json::parse(text));
}

}  // namespace adaparse::ml
