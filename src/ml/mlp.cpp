#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace adaparse::ml {

Mlp::Mlp(std::uint32_t input_dim, std::size_t hidden, std::size_t outputs,
         std::uint64_t seed)
    : input_dim_(input_dim),
      w1_(hidden, std::vector<double>(input_dim, 0.0)),
      b1_(hidden, 0.0),
      w2_(outputs, std::vector<double>(hidden, 0.0)),
      b2_(outputs, 0.0) {
  util::Rng rng(seed);
  // He-style initialization scaled for unit-norm sparse inputs.
  const double s1 = std::sqrt(2.0 / 64.0);  // effective fan-in of sparse x
  for (auto& row : w1_) {
    for (auto& w : row) w = rng.normal(0.0, s1);
  }
  const double s2 = std::sqrt(2.0 / static_cast<double>(hidden));
  for (auto& row : w2_) {
    for (auto& w : row) w = rng.normal(0.0, s2);
  }
}

void Mlp::forward(const SparseVec& input, std::vector<double>& hidden,
                  std::vector<double>& out) const {
  hidden.assign(b1_.size(), 0.0);
  for (std::size_t h = 0; h < b1_.size(); ++h) {
    hidden[h] = std::max(0.0, dot(input, w1_[h]) + b1_[h]);
  }
  out.assign(b2_.size(), 0.0);
  for (std::size_t k = 0; k < b2_.size(); ++k) {
    double z = b2_[k];
    for (std::size_t h = 0; h < hidden.size(); ++h) {
      z += w2_[k][h] * hidden[h];
    }
    out[k] = z;
  }
}

void Mlp::fit(std::span<const SparseVec> inputs,
              std::span<const std::vector<double>> targets,
              const TrainOptions& options) {
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("mlp fit: size mismatch");
  }
  util::Rng rng(options.seed);
  std::vector<std::size_t> idx(inputs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<double> hidden, out, delta_out, delta_hidden;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr =
        options.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    rng.shuffle(idx);
    for (std::size_t i : idx) {
      const SparseVec& x = inputs[i];
      forward(x, hidden, out);
      delta_out.assign(out.size(), 0.0);
      for (std::size_t k = 0; k < out.size(); ++k) {
        delta_out[k] = out[k] - targets[i][k];
      }
      delta_hidden.assign(hidden.size(), 0.0);
      for (std::size_t k = 0; k < out.size(); ++k) {
        for (std::size_t h = 0; h < hidden.size(); ++h) {
          if (hidden[h] > 0.0) {
            delta_hidden[h] += delta_out[k] * w2_[k][h];
          }
          w2_[k][h] -= lr * (delta_out[k] * hidden[h] + options.l2 * w2_[k][h]);
        }
        b2_[k] -= lr * delta_out[k];
      }
      for (std::size_t h = 0; h < hidden.size(); ++h) {
        if (delta_hidden[h] == 0.0) continue;
        for (const auto& f : x) {
          w1_[h][f.index] -= lr * delta_hidden[h] * static_cast<double>(f.value);
        }
        b1_[h] -= lr * delta_hidden[h];
      }
    }
  }
}

std::vector<double> Mlp::predict(const SparseVec& input) const {
  std::vector<double> hidden, out;
  forward(input, hidden, out);
  return out;
}

}  // namespace adaparse::ml
