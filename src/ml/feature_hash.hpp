// Feature hashing of text into fixed-dimension sparse vectors.
//
// The "hashing trick": word n-grams and character n-grams are hashed into a
// fixed index space, giving fastText-style representations without a stored
// vocabulary (Xu & Du, 2019 — the embeddings behind AdaParse (FT)). Values
// are sub-linear term frequencies, L2-normalized.
#pragma once

#include <cstdint>
#include <string_view>

#include "ml/sparse.hpp"

namespace adaparse::ml {

struct HashOptions {
  std::uint32_t dim = 1 << 13;   ///< index space size (power of two)
  int word_ngrams = 2;           ///< max word n-gram order
  int char_ngrams = 4;           ///< max char n-gram order (0 = off)
  int char_ngram_min = 3;        ///< min char n-gram order
  std::uint64_t salt = 0;        ///< decorrelates different encoders
  std::size_t max_chars = 4000;  ///< truncate long inputs (first page is
                                 ///< what the selector sees anyway)
};

/// Hashes `text` into a sparse vector per `options`. Deterministic.
SparseVec hash_text(std::string_view text, const HashOptions& options);

/// Hashes one categorical feature (name=value) into the index space; used
/// for metadata features alongside text.
Feature hash_categorical(std::string_view name, std::string_view value,
                         std::uint32_t dim, std::uint64_t salt);

}  // namespace adaparse::ml
