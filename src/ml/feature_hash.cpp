#include "ml/feature_hash.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "simd/classify.hpp"
#include "simd/dispatch.hpp"
#include "text/char_class.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse::ml {
namespace {

inline std::uint32_t bucket(std::uint64_t h, std::uint32_t dim) {
  // dim is a power of two; fold the high bits in for good mixing anyway.
  return static_cast<std::uint32_t>((h ^ (h >> 32)) & (dim - 1));
}

/// Reusable per-thread scratch for `hash_text`. The accumulator is a dense
/// float array indexed by bucket (the index space is at most `options.dim`
/// entries, a few tens of KB): adds are branch-free, and the final emission
/// scans the array in index order — already the canonical sorted order —
/// zeroing entries as it goes, so the array is all-zero again for the next
/// call. After warm-up a call allocates nothing but the returned vector.
struct HashScratch {
  std::vector<float> acc;  ///< bucket -> accumulated weight; all-zero at rest
  std::vector<std::uint64_t> token_hashes;
};

}  // namespace

SparseVec hash_text(std::string_view text, const HashOptions& options) {
  if (text.size() > options.max_chars) {
    text = text.substr(0, options.max_chars);
  }
  const auto& tables = text::charclass::tables();
  thread_local HashScratch scratch;
  if (scratch.acc.size() < options.dim) scratch.acc.resize(options.dim, 0.0F);
  float* const acc = scratch.acc.data();

  // Word n-grams over lowercased tokens. Lowercasing never changes token
  // boundaries (tolower maps letters to letters in the C locale), so we
  // tokenize the raw text and fold the lowered bytes into one FNV-1a hash
  // per token, then reuse those hashes across every n-gram order. On the
  // SIMD tiers the whole input is lowered once into leased scratch (the
  // exhaustive lower_is_ascii check proves the vector lowering matches the
  // table) and the per-token FNV streams read that buffer at the token's
  // offset — the table load per byte disappears from the inner loop.
  scratch.token_hashes.clear();
  const simd::ScratchLease lowered_lease =
      (simd::use_simd(text.size()) &&
       text::charclass::classifiers().lower_is_ascii)
          ? simd::acquire_scratch((text.size() + 7) / 8)
          : simd::ScratchLease{};
  const char* lowered = nullptr;
  if (lowered_lease) {
    simd::to_lower_buf(text.data(), text.size(), lowered_lease.bytes());
    lowered = lowered_lease.bytes();
  }
  text::for_each_token(text, [&](std::string_view token) {
    std::uint64_t h = util::kFnvOffsetBasis;
    if (lowered != nullptr) {
      const char* p = lowered + (token.data() - text.data());
      for (std::size_t k = 0; k < token.size(); ++k) {
        h = util::fnv1a_step(h, static_cast<unsigned char>(p[k]));
      }
    } else {
      for (unsigned char c : token) {
        h = util::fnv1a_step(h, static_cast<unsigned char>(tables.lower[c]));
      }
    }
    scratch.token_hashes.push_back(h);
  });
  const auto& token_hashes = scratch.token_hashes;
  for (int n = 1; n <= options.word_ngrams; ++n) {
    const auto order = static_cast<std::size_t>(n);
    if (token_hashes.size() < order) break;
    const std::uint64_t h0 = util::mix64(options.salt, 0x517CC1B7ULL + order);
    for (std::size_t i = 0; i + order <= token_hashes.size(); ++i) {
      std::uint64_t h = h0;
      for (std::size_t k = 0; k < order; ++k) {
        h = util::mix64(h, token_hashes[i + k]);
      }
      acc[bucket(h, options.dim)] += 1.0F;
    }
  }

  // Character n-grams over the raw (un-lowercased) text: capitalization and
  // punctuation artifacts are exactly what the malformed-pattern detection
  // needs to see. For each start position the FNV hash of the shortest
  // order is extended byte-by-byte into the longer orders, so every (start,
  // order) pair costs one multiply instead of a fresh substring hash.
  if (options.char_ngrams > 0 && options.char_ngram_min >= 0) {
    const auto lo = static_cast<std::size_t>(options.char_ngram_min);
    const auto hi = static_cast<std::size_t>(options.char_ngrams);
    const std::uint64_t char_salt = options.salt ^ 0xC4A3ULL;
    if (lo == 0) {
      // Degenerate order-0 grams (empty substrings), kept for exactness.
      const std::uint64_t h =
          util::mix64(char_salt, util::mix64(0, util::kFnvOffsetBasis));
      acc[bucket(h, options.dim)] +=
          0.5F * static_cast<float>(text.size() + 1);
    }
    for (std::size_t i = 0; i < text.size(); ++i) {
      std::uint64_t h = util::kFnvOffsetBasis;
      const std::size_t max_len = std::min(text.size() - i, hi);
      for (std::size_t len = 1; len <= max_len; ++len) {
        h = util::fnv1a_step(h, static_cast<unsigned char>(text[i + len - 1]));
        if (len >= lo) {
          acc[bucket(util::mix64(char_salt, util::mix64(len, h)), options.dim)] +=
              0.5F;  // chars weigh less than words
        }
      }
    }
  }

  // Emit in index order — the canonical order `compact()` produces — so
  // downstream L2 normalization sums in exactly the same sequence. Zeroing
  // emitted entries restores the all-zero rest state.
  SparseVec v;
  for (std::uint32_t index = 0; index < options.dim; ++index) {
    const float count = acc[index];
    if (count != 0.0F) {
      v.push_back({index, std::log1p(count)});
      acc[index] = 0.0F;
    }
  }
  l2_normalize(v);
  return v;
}

Feature hash_categorical(std::string_view name, std::string_view value,
                         std::uint32_t dim, std::uint64_t salt) {
  const std::uint64_t h =
      util::mix64(salt ^ 0xFEA7ULL,
                  util::mix64(util::hash64(name), util::hash64(value)));
  return {bucket(h, dim), 1.0F};
}

}  // namespace adaparse::ml
