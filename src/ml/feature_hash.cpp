#include "ml/feature_hash.hpp"

#include <cmath>
#include <string>
#include <unordered_map>

#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse::ml {
namespace {

std::uint32_t bucket(std::uint64_t h, std::uint32_t dim) {
  // dim is a power of two; fold the high bits in for good mixing anyway.
  return static_cast<std::uint32_t>((h ^ (h >> 32)) & (dim - 1));
}

}  // namespace

SparseVec hash_text(std::string_view text, const HashOptions& options) {
  if (text.size() > options.max_chars) {
    text = text.substr(0, options.max_chars);
  }
  std::unordered_map<std::uint32_t, float> counts;

  // Word n-grams over lowercased tokens.
  const auto lowered = text::to_lower(text);
  const auto tokens = text::tokenize(lowered);
  for (int n = 1; n <= options.word_ngrams; ++n) {
    const auto order = static_cast<std::size_t>(n);
    if (tokens.size() < order) break;
    for (std::size_t i = 0; i + order <= tokens.size(); ++i) {
      std::uint64_t h = util::mix64(options.salt, 0x517CC1B7ULL + order);
      for (std::size_t k = 0; k < order; ++k) {
        h = util::mix64(h, util::hash64(tokens[i + k]));
      }
      counts[bucket(h, options.dim)] += 1.0F;
    }
  }

  // Character n-grams over the raw (un-lowercased) text: capitalization and
  // punctuation artifacts are exactly what the malformed-pattern detection
  // needs to see.
  if (options.char_ngrams > 0) {
    for (int n = options.char_ngram_min; n <= options.char_ngrams; ++n) {
      const auto order = static_cast<std::size_t>(n);
      if (text.size() < order) break;
      for (std::size_t i = 0; i + order <= text.size(); ++i) {
        const std::uint64_t h =
            util::mix64(options.salt ^ 0xC4A3ULL,
                        util::mix64(order, util::hash64(text.substr(i, order))));
        counts[bucket(h, options.dim)] += 0.5F;  // chars weigh less than words
      }
    }
  }

  SparseVec v;
  v.reserve(counts.size());
  for (const auto& [index, count] : counts) {
    v.push_back({index, static_cast<float>(std::log1p(count))});
  }
  compact(v);
  l2_normalize(v);
  return v;
}

Feature hash_categorical(std::string_view name, std::string_view value,
                         std::uint32_t dim, std::uint64_t salt) {
  const std::uint64_t h =
      util::mix64(salt ^ 0xFEA7ULL,
                  util::mix64(util::hash64(name), util::hash64(value)));
  return {bucket(h, dim), 1.0F};
}

}  // namespace adaparse::ml
