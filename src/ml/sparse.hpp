// Sparse feature vectors for the text models.
//
// All learned components in this repo consume L2-normalized sparse feature
// vectors (hashed n-gram bags plus dense side features); this header defines
// the representation and the few operations models need.
#pragma once

#include <cstdint>
#include <vector>

namespace adaparse::ml {

/// One feature: (index into [0, dim), value).
struct Feature {
  std::uint32_t index = 0;
  float value = 0.0F;
};

/// Sparse vector: unordered list of (index, value); indices may repeat
/// before `compact()` merges them.
using SparseVec = std::vector<Feature>;

/// Merges duplicate indices (sums values) and sorts by index.
void compact(SparseVec& v);

/// Scales the vector to unit L2 norm (no-op on zero vectors).
void l2_normalize(SparseVec& v);

/// Dot product with a dense weight slice w[0..dim).
double dot(const SparseVec& v, const std::vector<double>& w);

/// y += alpha * v (dense accumulate).
void axpy(double alpha, const SparseVec& v, std::vector<double>& y);

}  // namespace adaparse::ml
