// Minimal JSON value model + serializer + tolerant parser.
//
// AdaParse writes parsed text and routing decisions as JSONL records (one
// JSON object per line, mirroring the paper's output format) and reads them
// back in tests. We implement just enough of RFC 8259 for that: objects,
// arrays, strings (with escapes), numbers, booleans, null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace adaparse::util {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic, which keeps serialized output
/// stable across runs (important for golden-file tests).
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value with value semantics.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::bad_variant_access on mismatch.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object field lookup; throws std::out_of_range if absent.
  const Json& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Compact single-line serialization (JSONL-friendly).
  std::string dump() const;

  /// Parses a complete JSON document; throws std::runtime_error on malformed
  /// input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

/// Escapes a string for embedding in JSON output (quotes not included).
std::string json_escape(std::string_view s);

}  // namespace adaparse::util
