#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace adaparse::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) {
  return Rng(mix64(next_u64(), stream_id));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded draw (rejection keeps uniformity).
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be > 0");
  // Inverse-CDF over explicit weights would be O(n); use rejection with the
  // standard bounding envelope instead (fast for the n (~vocab size) we use).
  // For simplicity and robustness we use a cumulative draw with cached
  // normalizer for small n, and rejection for large n.
  if (n <= 4096) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += std::pow(r + 1.0, -s);
    double u = uniform() * total;
    for (std::size_t r = 0; r < n; ++r) {
      u -= std::pow(r + 1.0, -s);
      if (u <= 0.0) return r;
    }
    return n - 1;
  }
  // Rejection sampling (Devroye) for the general case.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b && x <= static_cast<double>(n)) {
      return static_cast<std::size_t>(x) - 1;
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("categorical: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights sum to zero");
  }
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = kFnvOffsetBasis;
  for (unsigned char c : s) {
    h = fnv1a_step(h, c);
  }
  return h;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  return splitmix64(state);
}

}  // namespace adaparse::util
