// Deterministic pseudo-random number generation for the whole repository.
//
// Every stochastic component (corpus generation, parser error channels,
// annotator noise, schedulers under test) draws from an explicitly seeded
// `Rng`.  Experiments are therefore reproducible bit-for-bit across runs,
// which the benchmark harness relies on when comparing against the paper's
// reported tables.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace adaparse::util {

/// xoshiro256** PRNG with splitmix64 seeding.
///
/// Chosen over std::mt19937 because its state is small (32 bytes), it is
/// trivially copyable (cheap to fork per-document streams), and its output
/// is identical across standard libraries — std::uniform_* distributions
/// are *not* portable, so we implement our own draws on top of raw 64-bit
/// output.
class Rng {
 public:
  /// Seeds the generator from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent stream, e.g. one per document: the child is
  /// seeded from this generator's next output mixed with `stream_id`.
  /// Forking does not perturb the parent beyond one draw.
  Rng fork(std::uint64_t stream_id);

  /// Raw 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second draw).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool chance(double p);

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate);

  /// Zipf-like draw over [0, n): rank r with weight 1/(r+1)^s.
  /// Used for vocabulary sampling in the corpus generator.
  std::size_t zipf(std::size_t n, double s = 1.1);

  /// Samples an index proportionally to `weights` (must be non-empty,
  /// non-negative, not all zero).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// FNV-1a parameters — the hash behind `hash64`. Exposed so hot paths can
/// fold characters into the same hash incrementally (per-token streaming,
/// n-gram extension) without materializing substrings.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// One FNV-1a step: folds byte `c` into running hash `h`.
inline std::uint64_t fnv1a_step(std::uint64_t h, unsigned char c) {
  return (h ^ c) * kFnvPrime;
}

/// Stable 64-bit FNV-1a hash of a string; used to derive per-entity seeds
/// (e.g. per-document RNG streams keyed by document id).
std::uint64_t hash64(std::string_view s);

/// Mixes two 64-bit values into one (splitmix64 finalizer over the sum).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace adaparse::util
