#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaparse::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Standard normal upper-tail probability via the complementary error
/// function; accurate enough for reporting p-values.
double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

CorrelationTest correlation_test(std::span<const double> x,
                                 std::span<const double> y) {
  CorrelationTest out;
  out.n = x.size();
  out.rho = pearson(x, y);
  if (out.n < 3 || std::abs(out.rho) >= 1.0) {
    out.t_stat = out.rho == 0.0 ? 0.0 : 1e308;
    out.p_value = out.rho == 0.0 ? 1.0 : 0.0;
    return out;
  }
  const auto dof = static_cast<double>(out.n - 2);
  out.t_stat = out.rho * std::sqrt(dof / (1.0 - out.rho * out.rho));
  out.p_value = 2.0 * normal_sf(std::abs(out.t_stat));
  return out;
}

double r_squared(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size()) {
    throw std::invalid_argument("r_squared: size mismatch");
  }
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

namespace {

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("spearman: size mismatch");
  }
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  // A single NaN would poison every marker height (and Inf the parabolic
  // step), so non-finite observations are dropped instead of ingested.
  if (!std::isfinite(x)) return;
  if (count_ < 5) {
    // Bootstrap: collect the first five observations sorted.
    heights_[count_] = x;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() + count_);
    for (std::size_t i = 0; i < 5; ++i) {
      positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Find the cell k containing x and clamp the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions, using
  // the piecewise-parabolic (P^2) height update, falling back to linear
  // interpolation when the parabolic step would break monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = d >= 1.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the sorted bootstrap buffer.
    std::vector<double> xs(heights_.begin(),
                           heights_.begin() + count_);
    return quantile(std::move(xs), q_);
  }
  return heights_[2];
}

}  // namespace adaparse::util
