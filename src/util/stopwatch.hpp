// Wall-clock stopwatch used by the execution engine and microbenchmarks.
#pragma once

#include <chrono>

namespace adaparse::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace adaparse::util
