#include "util/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace adaparse::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_fixed(double value, int precision) {
  std::array<char, 64> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

}  // namespace adaparse::util
