// Fixed-width ASCII table printer used by the benchmark harness to emit
// the paper's tables in a diff-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace adaparse::util {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Numeric convenience overloads format with a fixed precision so benchmark
/// output is stable across runs of the deterministic pipeline.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls append cells to it.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 1);
  Table& add(std::size_t value);
  Table& add(int value);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` decimal places.
std::string format_fixed(double value, int precision);

}  // namespace adaparse::util
