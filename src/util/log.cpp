#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace adaparse::util {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("ADAPARSE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{parse_env_level()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace adaparse::util
