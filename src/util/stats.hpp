// Small statistics toolkit used across evaluation code: summary statistics,
// Pearson correlation with a significance test, coefficient of determination,
// and an online accumulator for streaming summaries.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace adaparse::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Result of testing H0: rho = 0 for a Pearson correlation.
struct CorrelationTest {
  double rho = 0.0;       ///< sample correlation
  double t_stat = 0.0;    ///< t statistic with n-2 dof
  double p_value = 1.0;   ///< two-sided p-value (normal approximation)
  std::size_t n = 0;      ///< sample count
};

/// Tests whether the correlation between x and y is significantly nonzero.
/// Uses the t transform with a normal-tail approximation — adequate for the
/// large n used in the preference study reproduction.
CorrelationTest correlation_test(std::span<const double> x,
                                 std::span<const double> y);

/// Coefficient of determination R^2 = 1 - SS_res/SS_tot.
/// Returns 0 when the targets are constant.
double r_squared(std::span<const double> truth, std::span<const double> pred);

/// Quantile with linear interpolation; q in [0,1]. xs need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm, 1985):
/// tracks one quantile of an unbounded stream in O(1) memory with five
/// markers whose heights are adjusted by piecewise-parabolic interpolation.
/// The service latency metrics use one instance per tracked quantile
/// (p50/p95/p99) per tenant — no sample buffer, no sort at snapshot time.
/// For the first five observations the estimate is exact.
class P2Quantile {
 public:
  /// `q` in (0,1): the quantile to track (e.g. 0.95).
  explicit P2Quantile(double q);

  /// Ingests one observation. Non-finite values (NaN, ±Inf) are silently
  /// dropped — a single NaN would otherwise poison every marker height.
  void add(double x);
  /// Current estimate; 0 before any observation. With fewer than five
  /// observations the P² markers are not yet initialized, so this returns
  /// the *exact* order statistic of the sorted bootstrap buffer (linear
  /// interpolation between samples); from the fifth observation on it is
  /// the streaming P² estimate (the middle marker height).
  double value() const;
  std::size_t count() const { return count_; }
  double q() const { return q_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker heights (q[i])
  std::array<double, 5> positions_{};  ///< actual marker positions (n[i])
  std::array<double, 5> desired_{};    ///< desired marker positions (n'[i])
  std::array<double, 5> increments_{};  ///< dn'[i] per observation
};

/// Spearman rank correlation (ties get average ranks).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace adaparse::util
