#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adaparse::util {

const Json& Json::at(const std::string& key) const {
  return as_object().at(key);
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional fallback.
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  std::array<char, 32> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.12g", d);
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void dump_value(std::string& out, const Json& j);

void dump_array(std::string& out, const JsonArray& a) {
  out += '[';
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out += ',';
    dump_value(out, a[i]);
  }
  out += ']';
}

void dump_object(std::string& out, const JsonObject& o) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : o) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    dump_value(out, v);
  }
  out += '}';
}

void dump_value(std::string& out, const Json& j) {
  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_number()) {
    dump_number(out, j.as_number());
  } else if (j.is_string()) {
    out += '"';
    out += json_escape(j.as_string());
    out += '"';
  } else if (j.is_array()) {
    dump_array(out, j.as_array());
  } else {
    dump_object(out, j.as_object());
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid hex digit in \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are passed through
            // as two separate 3-byte sequences, fine for our data).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace adaparse::util
