// Campaign drivers: turn (parser, documents) into simulator task lists and
// run throughput sweeps over node counts — the machinery behind Figure 5.
#pragma once

#include <vector>

#include "doc/document.hpp"
#include "hpc/cluster.hpp"
#include "parsers/parser.hpp"

namespace adaparse::hpc {

/// Builds one TaskSpec per document for a single-parser campaign, using the
/// parser's cost model (documents are costed, not parsed — the sweep needs
/// only resource demands).
std::vector<TaskSpec> campaign_tasks(const parsers::Parser& parser,
                                     const std::vector<doc::Document>& docs);

/// Cluster configuration appropriate for the given parser's architecture:
/// GPU parsers need warm-started models; Marker additionally suffers a
/// centralized coordination stage.
ClusterConfig cluster_for_parser(parsers::ParserKind kind, int nodes);

/// One point of the Figure 5 sweep.
struct ScalePoint {
  int nodes = 0;
  double throughput = 0.0;  ///< PDF/s
};

/// Runs the node-count sweep for one parser over the document sample.
/// `node_counts` is typically {1,2,4,...,128}.
std::vector<ScalePoint> throughput_sweep(
    const parsers::Parser& parser, const std::vector<doc::Document>& docs,
    const std::vector<int>& node_counts);

/// Sweep for a pre-built task list (used for AdaParse, whose tasks mix CPU
/// extraction, classifier inference, and budgeted GPU parses).
std::vector<ScalePoint> throughput_sweep_tasks(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts);

/// Sweep with a measured fault-recovery overhead folded in: every task's
/// CPU/GPU demand is inflated by (1 + overhead_fraction), projecting a
/// campaign::CampaignRunner's observed `recovery_wall_seconds /
/// (wall_seconds - recovery_wall_seconds)` ratio onto the cluster — what
/// the paper's long multi-node runs would lose to retries and hedges at
/// scale. overhead_fraction < 0 is clamped to 0.
std::vector<ScalePoint> throughput_sweep_with_overhead(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts, double overhead_fraction);

/// Sweep that ingests *measured* per-fault recovery latencies instead of a
/// pre-computed ratio: `recovery_latency_seconds` is
/// CampaignStats::recovery_latency_seconds from a multi-process campaign
/// (one entry per worker death or kill), `productive_wall_seconds` the
/// campaign wall-clock net of recovery. The overhead fraction becomes
/// sum(latencies) / productive, then delegates to
/// throughput_sweep_with_overhead. A non-positive productive wall yields a
/// zero-overhead sweep.
std::vector<ScalePoint> throughput_sweep_measured(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts,
    const std::vector<double>& recovery_latency_seconds,
    double productive_wall_seconds);

}  // namespace adaparse::hpc
