// Cluster simulator: Polaris-like nodes executing a parsing campaign.
//
// Models the mechanisms the paper identifies as decisive at scale:
//   - per-node multiserver CPU (32 cores) and GPU (4 A100s) resources;
//   - a *shared* filesystem with finite bandwidth and per-operation
//     latency — the contention that makes PyMuPDF/pypdf plateau (Fig. 5);
//   - batched staging of inputs into node-local RAM (paper §6.1), which
//     turns many small reads into one large one;
//   - warm-started GPU models vs per-task reloads (paper §5.2);
//   - an optional centralized coordinator (Marker's architecture), which
//     caps global throughput regardless of node count.
//
// The simulator is a deterministic list scheduler over these FIFO
// resources: for independent tasks it produces the same makespans a full
// discrete-event simulation would.
#pragma once

#include <cstdint>
#include <vector>

namespace adaparse::hpc {

/// One unit of work (usually: parse one document).
struct TaskSpec {
  double cpu_seconds = 0.0;   ///< CPU-core time
  double gpu_seconds = 0.0;   ///< GPU time (0 = CPU-only task)
  double bytes_read = 0.0;    ///< staged input volume
  double fs_ops = 1.0;        ///< metadata/open operations on the shared FS
  bool needs_gpu_model = false;  ///< requires a loaded GPU model
};

struct ClusterConfig {
  int nodes = 1;
  int cpu_cores_per_node = 32;
  int gpus_per_node = 4;

  /// Shared-FS aggregate bandwidth (bytes/s). Default calibrated so a
  /// PyMuPDF-style campaign saturates around ~315 PDF/s, as in Figure 5.
  double fs_bandwidth = 650.0e6;
  /// Per-operation latency on the shared FS (metadata cost), seconds.
  double fs_op_latency = 0.012;

  /// Batched staging: group `batch_size` tasks per node into one shard read
  /// (one FS op, summed bytes). Off = every task reads individually.
  bool batch_staging = true;
  std::size_t batch_size = 256;

  /// Warm start: GPU model loaded once per GPU; off = reload per task.
  bool warm_start = true;
  double model_load_seconds = 15.0;

  /// Per-task dispatch overhead (workflow-engine cost), seconds of the
  /// assigned worker's time.
  double dispatch_overhead = 0.05;

  /// Centralized-coordinator service time per task (seconds); 0 disables.
  /// Models Marker's global coordination, which caps aggregate throughput
  /// at 1/central_service_seconds regardless of node count.
  double central_service_seconds = 0.0;
};

/// Busy interval of one GPU (for the utilization trace of Figure 4).
struct GpuInterval {
  int node = 0;
  int gpu = 0;
  double start = 0.0;
  double end = 0.0;
  bool is_model_load = false;
};

struct SimResult {
  double makespan = 0.0;         ///< seconds to finish every task
  double throughput = 0.0;       ///< tasks per second
  double cpu_busy_seconds = 0.0;
  double gpu_busy_seconds = 0.0;
  double fs_busy_seconds = 0.0;
  double model_load_seconds = 0.0;
  std::size_t tasks = 0;
  std::vector<GpuInterval> gpu_timeline;

  /// Mean utilization of all GPUs over the makespan in [0,1].
  double gpu_utilization() const;
};

/// Simulates the campaign; tasks are distributed round-robin across nodes
/// in order (the deterministic analogue of Parsl's dynamic dispatch under a
/// homogeneous stream).
SimResult simulate(const ClusterConfig& config,
                   const std::vector<TaskSpec>& tasks);

}  // namespace adaparse::hpc
