#include "hpc/trace.hpp"

#include <algorithm>
#include <map>

namespace adaparse::hpc {

UtilizationTrace build_trace(const SimResult& result, std::size_t buckets) {
  UtilizationTrace trace;
  if (result.makespan <= 0.0 || buckets == 0) return trace;
  trace.bucket_seconds = result.makespan / static_cast<double>(buckets);

  // Discover GPUs in the timeline (node-major order).
  std::map<std::pair<int, int>, std::size_t> gpu_row;
  for (const auto& iv : result.gpu_timeline) {
    gpu_row.emplace(std::make_pair(iv.node, iv.gpu), 0);
  }
  std::size_t row = 0;
  for (auto& [key, index] : gpu_row) {
    index = row++;
    trace.gpu_labels.push_back("node" + std::to_string(key.first) + "/gpu" +
                               std::to_string(key.second));
  }
  trace.gpu_busy_fraction.assign(gpu_row.size(),
                                 std::vector<double>(buckets, 0.0));

  for (const auto& iv : result.gpu_timeline) {
    const std::size_t r = gpu_row[{iv.node, iv.gpu}];
    // Distribute the interval across overlapping buckets.
    const auto first = static_cast<std::size_t>(
        std::min(static_cast<double>(buckets - 1),
                 iv.start / trace.bucket_seconds));
    const auto last = static_cast<std::size_t>(
        std::min(static_cast<double>(buckets - 1),
                 iv.end / trace.bucket_seconds));
    for (std::size_t b = first; b <= last; ++b) {
      const double bucket_start = static_cast<double>(b) * trace.bucket_seconds;
      const double bucket_end = bucket_start + trace.bucket_seconds;
      const double overlap = std::max(
          0.0, std::min(iv.end, bucket_end) - std::max(iv.start, bucket_start));
      trace.gpu_busy_fraction[r][b] += overlap / trace.bucket_seconds;
    }
  }
  for (auto& r2 : trace.gpu_busy_fraction) {
    for (auto& v : r2) v = std::min(1.0, v);
  }
  return trace;
}

std::string render_row(const std::vector<double>& row) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "#"};
  std::string out;
  out.reserve(row.size());
  for (double v : row) {
    const auto level = static_cast<std::size_t>(
        std::clamp(v, 0.0, 1.0) * 8.0);
    out += kLevels[level];
  }
  return out;
}

}  // namespace adaparse::hpc
