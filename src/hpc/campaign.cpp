#include "hpc/campaign.hpp"

#include <algorithm>

namespace adaparse::hpc {

std::vector<TaskSpec> campaign_tasks(const parsers::Parser& parser,
                                     const std::vector<doc::Document>& docs) {
  std::vector<TaskSpec> tasks;
  tasks.reserve(docs.size());
  const bool gpu = parser.resource() == parsers::Resource::kGpu;
  for (const auto& document : docs) {
    const auto cost = parser.estimate_cost(document);
    TaskSpec task;
    task.cpu_seconds = cost.cpu_seconds;
    task.gpu_seconds = cost.gpu_seconds;
    task.bytes_read = cost.bytes_read;
    // pypdf's object-by-object access pattern issues ~4x the FS metadata
    // operations of a MuPDF-style sequential read.
    task.fs_ops = parser.kind() == parsers::ParserKind::kPypdf ? 4.0 : 1.0;
    task.needs_gpu_model = gpu;
    tasks.push_back(task);
  }
  return tasks;
}

ClusterConfig cluster_for_parser(parsers::ParserKind kind, int nodes) {
  ClusterConfig config;
  config.nodes = nodes;
  switch (kind) {
    case parsers::ParserKind::kNougat:
      config.model_load_seconds = 15.0;
      break;
    case parsers::ParserKind::kMarker:
      config.model_load_seconds = 22.0;
      // Marker's centralized coordination: aggregate throughput capped near
      // 0.1 PDF/s however many nodes join (Figure 5).
      config.central_service_seconds = 9.0;
      break;
    case parsers::ParserKind::kTesseract:
      config.model_load_seconds = 1.5;
      break;
    case parsers::ParserKind::kGrobid:
      config.model_load_seconds = 6.0;
      break;
    default:
      break;
  }
  return config;
}

std::vector<ScalePoint> throughput_sweep(
    const parsers::Parser& parser, const std::vector<doc::Document>& docs,
    const std::vector<int>& node_counts) {
  const auto tasks = campaign_tasks(parser, docs);
  std::vector<ScalePoint> points;
  points.reserve(node_counts.size());
  for (int n : node_counts) {
    const auto config = cluster_for_parser(parser.kind(), n);
    const auto result = simulate(config, tasks);
    points.push_back({n, result.throughput});
  }
  return points;
}

std::vector<ScalePoint> throughput_sweep_tasks(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts) {
  std::vector<ScalePoint> points;
  points.reserve(node_counts.size());
  for (int n : node_counts) {
    ClusterConfig config = base_config;
    config.nodes = n;
    const auto result = simulate(config, tasks);
    points.push_back({n, result.throughput});
  }
  return points;
}

std::vector<ScalePoint> throughput_sweep_with_overhead(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts, double overhead_fraction) {
  const double scale = 1.0 + std::max(0.0, overhead_fraction);
  std::vector<TaskSpec> inflated = tasks;
  for (auto& task : inflated) {
    task.cpu_seconds *= scale;
    task.gpu_seconds *= scale;
  }
  return throughput_sweep_tasks(inflated, base_config, node_counts);
}

std::vector<ScalePoint> throughput_sweep_measured(
    const std::vector<TaskSpec>& tasks, const ClusterConfig& base_config,
    const std::vector<int>& node_counts,
    const std::vector<double>& recovery_latency_seconds,
    double productive_wall_seconds) {
  double lost = 0.0;
  for (const double latency : recovery_latency_seconds) {
    lost += std::max(0.0, latency);
  }
  const double overhead =
      productive_wall_seconds > 0.0 ? lost / productive_wall_seconds : 0.0;
  return throughput_sweep_with_overhead(tasks, base_config, node_counts,
                                        overhead);
}

}  // namespace adaparse::hpc
