// Utilization traces from the simulator's GPU timeline — the reproduction
// substrate for Figure 4 (per-GPU utilization as profiled with Nsight
// Systems on the real system).
#pragma once

#include <string>
#include <vector>

#include "hpc/cluster.hpp"

namespace adaparse::hpc {

/// Per-GPU utilization sampled in fixed time buckets.
struct UtilizationTrace {
  double bucket_seconds = 0.0;
  /// rows: one per GPU (node-major); cols: utilization in [0,1] per bucket.
  std::vector<std::vector<double>> gpu_busy_fraction;
  std::vector<std::string> gpu_labels;
};

/// Builds the trace from a simulation result with `buckets` time buckets
/// over [0, makespan].
UtilizationTrace build_trace(const SimResult& result, std::size_t buckets);

/// Renders one GPU row as an ASCII sparkline-style bar strip (for the
/// bench output), e.g. "██▆▁▃...".
std::string render_row(const std::vector<double>& row);

}  // namespace adaparse::hpc
