#include "hpc/cluster.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace adaparse::hpc {
namespace {

/// Staging batch: contiguous slice of one node's task list.
struct Batch {
  std::size_t begin = 0;
  std::size_t end = 0;
  double bytes = 0.0;
  double ops = 0.0;
  double ready_time = 0.0;  ///< when its data is in node-local RAM
};

}  // namespace

double SimResult::gpu_utilization() const {
  if (makespan <= 0.0 || gpu_timeline.empty()) return 0.0;
  double busy = 0.0;
  int max_gpu_index = 0;
  for (const auto& iv : gpu_timeline) {
    busy += iv.end - iv.start;
    max_gpu_index = std::max(max_gpu_index, iv.node * 1000 + iv.gpu);
  }
  // Count distinct GPUs that appeared.
  std::vector<std::uint64_t> seen;
  for (const auto& iv : gpu_timeline) {
    seen.push_back(static_cast<std::uint64_t>(iv.node) * 1000 + iv.gpu);
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return busy / (makespan * static_cast<double>(seen.size()));
}

SimResult simulate(const ClusterConfig& config,
                   const std::vector<TaskSpec>& tasks) {
  if (config.nodes <= 0 || config.cpu_cores_per_node <= 0) {
    throw std::invalid_argument("simulate: invalid cluster config");
  }
  SimResult result;
  result.tasks = tasks.size();
  if (tasks.empty()) return result;

  const auto nodes = static_cast<std::size_t>(config.nodes);

  // ---- Distribute tasks round-robin, preserving stream order per node. --
  std::vector<std::vector<std::size_t>> node_tasks(nodes);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    node_tasks[i % nodes].push_back(i);
  }

  // ---- Form staging batches per node. -----------------------------------
  const std::size_t batch_size =
      config.batch_staging ? std::max<std::size_t>(1, config.batch_size) : 1;
  std::vector<std::vector<Batch>> node_batches(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto& list = node_tasks[n];
    for (std::size_t b = 0; b < list.size(); b += batch_size) {
      Batch batch;
      batch.begin = b;
      batch.end = std::min(list.size(), b + batch_size);
      for (std::size_t i = batch.begin; i < batch.end; ++i) {
        batch.bytes += tasks[list[i]].bytes_read;
        // Batching collapses per-file operations into one shard read.
        batch.ops += config.batch_staging ? 0.0 : tasks[list[i]].fs_ops;
      }
      if (config.batch_staging) batch.ops = 2.0;  // shard open + index read
      node_batches[n].push_back(batch);
    }
  }

  // ---- Serve staging requests through the shared FS (FIFO). -------------
  // Each node pipelines: it requests batch b as soon as batch b-1 finished
  // staging (one-deep prefetch, as the engine's Prefetcher does).
  struct Request {
    double time;
    std::size_t node;
    std::size_t batch;
    bool operator>(const Request& other) const { return time > other.time; }
  };
  std::priority_queue<Request, std::vector<Request>, std::greater<>> requests;
  for (std::size_t n = 0; n < nodes; ++n) {
    if (!node_batches[n].empty()) requests.push({0.0, n, 0});
  }
  double fs_free = 0.0;
  while (!requests.empty()) {
    const Request r = requests.top();
    requests.pop();
    auto& batch = node_batches[r.node][r.batch];
    const double start = std::max(fs_free, r.time);
    const double service =
        batch.ops * config.fs_op_latency + batch.bytes / config.fs_bandwidth;
    fs_free = start + service;
    result.fs_busy_seconds += service;
    batch.ready_time = fs_free;
    if (r.batch + 1 < node_batches[r.node].size()) {
      requests.push({fs_free, r.node, r.batch + 1});
    }
  }

  // ---- Compute scheduling per node. --------------------------------------
  double coordinator_free = 0.0;  // global central service (Marker)
  double makespan = 0.0;

  for (std::size_t n = 0; n < nodes; ++n) {
    std::vector<double> cpu_free(
        static_cast<std::size_t>(config.cpu_cores_per_node), 0.0);
    std::vector<double> gpu_free(
        static_cast<std::size_t>(std::max(0, config.gpus_per_node)), 0.0);
    std::vector<bool> model_loaded(gpu_free.size(), false);

    for (const auto& batch : node_batches[n]) {
      for (std::size_t i = batch.begin; i < batch.end; ++i) {
        const TaskSpec& task = tasks[node_tasks[n][i]];

        // CPU phase (every task has one: extraction/classification/prep).
        auto cpu_it = std::min_element(cpu_free.begin(), cpu_free.end());
        double t = std::max(*cpu_it, batch.ready_time);
        const double cpu_time = config.dispatch_overhead + task.cpu_seconds;
        t += cpu_time;
        *cpu_it = t;
        result.cpu_busy_seconds += cpu_time;

        // Central coordination (if the parser architecture has one).
        if (config.central_service_seconds > 0.0) {
          const double cstart = std::max(coordinator_free, t);
          coordinator_free = cstart + config.central_service_seconds;
          t = coordinator_free;
        }

        // GPU phase.
        if (task.gpu_seconds > 0.0) {
          if (gpu_free.empty()) {
            throw std::invalid_argument("GPU task on a GPU-less cluster");
          }
          auto gpu_it = std::min_element(gpu_free.begin(), gpu_free.end());
          const auto g = static_cast<std::size_t>(gpu_it - gpu_free.begin());
          double gstart = std::max(*gpu_it, t);
          if (task.needs_gpu_model &&
              (!config.warm_start || !model_loaded[g])) {
            result.gpu_timeline.push_back(
                {static_cast<int>(n), static_cast<int>(g), gstart,
                 gstart + config.model_load_seconds, /*is_model_load=*/true});
            gstart += config.model_load_seconds;
            result.model_load_seconds += config.model_load_seconds;
            model_loaded[g] = true;
          }
          const double gend = gstart + task.gpu_seconds;
          result.gpu_timeline.push_back({static_cast<int>(n),
                                         static_cast<int>(g), gstart, gend,
                                         /*is_model_load=*/false});
          result.gpu_busy_seconds += gend - gstart;
          *gpu_it = gend;
          t = gend;
        }
        makespan = std::max(makespan, t);
      }
    }
  }

  result.makespan = makespan;
  result.throughput =
      makespan > 0.0 ? static_cast<double>(tasks.size()) / makespan : 0.0;
  return result;
}

}  // namespace adaparse::hpc
