// Write-ahead campaign manifest — the durable record of shard progress.
//
// A campaign directory contains one append-only `manifest.jsonl`. Every
// record is a single JSON line carrying a `crc` field (FNV-1a over the
// record serialized without it), so a torn tail — the classic crash mode
// of an append-only journal — is detectable: a resumed run drops a final
// line that fails to parse or fails its CRC, and treats the shard it was
// committing as uncommitted. A malformed line anywhere *before* the tail
// is real corruption and loading throws.
//
// Record types, in the order a campaign produces them:
//   plan        staging finished: shard sizes + engine fingerprint
//   quarantine  a poison document was removed from its shard
//   shard       a shard's output file is durable (the commit point)
//   final       the concatenated output.jsonl was assembled
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adaparse::campaign {

/// Staging is complete: the corpus is packed into `shard_docs.size()`
/// shard files, shard i holding `shard_docs[i]` documents.
struct PlanRecord {
  std::size_t docs = 0;
  std::vector<std::size_t> shard_docs;
  /// Engine/config fingerprint; a resume with a different engine config
  /// would not reproduce the committed shards and is rejected.
  std::string fingerprint;
};

/// Shard `index` committed: its output file is in place with `checksum`
/// (FNV-1a over the output bytes). `attempt` is diagnostic only.
struct ShardRecord {
  std::size_t index = 0;
  std::size_t attempt = 0;
  std::size_t docs = 0;
  std::size_t bytes = 0;
  std::uint64_t checksum = 0;
  std::size_t quarantined = 0;  ///< quarantine records inside this shard
};

/// Document `doc_id` (living in shard `shard`) was quarantined after
/// repeated attempt failures; committed shards emit a deterministic
/// quarantine record in its place.
struct QuarantineRecord {
  std::size_t shard = 0;
  std::string doc_id;
};

/// The final output.jsonl was assembled from every committed shard.
struct FinalRecord {
  std::size_t records = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the whole output file
};

/// Everything a resumed run needs to know, replayed from the journal.
struct ManifestState {
  std::optional<PlanRecord> plan;
  std::map<std::size_t, ShardRecord> shards;  ///< committed, by index
  std::vector<QuarantineRecord> quarantines;
  std::optional<FinalRecord> final_record;
  /// True when the journal ended in a torn line (dropped). The shard that
  /// line was committing re-executes — its output is deterministic. The
  /// resuming writer must truncate the file to `valid_prefix_bytes` before
  /// appending, or the next record would merge into the torn fragment and
  /// turn a recoverable tail into permanent mid-journal corruption.
  bool dropped_torn_tail = false;
  /// Byte length of the journal's valid prefix (end of the last intact
  /// line, including its newline).
  std::size_t valid_prefix_bytes = 0;
};

/// Replays a manifest. A missing file yields an empty state; a torn final
/// line is dropped (see dropped_torn_tail); a malformed non-final line
/// throws std::runtime_error.
ManifestState load_manifest(const std::string& path);

/// Append-only journal writer. Not thread-safe; the runner serializes
/// appends under its state mutex. Each append flushes, so the line is in
/// the OS page cache before the commit is considered durable.
class ManifestWriter {
 public:
  /// Opens `path` for append, creating it if absent.
  explicit ManifestWriter(const std::string& path);

  void append(const PlanRecord& record);
  void append(const ShardRecord& record);
  void append(const QuarantineRecord& record);
  void append(const FinalRecord& record);

  /// Failure-injection hook: writes only the first half of the shard
  /// record's line (no newline) — a torn write. The caller must treat the
  /// process as dead afterwards; load_manifest drops the torn tail.
  void append_torn(const ShardRecord& record);

 private:
  void append_line(const std::string& line);
  std::ofstream out_;
  std::string path_;
};

}  // namespace adaparse::campaign
