// Multi-process campaign execution: a coordinator supervising forked
// workers over pipes.
//
// The coordinator owns the shard queue and the manifest; workers own
// nothing durable. Each worker gets a task channel (down) and a
// heartbeat/result channel (up), with shards pre-assigned up to
// CampaignConfig::worker_queue_depth so workers never idle on a dispatch
// round-trip. Supervision is a single-threaded poll loop:
//
//   reap        waitpid(WNOHANG) every worker; a dead child's uncommitted
//               shards are requeued, its running attempt counted as a
//               measured recovery latency, and a replacement forked
//   heartbeats  a worker with assigned work but no message inside
//               heartbeat_timeout is presumed hung and SIGKILLed (waitpid
//               then reaps it like any other death)
//   dispatch    fill worker queues from the pending deque; once it drains,
//               steal queued-but-unstarted shards back from the most
//               backlogged worker for idle ones (kRevoke + fresh attempt),
//               and hedge long-running shards exactly like the in-process
//               mode — first commit wins
//   read        drain result pipes, decode frames, update progress, and
//               commit finished shards
//
// The commit protocol is byte-for-byte the in-process one: the worker
// atomically renames the shard output into place, the coordinator verifies
// the file against the result's checksum and appends the shard record.
// Only the coordinator writes the manifest, so the journal needs no
// cross-process locking.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/worker.hpp"
#include "proc/child.hpp"
#include "proc/pipe.hpp"
#include "proc/wire.hpp"

namespace adaparse::campaign {

class Coordinator {
 public:
  /// Applies a mutation to the runner's stats under the runner's mutex, so
  /// CampaignRunner::snapshot() stays coherent mid-run.
  using StatsUpdate =
      std::function<void(const std::function<void(CampaignStats&)>&)>;

  /// `executor` carries the engine/config/plan (pool and warm_cache unset:
  /// each forked worker builds its own). `pending` holds the uncommitted
  /// shard indices; every other shard is treated as already committed.
  Coordinator(ShardExecutor executor, ManifestWriter& manifest,
              std::deque<std::size_t> pending,
              std::vector<QuarantineRecord> quarantined, StatsUpdate update);

  /// Runs the supervision loop until every shard is committed or a
  /// scripted halt fires. Returns true when halted (resume to finish).
  /// Throws std::runtime_error when no worker can be kept alive.
  bool run();

 private:
  /// One dispatched attempt, mirrored coordinator-side.
  struct PendingTask {
    std::size_t shard = 0;
    std::size_t attempt = 0;
    bool hedge = false;
    std::chrono::steady_clock::time_point dispatched{};
    /// Quarantine list length the task was dispatched with; commits are
    /// stale if this shard gained a quarantine entry afterwards.
    std::size_t quarantine_snapshot = 0;
    std::size_t docs_done = 0;  ///< last heartbeat progress
  };

  struct Worker {
    proc::Child child;
    proc::Pipe to_child;    ///< coordinator writes tasks
    proc::Pipe from_child;  ///< worker writes heartbeats/results
    proc::FrameDecoder decoder;
    std::deque<PendingTask> assigned;  ///< front = running, rest queued
    std::chrono::steady_clock::time_point last_message{};
    bool alive = false;
    bool kill_sent = false;  ///< heartbeat-timeout SIGKILL already fired
  };

  struct ShardInfo {
    enum class Phase { kPending, kRunning, kCommitted };
    Phase phase = Phase::kCommitted;
    std::size_t attempts_started = 0;
    std::size_t failures = 0;   ///< consecutive, since last quarantine
    std::size_t in_flight = 0;  ///< dispatched attempts not yet resolved
    bool hedged = false;
    std::chrono::steady_clock::time_point started{};
  };

  const CampaignConfig& config() const { return *executor_.config; }
  void update(const std::function<void(CampaignStats&)>& fn) { update_(fn); }
  std::size_t remaining() const;
  std::size_t alive_workers() const;

  void spawn_worker();
  void ensure_workers();
  void reap();
  void check_heartbeats();
  void dispatch();
  void send_task(Worker& worker, std::size_t shard, bool hedge);
  std::optional<std::size_t> pick_hedge() const;
  void poll_and_read();
  void drain_worker(std::size_t index);
  void handle_message(std::size_t index, proc::Message message);
  void handle_result(const proc::Message& message, const PendingTask& task);
  void commit(const proc::Message& message, const PendingTask& task);
  void on_worker_lost(std::size_t index);
  void maybe_quarantine_crash_suspect(const PendingTask& task);
  void requeue(std::size_t shard);
  void shutdown_workers();

  ShardExecutor executor_;
  ManifestWriter& manifest_;
  std::deque<std::size_t> pending_;
  std::vector<QuarantineRecord> quarantined_;
  StatsUpdate update_;

  std::vector<ShardInfo> shards_;
  std::vector<Worker> workers_;
  std::vector<double> committed_seconds_;  ///< commit durations this run
  std::size_t commits_this_run_ = 0;
  std::size_t spawned_ = 0;
  bool halted_ = false;
};

}  // namespace adaparse::campaign
