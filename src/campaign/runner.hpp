// Fault-tolerant sharded campaign execution — the paper's multi-node
// deployment scenario made restartable.
//
// A campaign turns one DocumentSource into one output.jsonl through three
// journaled phases (see campaign/manifest.hpp):
//
//   stage    pull the corpus, pack it into durable shard files
//            (io::pack_corpus_shard, the paper's §6.1 archive staging),
//            then commit a plan record
//   execute  N workers each drive one shard at a time through a
//            core::Pipeline — either threads in this process sharing one
//            ThreadPool + WarmModelCache, or forked worker processes
//            supervised by a campaign::Coordinator (see
//            CampaignConfig::execution); a finished shard's output is
//            renamed into place and a shard record appended — the commit
//            point
//   assemble concatenate committed shard outputs in shard order into
//            output.jsonl and commit a final record
//
// Because shard execution is deterministic (per-document RNG seeds, the
// per-batch floor(alpha*k) budget applied within each shard) and commits
// are atomic (rename + journal append), a run killed at any shard
// boundary and resumed produces byte-identical output to an uninterrupted
// run. Recovery machinery on top:
//
//   retry        a failed attempt requeues the shard
//   quarantine   a document that kills max_shard_attempts consecutive
//                attempts is journaled and replaced by a deterministic
//                quarantine record
//   re-staging   a corrupt shard file is rebuilt from the source
//   hedging      a straggling shard is re-dispatched to an idle worker;
//                the first finisher commits, the loser is cancelled
//
// Faults are injected via a scripted FailurePlan (campaign/failure.hpp) so
// every scenario is deterministic and replayable in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/failure.hpp"
#include "campaign/manifest.hpp"
#include "core/doc_source.hpp"
#include "core/engine.hpp"

namespace adaparse::sched {
class ThreadPool;
class WarmModelCache;
}  // namespace adaparse::sched

namespace adaparse::campaign {

struct CampaignConfig {
  /// Campaign directory: manifest, shard files, per-shard outputs, and the
  /// final output.jsonl all live here. Created if absent.
  std::string dir;

  /// How shard attempts execute:
  ///   kInProcess     N threads in this process (the PR 5 model; scripted
  ///                  faults only)
  ///   kMultiProcess  a coordinator in this process supervising N forked
  ///                  worker processes over pipes — faults are real
  ///                  (SIGKILL, OOM, lost children detected via waitpid
  ///                  and missed heartbeats)
  /// Both modes share the shard plan, the commit protocol, and the
  /// manifest, so output is byte-identical across modes and a campaign
  /// killed in one mode can resume in the other.
  enum class ExecutionMode { kInProcess, kMultiProcess };
  ExecutionMode execution = ExecutionMode::kInProcess;

  /// Documents per shard (the last shard takes the remainder).
  std::size_t docs_per_shard = 64;

  /// Concurrent shard executions: worker threads (kInProcess) or forked
  /// worker processes (kMultiProcess). Each drives one core::Pipeline at
  /// a time.
  std::size_t workers = 2;

  /// kMultiProcess: shards pre-assigned per worker (one running plus
  /// depth-1 queued), so a worker never idles waiting for a dispatch
  /// round-trip. Queued-but-unstarted shards are what the coordinator
  /// steals back for idle workers.
  std::size_t worker_queue_depth = 2;

  /// kMultiProcess: a worker with assigned work that has sent no
  /// heartbeat/result for this long is presumed lost (hung, not dead —
  /// waitpid catches dead) and is SIGKILLed; its shards requeue.
  std::chrono::milliseconds heartbeat_timeout{30000};

  /// kMultiProcess: replacement workers forked over one run() before the
  /// coordinator gives up — a backstop against a crash loop, set far
  /// above any plausible recovery count.
  std::size_t max_worker_respawns = 256;

  /// Per-shard pipeline width; the shared pool is sized
  /// workers * (extract_workers + upgrade_workers) so every concurrent
  /// shard can run its full complement (the shared-pool deadlock-free
  /// minimum, same rule as serve::ParseService).
  std::size_t extract_workers = 2;
  std::size_t upgrade_workers = 1;
  std::size_t queue_capacity = 16;

  /// Consecutive failed attempts of one shard before the document the
  /// last attempt died on is quarantined.
  std::size_t max_shard_attempts = 3;

  /// Hedged re-dispatch: an idle worker re-runs a shard whose runtime
  /// exceeds max(hedge_min_runtime, hedge_factor * median committed shard
  /// time). 0 disables hedging.
  double hedge_factor = 4.0;
  std::chrono::milliseconds hedge_min_runtime{200};

  /// Scripted faults; empty plan = plain run.
  FailurePlan failures;
};

/// Campaign-level counters, MetricsRegistry-style: snapshot() returns
/// plain values, render_prometheus() the text exposition format.
struct CampaignStats {
  std::size_t shards_total = 0;
  std::size_t shards_committed = 0;      ///< durable commits, all runs
  std::size_t shards_resumed_skip = 0;   ///< committed by an earlier run
  std::size_t attempts_started = 0;
  std::size_t attempts_failed = 0;
  std::size_t shards_retried = 0;        ///< requeues after a failed attempt
  std::size_t hedges_launched = 0;
  std::size_t hedges_won = 0;            ///< hedge committed before primary
  std::size_t docs_processed = 0;        ///< records in shards this run committed
  std::size_t docs_quarantined = 0;
  std::size_t corrupt_shard_recoveries = 0;   ///< shard files re-staged
  std::size_t corrupt_output_recoveries = 0;  ///< committed outputs re-run
  bool recovered_torn_manifest = false;  ///< resume dropped a torn tail
  // Multi-process supervision (kMultiProcess runs only):
  std::size_t workers_spawned = 0;   ///< forks, initial + respawns
  std::size_t workers_died = 0;      ///< child deaths observed via waitpid
  std::size_t workers_killed = 0;    ///< SIGKILLed for missed heartbeats
  std::size_t shards_stolen = 0;     ///< queued shards moved off stragglers
  /// Wall-clock spent in attempts that did not commit (failed, cancelled,
  /// or lost hedges) — the price of recovery.
  double recovery_wall_seconds = 0.0;
  /// Measured per-fault recovery latencies: for every worker death or
  /// kill, the wall-clock between dispatching the attempt it was running
  /// and requeueing that shard — the real per-process recovery cost that
  /// hpc::throughput_sweep_measured projects onto the cluster.
  std::vector<double> recovery_latency_seconds;
  double wall_seconds = 0.0;
  bool halted = false;     ///< stopped by the scripted kill; resume to finish
  bool completed = false;  ///< output.jsonl assembled
};

/// Prometheus text exposition of a stats snapshot (adaparse_campaign_*).
std::string render_prometheus(const CampaignStats& stats);

class CampaignRunner {
 public:
  /// Re-creates the input stream. Called once for staging and again for
  /// every corrupt-shard re-staging, so it must yield the same documents
  /// in the same order each time (generator and shard sources do).
  using SourceFactory =
      std::function<std::unique_ptr<core::DocumentSource>()>;

  /// The engine must outlive the runner. The runner owns its worker pool
  /// and warm cache for the duration of run().
  CampaignRunner(const core::AdaParseEngine& engine, CampaignConfig config);

  /// Runs the campaign to completion — or resumes one: committed shards
  /// recorded in the manifest are verified (checksum) and skipped. Returns
  /// the final stats; stats().halted means the scripted kill fired and a
  /// later run() picks up from the journal. Throws std::runtime_error on
  /// unrecoverable corruption or an engine-config mismatch with the
  /// manifest's fingerprint.
  CampaignStats run(const SourceFactory& source);

  /// Thread-safe live view (usable from another thread mid-run).
  CampaignStats snapshot() const;

  std::string output_path() const;
  std::string manifest_path() const;
  std::string shard_path(std::size_t index) const;
  std::string shard_output_path(std::size_t index) const;

  const CampaignConfig& config() const { return config_; }

 private:
  struct ShardState {
    enum class Phase { kPending, kRunning, kCommitted };
    Phase phase = Phase::kPending;
    std::size_t attempts_started = 0;
    /// Consecutive failed attempts since the last quarantine decision.
    std::size_t failures = 0;
    std::size_t running_attempts = 0;
    bool hedged = false;
    std::chrono::steady_clock::time_point started{};
    std::shared_ptr<std::atomic<bool>> cancel;
  };
  struct AttemptResult;

  std::string fingerprint() const;
  void stage(const SourceFactory& source, ManifestState& state);
  AttemptResult execute_attempt(const SourceFactory& source,
                                std::size_t shard, std::size_t attempt,
                                std::shared_ptr<std::atomic<bool>> cancel);
  void worker_loop(const SourceFactory& source);
  void run_in_process(const SourceFactory& source);
  void run_multi_process(const SourceFactory& source);
  std::optional<std::size_t> pick_hedge_locked();
  /// Appends the shard's commit record and updates state; returns false
  /// when the scripted torn write fired and nothing durably committed.
  bool commit_locked(std::size_t shard, std::size_t attempt,
                     AttemptResult& result);

  const core::AdaParseEngine& engine_;
  CampaignConfig config_;
  std::vector<std::size_t> shard_docs_;  ///< documents per shard (plan)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::size_t> pending_;
  std::vector<ShardState> shards_;
  std::vector<double> committed_seconds_;  ///< durations of commits this run
  std::unique_ptr<ManifestWriter> manifest_;
  /// Quarantined documents (manifest + this run), with their shard — so a
  /// commit staleness check can ignore quarantines in unrelated shards.
  std::vector<QuarantineRecord> quarantined_;
  std::size_t commits_this_run_ = 0;
  bool halted_ = false;
  std::exception_ptr error_;
  CampaignStats stats_;

  // Shared execution substrate, live only inside run().
  sched::ThreadPool* pool_ = nullptr;
  sched::WarmModelCache* warm_cache_ = nullptr;
};

}  // namespace adaparse::campaign
