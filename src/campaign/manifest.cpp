#include "campaign/manifest.hpp"

#include <stdexcept>

#include "io/fsio.hpp"
#include "util/json.hpp"

namespace adaparse::campaign {
namespace {

std::uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw std::runtime_error("manifest: empty u64 field");
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') throw std::runtime_error("manifest: bad u64 field");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Serializes a record object as one journal line: the CRC is FNV-1a over
/// the object's dump *without* the crc field (std::map keys make the dump
/// canonical), appended as a decimal string.
std::string seal_line(util::JsonObject obj) {
  const std::string body = util::Json(obj).dump();
  obj["crc"] = std::to_string(io::fnv1a(body));
  return util::Json(std::move(obj)).dump();
}

/// Parses and CRC-checks one line; returns nullopt when the line is torn
/// (unparseable or failing its CRC) so the caller can apply tail policy.
std::optional<util::JsonObject> open_line(const std::string& line) {
  util::Json parsed;
  try {
    parsed = util::Json::parse(line);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (!parsed.is_object()) return std::nullopt;
  util::JsonObject obj = parsed.as_object();
  const auto crc_it = obj.find("crc");
  if (crc_it == obj.end() || !crc_it->second.is_string()) return std::nullopt;
  const std::string stored = crc_it->second.as_string();
  obj.erase(crc_it);
  try {
    if (parse_u64(stored) != io::fnv1a(util::Json(obj).dump())) {
      return std::nullopt;
    }
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  return obj;
}

void apply_record(ManifestState& state, const util::JsonObject& obj) {
  const util::Json record{obj};
  const std::string& type = record.at("type").as_string();
  if (type == "plan") {
    PlanRecord plan;
    plan.docs = static_cast<std::size_t>(record.at("docs").as_number());
    for (const auto& n : record.at("shard_docs").as_array()) {
      plan.shard_docs.push_back(static_cast<std::size_t>(n.as_number()));
    }
    plan.fingerprint = record.at("fingerprint").as_string();
    state.plan = std::move(plan);
  } else if (type == "shard") {
    ShardRecord shard;
    shard.index = static_cast<std::size_t>(record.at("index").as_number());
    shard.attempt = static_cast<std::size_t>(record.at("attempt").as_number());
    shard.docs = static_cast<std::size_t>(record.at("docs").as_number());
    shard.bytes = static_cast<std::size_t>(record.at("bytes").as_number());
    shard.checksum = parse_u64(record.at("checksum").as_string());
    shard.quarantined =
        static_cast<std::size_t>(record.at("quarantined").as_number());
    state.shards[shard.index] = std::move(shard);
  } else if (type == "quarantine") {
    QuarantineRecord q;
    q.shard = static_cast<std::size_t>(record.at("shard").as_number());
    q.doc_id = record.at("doc").as_string();
    state.quarantines.push_back(std::move(q));
  } else if (type == "final") {
    FinalRecord fin;
    fin.records = static_cast<std::size_t>(record.at("records").as_number());
    fin.checksum = parse_u64(record.at("checksum").as_string());
    state.final_record = fin;
  } else {
    throw std::runtime_error("manifest: unknown record type '" + type + "'");
  }
}

util::JsonObject to_object(const PlanRecord& record) {
  util::JsonObject obj;
  obj["type"] = "plan";
  obj["docs"] = record.docs;
  util::JsonArray shard_docs;
  shard_docs.reserve(record.shard_docs.size());
  for (const std::size_t n : record.shard_docs) shard_docs.emplace_back(n);
  obj["shard_docs"] = util::Json(std::move(shard_docs));
  obj["fingerprint"] = record.fingerprint;
  return obj;
}

util::JsonObject to_object(const ShardRecord& record) {
  util::JsonObject obj;
  obj["type"] = "shard";
  obj["index"] = record.index;
  obj["attempt"] = record.attempt;
  obj["docs"] = record.docs;
  obj["bytes"] = record.bytes;
  obj["checksum"] = std::to_string(record.checksum);
  obj["quarantined"] = record.quarantined;
  return obj;
}

util::JsonObject to_object(const QuarantineRecord& record) {
  util::JsonObject obj;
  obj["type"] = "quarantine";
  obj["shard"] = record.shard;
  obj["doc"] = record.doc_id;
  return obj;
}

util::JsonObject to_object(const FinalRecord& record) {
  util::JsonObject obj;
  obj["type"] = "final";
  obj["records"] = record.records;
  obj["checksum"] = std::to_string(record.checksum);
  return obj;
}

}  // namespace

ManifestState load_manifest(const std::string& path) {
  ManifestState state;
  const auto bytes = io::read_file(path);
  if (!bytes) return state;

  std::size_t begin = 0;
  std::vector<std::string> lines;
  std::vector<std::size_t> line_ends;  ///< offset past each line's newline
  while (begin < bytes->size()) {
    std::size_t end = bytes->find('\n', begin);
    if (end == std::string::npos) end = bytes->size();
    if (end > begin) {
      lines.push_back(bytes->substr(begin, end - begin));
      line_ends.push_back(std::min(end + 1, bytes->size()));
    }
    begin = end + 1;
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto obj = open_line(lines[i]);
    if (!obj) {
      if (i + 1 == lines.size()) {
        // Torn tail: the process died mid-append. The record never
        // committed; whatever it described re-executes deterministically.
        state.dropped_torn_tail = true;
        break;
      }
      throw std::runtime_error("manifest: corrupt record at line " +
                               std::to_string(i + 1) + " of " + path);
    }
    apply_record(state, *obj);
    state.valid_prefix_bytes = line_ends[i];
  }
  return state;
}

ManifestWriter::ManifestWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app), path_(path) {
  if (!out_) throw std::runtime_error("manifest: cannot open " + path);
}

void ManifestWriter::append(const PlanRecord& record) {
  append_line(seal_line(to_object(record)));
}

void ManifestWriter::append(const ShardRecord& record) {
  append_line(seal_line(to_object(record)));
}

void ManifestWriter::append(const QuarantineRecord& record) {
  append_line(seal_line(to_object(record)));
}

void ManifestWriter::append(const FinalRecord& record) {
  append_line(seal_line(to_object(record)));
}

void ManifestWriter::append_torn(const ShardRecord& record) {
  const std::string line = seal_line(to_object(record));
  out_.write(line.data(), static_cast<std::streamsize>(line.size() / 2));
  out_.flush();
}

void ManifestWriter::append_line(const std::string& line) {
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
  out_.flush();
  if (!out_) throw std::runtime_error("manifest: append failed " + path_);
}

}  // namespace adaparse::campaign
