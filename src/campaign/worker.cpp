#include "campaign/worker.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/pipeline.hpp"
#include "io/doc_codec.hpp"
#include "obs/trace.hpp"
#include "io/fsio.hpp"
#include "io/jsonl.hpp"
#include "proc/pipe.hpp"
#include "proc/wire.hpp"
#include "sched/thread_pool.hpp"
#include "sched/warm_cache.hpp"
#include "util/stopwatch.hpp"

namespace adaparse::campaign {
namespace {

std::string shard_stem(std::size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", index);
  return buf;
}

/// The deterministic stand-in record for a quarantined document: the
/// campaign still emits one line per input document, so downstream
/// curation sees the hole (and its provenance) instead of silence.
io::ParseRecord quarantine_record(const doc::Document& document) {
  io::ParseRecord record;
  record.document_id = document.id;
  record.parser = "quarantined";
  record.text = "";
  record.predicted_accuracy = 0.0;
  record.route = "campaign:quarantined";
  record.pages = static_cast<int>(document.num_pages());
  record.pages_retrieved = 0;
  return record;
}

/// A real worker death: raise SIGKILL on ourselves — the kernel reaps us
/// with no flush, no unwind, no atexit — and park until it lands.
[[noreturn]] void die_by_sigkill() {
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();
}

}  // namespace

std::string shard_file_path(const std::string& dir, std::size_t index) {
  return (std::filesystem::path(dir) / (shard_stem(index) + ".shard"))
      .string();
}

std::string shard_output_file_path(const std::string& dir,
                                   std::size_t index) {
  return (std::filesystem::path(dir) / (shard_stem(index) + ".out")).string();
}

std::vector<doc::Document> ShardExecutor::load_shard_docs(
    std::size_t shard) const {
  std::size_t skip = 0;
  for (std::size_t i = 0; i < shard; ++i) skip += shard_docs[i];
  auto stream = source();
  for (std::size_t i = 0; i < skip; ++i) {
    if (!stream->next()) {
      throw std::runtime_error("campaign: source shrank during re-staging");
    }
  }
  std::vector<doc::Document> docs;
  docs.reserve(shard_docs[shard]);
  for (std::size_t i = 0; i < shard_docs[shard]; ++i) {
    auto document = stream->next();
    if (!document) {
      throw std::runtime_error("campaign: source shrank during re-staging");
    }
    docs.push_back(*document);
  }
  return docs;
}

AttemptOutcome ShardExecutor::run_attempt(
    std::size_t shard, std::size_t attempt,
    const std::vector<std::string>& quarantined,
    const std::atomic<bool>* cancel,
    const std::function<void(std::size_t)>& on_record) const {
  util::Stopwatch wall;
  AttemptOutcome result;
  obs::SpanGuard attempt_span("campaign", "attempt", "shard", shard,
                              "attempt", attempt);

  // --- Read the shard, re-staging from the source if the file is damaged.
  std::vector<doc::Document> docs;
  bool decoded = false;
  if (auto bytes = io::read_file(shard_file_path(config->dir, shard))) {
    try {
      docs = io::unpack_corpus_shard(*bytes);
      decoded = true;
    } catch (const std::runtime_error&) {
      // Corrupt at rest; fall through to re-staging.
    }
  }
  if (!decoded) {
    docs = load_shard_docs(shard);
    io::write_file_atomic(shard_file_path(config->dir, shard),
                          io::pack_corpus_shard(docs));
    result.restaged = true;
  }

  // --- Apply the quarantine list (order-preserving filter).
  std::vector<bool> is_quarantined(docs.size(), false);
  std::vector<doc::Document> run_docs;
  run_docs.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (std::find(quarantined.begin(), quarantined.end(), docs[i].id) !=
        quarantined.end()) {
      is_quarantined[i] = true;
    } else {
      run_docs.push_back(docs[i]);
    }
  }
  const std::size_t runnable = run_docs.size();

  // --- Scripted failure points for this attempt. In-process, a scripted
  // worker crash truncates the attempt and discards its output (the PR 5
  // simulation); in a worker process (real_crashes) the same script
  // SIGKILLs the process after emitting `after_docs` records, so the
  // supervision path under test is waitpid, not a return value. Poison
  // documents truncate in both modes — the attempt reports the document it
  // died on, which the quarantine decision needs verbatim.
  const std::optional<std::size_t> crash =
      config->failures.crash_after(shard, attempt);
  std::optional<std::size_t> fail_after;
  if (!real_crashes) fail_after = crash;
  for (std::size_t i = 0; i < run_docs.size(); ++i) {
    if (config->failures.is_poison(run_docs[i].id)) {
      if (!fail_after || i < *fail_after) fail_after = i;
      break;
    }
  }
  if (fail_after && *fail_after >= runnable) fail_after.reset();
  std::optional<std::size_t> kill_at =
      real_crashes ? crash : std::optional<std::size_t>{};
  if (kill_at && *kill_at >= runnable) kill_at.reset();
  const bool failing = fail_after.has_value();
  if (failing) result.failed_doc_id = run_docs[*fail_after].id;
  std::vector<doc::Document> attempt_docs =
      failing ? std::vector<doc::Document>(run_docs.begin(),
                                           run_docs.begin() + *fail_after)
              : std::move(run_docs);
  if (kill_at && *kill_at == 0) {
    if (on_record) on_record(0);
    die_by_sigkill();
  }

  // --- Drive the shard through the streaming pipeline.
  const auto delay = config->failures.delay_for(shard, attempt);
  core::PipelineConfig pipeline_config;
  pipeline_config.queue_capacity = config->queue_capacity;
  pipeline_config.extract_workers = config->extract_workers;
  pipeline_config.upgrade_workers = config->upgrade_workers;
  pipeline_config.pool = pool;
  pipeline_config.warm_cache = warm_cache;
  pipeline_config.cancel = cancel;
  if (on_record || kill_at || delay.count() > 0) {
    pipeline_config.on_progress = [on_record, kill_at, delay,
                                   cancel](std::size_t emitted) {
      // Heartbeat first: a death at this record must leave `emitted` as
      // the last progress the coordinator saw, so its quarantine suspect
      // matches the in-process attempt's failed_doc_id exactly.
      if (on_record) on_record(emitted);
      if (kill_at && emitted == *kill_at) die_by_sigkill();
      if (delay.count() > 0 && (!cancel || !cancel->load())) {
        std::this_thread::sleep_for(delay);
      }
    };
  }
  const core::Pipeline pipeline(*engine, pipeline_config);
  std::vector<io::ParseRecord> records;
  records.reserve(attempt_docs.size());
  core::VectorSource attempt_source(attempt_docs);
  // Pipeline stage spans run on pool threads whose span stacks are empty;
  // pointing the ambient parent at this attempt links them under it (and,
  // through the fork-inherited context, under the coordinator's campaign
  // span).
  obs::Tracer& tracer = obs::Tracer::instance();
  const obs::TraceContext outer_ctx = tracer.context();
  if (attempt_span.active()) {
    tracer.set_context({outer_ctx.trace_id, attempt_span.id()});
  }
  const core::EngineStats run_stats = pipeline.run(
      attempt_source,
      [&](std::size_t, const io::ParseRecord& record,
          const core::RouteDecision&) { records.push_back(record); });
  if (attempt_span.active()) tracer.set_context(outer_ctx);
  result.wall_seconds = wall.seconds();

  if (failing) {
    // The attempt paid for the work, then "died": partial output discarded.
    result.kind = AttemptOutcome::Kind::kFailed;
    return result;
  }
  if (run_stats.pipeline.cancelled || records.size() != attempt_docs.size()) {
    result.kind = AttemptOutcome::Kind::kCancelled;
    return result;
  }

  // --- Serialize in original shard order, quarantine holes filled with
  // deterministic stand-in records.
  std::ostringstream os;
  io::JsonlWriter writer(os);
  std::size_t next_record = 0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (is_quarantined[i]) {
      writer.write(quarantine_record(docs[i]));
      ++result.quarantined_in_shard;
    } else {
      writer.write(records[next_record++]);
    }
  }
  result.output = os.str();
  result.records = docs.size();
  result.kind = AttemptOutcome::Kind::kSuccess;
  return result;
}

int worker_main(const ShardExecutor& executor, int task_fd, int result_fd) {
  // The coordinator can vanish (its own process killed); writes must fail
  // with EPIPE, not kill us with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  proc::Pipe::set_nonblocking(task_fd);

  // Tracing across the fork boundary: drop the ring contents inherited from
  // the coordinator (it still owns those records) and re-stamp our pid; the
  // trace id + parent span id arrive through the fork memory image, so our
  // spans parent to the coordinator's campaign span with no handshake.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.on_fork_child();
  const auto flush_spans = [&tracer, result_fd] {
    if (!tracer.enabled()) return;
    const std::vector<obs::SpanRecord> spans = tracer.collect();
    // Chunked so a frame can never brush against the wire's payload cap.
    constexpr std::size_t kChunk = 50000;
    for (std::size_t i = 0; i < spans.size(); i += kChunk) {
      const std::vector<obs::SpanRecord> slice(
          spans.begin() + static_cast<std::ptrdiff_t>(i),
          spans.begin() + static_cast<std::ptrdiff_t>(
                              std::min(spans.size(), i + kChunk)));
      proc::Message frame;
      frame.type = proc::MsgType::kSpans;
      frame.spans = obs::encode_spans(slice);
      if (!proc::write_all(result_fd, proc::encode_frame(frame))) return;
    }
  };
  {
    // Flushed before any task runs, so even a worker that is SIGKILLed
    // mid-shard has already contributed its pid to the trace.
    obs::SpanGuard boot("worker", "boot", "pid",
                        static_cast<std::uint64_t>(::getpid()));
  }
  flush_spans();

  // A worker process runs one attempt at a time and owns its pipeline
  // substrate — process isolation is the point, nothing is shared.
  sched::ThreadPool pool(executor.config->extract_workers +
                         executor.config->upgrade_workers);
  sched::WarmModelCache warm_cache(/*enabled=*/true);
  ShardExecutor local = executor;
  local.pool = &pool;
  local.warm_cache = &warm_cache;
  local.real_crashes = true;

  proc::FrameDecoder decoder;
  std::deque<proc::Message> tasks;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> revoked;
  bool shutdown = false;
  bool coordinator_gone = false;

  const auto pump = [&](int timeout_ms) {
    struct pollfd pfd {
      task_fd, POLLIN, 0
    };
    if (::poll(&pfd, 1, timeout_ms) <= 0) return;
    std::string bytes;
    if (!proc::read_available(task_fd, bytes)) coordinator_gone = true;
    decoder.feed(bytes);
    try {
      while (auto message = decoder.next()) {
        switch (message->type) {
          case proc::MsgType::kTask:
            tasks.push_back(std::move(*message));
            break;
          case proc::MsgType::kRevoke:
            revoked.emplace_back(message->shard, message->attempt);
            break;
          case proc::MsgType::kShutdown:
            shutdown = true;
            break;
          default:
            break;  // not a coordinator->worker message; ignore
        }
      }
    } catch (const std::runtime_error&) {
      coordinator_gone = true;  // corrupt frame: the pipe is broken
    }
  };

  while (!shutdown) {
    if (tasks.empty()) {
      if (coordinator_gone) break;  // EOF with nothing queued: we're done
      pump(/*timeout_ms=*/200);
      continue;
    }
    pump(/*timeout_ms=*/0);  // absorb revokes that raced in with this task
    const proc::Message task = tasks.front();
    tasks.pop_front();
    const auto revocation =
        std::find(revoked.begin(), revoked.end(),
                  std::make_pair(task.shard, task.attempt));
    if (revocation != revoked.end()) {
      revoked.erase(revocation);  // stolen before we started it
      continue;
    }

    proc::Message heartbeat;
    heartbeat.type = proc::MsgType::kHeartbeat;
    heartbeat.shard = task.shard;
    heartbeat.attempt = task.attempt;
    heartbeat.docs_done = 0;
    proc::write_all(result_fd, proc::encode_frame(heartbeat));
    // Fires on the pipeline's writer thread; the worker's main thread is
    // parked inside run_attempt until the run finishes, so the result pipe
    // has exactly one writer at a time.
    const auto on_record = [&heartbeat, result_fd](std::size_t emitted) {
      heartbeat.docs_done = emitted;
      proc::write_all(result_fd, proc::encode_frame(heartbeat));
    };

    AttemptOutcome outcome;
    try {
      outcome = local.run_attempt(static_cast<std::size_t>(task.shard),
                                  static_cast<std::size_t>(task.attempt),
                                  task.quarantine, nullptr, on_record);
    } catch (...) {
      return 3;  // unrecoverable here; the coordinator requeues our work
    }

    proc::Message result;
    result.type = proc::MsgType::kResult;
    result.shard = task.shard;
    result.attempt = task.attempt;
    result.restaged = outcome.restaged ? 1 : 0;
    result.wall_ms = static_cast<std::uint64_t>(outcome.wall_seconds * 1e3);
    if (outcome.kind == AttemptOutcome::Kind::kSuccess) {
      // The commit protocol is unchanged from in-process mode: the output
      // file is atomically renamed into place *before* the result message,
      // and only the coordinator's journal append makes it durable. A
      // SIGKILL between the two leaves an orphan .out a resume overwrites.
      try {
        io::write_file_atomic(
            shard_output_file_path(local.config->dir,
                                   static_cast<std::size_t>(task.shard)),
            outcome.output);
      } catch (...) {
        return 4;
      }
      result.status = 0;
      result.records = outcome.records;
      result.bytes = outcome.output.size();
      result.checksum = io::fnv1a(outcome.output);
      result.quarantined = outcome.quarantined_in_shard;
    } else {
      result.status = 1;
      result.failed_doc_id = outcome.failed_doc_id;
    }
    if (!proc::write_all(result_fd, proc::encode_frame(result))) break;
    flush_spans();
  }
  flush_spans();
  return 0;
}

}  // namespace adaparse::campaign
