// Deterministic failure injection for campaign runs.
//
// A FailurePlan scripts every fault the runner is expected to survive, so
// tests and benches can replay the exact same fault sequence against a
// full run and a killed-and-resumed run and assert byte-identical output:
//
//   crashes         a worker dies partway through a shard attempt (the
//                   partial output is discarded, the shard retries)
//   poison_docs     documents that kill every attempt that reaches them,
//                   until the runner quarantines them
//   corrupt_shards  shard files damaged at rest (detected on read,
//                   re-staged from the source)
//   torn_manifest_shards  the commit record of a shard tears mid-line and
//                   the process "dies" (resume drops the torn tail)
//   stragglers      per-document delay on early attempts of a shard, so
//                   hedged re-dispatch has something to beat
//   halt_after_commits    simulated kill: stop cleanly after N durable
//                   shard commits (resume continues from the manifest)
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaparse::campaign {

struct FailurePlan {
  /// Attempt `attempt` of shard `shard` dies after emitting `after_docs`
  /// records. Keyed per attempt so "fails twice, then succeeds" is
  /// expressible.
  struct WorkerCrash {
    std::size_t shard = 0;
    std::size_t attempt = 0;
    std::size_t after_docs = 0;
  };
  std::vector<WorkerCrash> crashes;

  /// Document ids that kill any attempt that reaches them (every attempt,
  /// until quarantined).
  std::vector<std::string> poison_docs;

  /// Shard files corrupted at rest; applied once when run() starts.
  std::vector<std::size_t> corrupt_shards;

  /// Shards whose commit record tears mid-line; the run halts as if the
  /// process died during the append.
  std::vector<std::size_t> torn_manifest_shards;

  /// Per-document delay injected into the first `first_attempts` attempts
  /// of `shard` — a synthetic straggler for hedging to race.
  struct Straggler {
    std::size_t shard = 0;
    std::size_t first_attempts = 1;
    std::chrono::milliseconds per_doc_delay{0};
  };
  std::vector<Straggler> stragglers;

  /// Simulated process kill: the run stops (workers stand down, nothing
  /// further commits) after this many durable shard commits.
  std::optional<std::size_t> halt_after_commits;

  /// Records the given attempt survives before dying; nullopt = no crash
  /// scripted for it.
  std::optional<std::size_t> crash_after(std::size_t shard,
                                         std::size_t attempt) const;
  bool is_poison(std::string_view doc_id) const;
  bool corrupts_shard(std::size_t shard) const;
  bool tears_commit(std::size_t shard) const;
  /// Injected per-document delay for this attempt (zero = none).
  std::chrono::milliseconds delay_for(std::size_t shard,
                                      std::size_t attempt) const;
  bool empty() const;
};

}  // namespace adaparse::campaign
