#include "campaign/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "campaign/coordinator.hpp"
#include "campaign/worker.hpp"
#include "io/doc_codec.hpp"
#include "io/fsio.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "sched/warm_cache.hpp"
#include "simd/dispatch.hpp"
#include "util/stopwatch.hpp"

namespace adaparse::campaign {

struct CampaignRunner::AttemptResult {
  enum class Kind { kSuccess, kFailed, kCancelled };
  Kind kind = Kind::kFailed;
  std::string output;           ///< serialized JSONL (success only)
  std::size_t records = 0;      ///< lines in `output`
  std::size_t quarantined_in_shard = 0;
  /// Size of the quarantine list the attempt ran against; a commit is
  /// stale (and retried) if the list grew while the attempt was in flight.
  std::size_t quarantine_snapshot = 0;
  std::string failed_doc_id;    ///< document the attempt died on
  double wall_seconds = 0.0;
};

std::string render_prometheus(const CampaignStats& stats) {
  // Built on the shared obs::Registry renderer. Values go in as doubles —
  // the campaign exposition has always rendered through double formatting —
  // and this surface carries no HELP lines; both properties keep the output
  // byte-identical to the pre-registry renderer.
  obs::Registry registry;
  const auto counter = [&registry](const char* name, double value) {
    registry.counter(name).set(value);
  };
  const auto gauge = [&registry](const char* name, double value) {
    registry.gauge(name).set(value);
  };
  gauge("adaparse_campaign_shards_total",
        static_cast<double>(stats.shards_total));
  counter("adaparse_campaign_shards_committed",
          static_cast<double>(stats.shards_committed));
  counter("adaparse_campaign_shards_resumed_skip",
          static_cast<double>(stats.shards_resumed_skip));
  counter("adaparse_campaign_attempts_started",
          static_cast<double>(stats.attempts_started));
  counter("adaparse_campaign_attempts_failed",
          static_cast<double>(stats.attempts_failed));
  counter("adaparse_campaign_shards_retried",
          static_cast<double>(stats.shards_retried));
  counter("adaparse_campaign_hedges_launched",
          static_cast<double>(stats.hedges_launched));
  counter("adaparse_campaign_hedges_won",
          static_cast<double>(stats.hedges_won));
  counter("adaparse_campaign_docs_processed",
          static_cast<double>(stats.docs_processed));
  counter("adaparse_campaign_docs_quarantined",
          static_cast<double>(stats.docs_quarantined));
  counter("adaparse_campaign_corrupt_shard_recoveries",
          static_cast<double>(stats.corrupt_shard_recoveries));
  counter("adaparse_campaign_corrupt_output_recoveries",
          static_cast<double>(stats.corrupt_output_recoveries));
  gauge("adaparse_campaign_recovered_torn_manifest",
        stats.recovered_torn_manifest ? 1.0 : 0.0);
  counter("adaparse_campaign_workers_spawned",
          static_cast<double>(stats.workers_spawned));
  counter("adaparse_campaign_workers_died",
          static_cast<double>(stats.workers_died));
  counter("adaparse_campaign_workers_killed",
          static_cast<double>(stats.workers_killed));
  counter("adaparse_campaign_shards_stolen",
          static_cast<double>(stats.shards_stolen));
  counter("adaparse_campaign_recovery_events",
          static_cast<double>(stats.recovery_latency_seconds.size()));
  counter("adaparse_campaign_recovery_wall_seconds",
          stats.recovery_wall_seconds);
  gauge("adaparse_campaign_wall_seconds", stats.wall_seconds);
  gauge("adaparse_campaign_halted", stats.halted ? 1.0 : 0.0);
  gauge("adaparse_campaign_completed", stats.completed ? 1.0 : 0.0);
  registry.gauge("adaparse_simd_tier", "", {{"tier", simd::active_tier_name()}})
      .set(1);
  return registry.render_prometheus();
}

CampaignRunner::CampaignRunner(const core::AdaParseEngine& engine,
                               CampaignConfig config)
    : engine_(engine), config_(std::move(config)) {
  config_.docs_per_shard = std::max<std::size_t>(1, config_.docs_per_shard);
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.extract_workers = std::max<std::size_t>(1, config_.extract_workers);
  config_.upgrade_workers = std::max<std::size_t>(1, config_.upgrade_workers);
  config_.max_shard_attempts =
      std::max<std::size_t>(1, config_.max_shard_attempts);
}

std::string CampaignRunner::output_path() const {
  return (std::filesystem::path(config_.dir) / "output.jsonl").string();
}

std::string CampaignRunner::manifest_path() const {
  return (std::filesystem::path(config_.dir) / "manifest.jsonl").string();
}

std::string CampaignRunner::shard_path(std::size_t index) const {
  return shard_file_path(config_.dir, index);
}

std::string CampaignRunner::shard_output_path(std::size_t index) const {
  return shard_output_file_path(config_.dir, index);
}

std::string CampaignRunner::fingerprint() const {
  const core::EngineConfig& ec = engine_.config();
  std::ostringstream os;
  os << core::variant_name(ec.variant) << "|alpha=" << ec.alpha
     << "|k=" << ec.batch_size << "|cls2=" << ec.cls2_threshold
     << "|shard=" << config_.docs_per_shard
     // Config alone is not enough: a resume with a differently-*trained*
     // engine of identical config would silently mix two models' outputs.
     << "|model=" << engine_.model_digest();
  return os.str();
}

void CampaignRunner::stage(const SourceFactory& source, ManifestState& state) {
  obs::SpanGuard stage_span("campaign", "stage");
  auto stream = source();
  std::vector<doc::Document> chunk;
  chunk.reserve(config_.docs_per_shard);
  PlanRecord plan;
  plan.fingerprint = fingerprint();
  const auto flush = [&] {
    if (chunk.empty()) return;
    io::write_file_atomic(shard_path(plan.shard_docs.size()),
                          io::pack_corpus_shard(chunk));
    plan.shard_docs.push_back(chunk.size());
    chunk.clear();
  };
  while (auto document = stream->next()) {
    chunk.push_back(*document);
    ++plan.docs;
    if (chunk.size() == config_.docs_per_shard) flush();
  }
  flush();
  // The plan record is the staging commit point: a crash before this line
  // re-stages everything; after it, shard files are durable inputs.
  manifest_->append(plan);
  stage_span.arg("docs", plan.docs);
  stage_span.arg("shards", plan.shard_docs.size());
  state.plan = std::move(plan);
}

CampaignRunner::AttemptResult CampaignRunner::execute_attempt(
    const SourceFactory& source, std::size_t shard, std::size_t attempt,
    std::shared_ptr<std::atomic<bool>> cancel) {
  // Snapshot the quarantine list under the lock; the attempt itself runs
  // the shared ShardExecutor logic (identical to a forked worker's).
  std::vector<std::string> quarantined;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined.reserve(quarantined_.size());
    for (const auto& q : quarantined_) quarantined.push_back(q.doc_id);
  }

  ShardExecutor executor;
  executor.engine = &engine_;
  executor.config = &config_;
  executor.shard_docs = shard_docs_;
  executor.source = source;
  executor.pool = pool_;
  executor.warm_cache = warm_cache_;
  AttemptOutcome outcome =
      executor.run_attempt(shard, attempt, quarantined, cancel.get(),
                           /*on_record=*/nullptr);

  if (outcome.restaged) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_shard_recoveries;
  }
  AttemptResult result;
  switch (outcome.kind) {
    case AttemptOutcome::Kind::kSuccess:
      result.kind = AttemptResult::Kind::kSuccess;
      break;
    case AttemptOutcome::Kind::kFailed:
      result.kind = AttemptResult::Kind::kFailed;
      break;
    case AttemptOutcome::Kind::kCancelled:
      result.kind = AttemptResult::Kind::kCancelled;
      break;
  }
  result.output = std::move(outcome.output);
  result.records = outcome.records;
  result.quarantined_in_shard = outcome.quarantined_in_shard;
  result.quarantine_snapshot = quarantined.size();
  result.failed_doc_id = std::move(outcome.failed_doc_id);
  result.wall_seconds = outcome.wall_seconds;
  return result;
}

std::optional<std::size_t> CampaignRunner::pick_hedge_locked() {
  if (config_.hedge_factor <= 0.0) return std::nullopt;
  const auto now = std::chrono::steady_clock::now();
  double threshold_seconds =
      std::chrono::duration<double>(config_.hedge_min_runtime).count();
  if (!committed_seconds_.empty()) {
    std::vector<double> sorted = committed_seconds_;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    threshold_seconds =
        std::max(threshold_seconds, config_.hedge_factor * median);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& st = shards_[i];
    if (st.phase != ShardState::Phase::kRunning || st.hedged ||
        st.running_attempts != 1) {
      continue;
    }
    const double elapsed =
        std::chrono::duration<double>(now - st.started).count();
    if (elapsed > threshold_seconds) return i;
  }
  return std::nullopt;
}

bool CampaignRunner::commit_locked(std::size_t shard, std::size_t attempt,
                                   AttemptResult& result) {
  ShardState& st = shards_[shard];
  ShardRecord record;
  record.index = shard;
  record.attempt = attempt;
  record.docs = result.records;
  record.bytes = result.output.size();
  record.checksum = io::fnv1a(result.output);
  record.quarantined = result.quarantined_in_shard;

  // The attempt already wrote the output file (before the journal line):
  // a crash between the two leaves an orphan .out that a resume overwrites.
  if (config_.failures.tears_commit(shard)) {
    // The scripted torn write: half the journal line hits disk and the
    // process "dies". Nothing after this counts as committed.
    manifest_->append_torn(record);
    halted_ = true;
    stats_.halted = true;
    cv_.notify_all();
    return false;
  }
  manifest_->append(record);

  st.phase = ShardState::Phase::kCommitted;
  if (st.cancel) st.cancel->store(true);  // stand down any hedge twin
  ++stats_.shards_committed;
  ++commits_this_run_;
  stats_.docs_processed += result.records;
  committed_seconds_.push_back(result.wall_seconds);
  if (config_.failures.halt_after_commits &&
      commits_this_run_ >= *config_.failures.halt_after_commits) {
    halted_ = true;
    stats_.halted = true;
  }
  cv_.notify_all();
  return true;
}

void CampaignRunner::worker_loop(const SourceFactory& source) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::optional<std::size_t> shard;
    bool is_hedge = false;
    while (!shard) {
      if (halted_ || error_) return;
      if (stats_.shards_committed == stats_.shards_total) {
        cv_.notify_all();
        return;
      }
      if (!pending_.empty()) {
        shard = pending_.front();
        pending_.pop_front();
        break;
      }
      if (auto hedge = pick_hedge_locked()) {
        shard = hedge;
        is_hedge = true;
        break;
      }
      // Timed wait: hedge thresholds are time-based, so idle workers poll.
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }

    ShardState& st = shards_[*shard];
    const std::size_t attempt = st.attempts_started++;
    if (st.phase == ShardState::Phase::kPending) {
      st.phase = ShardState::Phase::kRunning;
      st.started = std::chrono::steady_clock::now();
      st.cancel = std::make_shared<std::atomic<bool>>(false);
    }
    ++st.running_attempts;
    if (is_hedge) {
      st.hedged = true;
      ++stats_.hedges_launched;
    }
    ++stats_.attempts_started;
    auto cancel = st.cancel;
    lock.unlock();

    AttemptResult result;
    try {
      result = execute_attempt(source, *shard, attempt, cancel);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      --shards_[*shard].running_attempts;
      cv_.notify_all();
      return;
    }

    lock.lock();
    ShardState& post = shards_[*shard];
    --post.running_attempts;
    // Requeue the shard — unless a twin attempt is still running, in which
    // case its own completion will commit or requeue (replacing st.cancel
    // under a live twin would orphan the twin's cancellation flag, and a
    // premature pending entry could dispatch a third concurrent attempt).
    const auto requeue_locked = [&](std::size_t index) {
      ShardState& s = shards_[index];
      if (s.running_attempts > 0) return;
      s.phase = ShardState::Phase::kPending;
      s.hedged = false;
      pending_.push_back(index);
      cv_.notify_all();
    };
    if (halted_ || post.phase == ShardState::Phase::kCommitted) {
      // The process "died" or a twin already committed: this attempt's
      // work is lost — exactly what recovery_wall_seconds measures.
      stats_.recovery_wall_seconds += result.wall_seconds;
      continue;
    }
    switch (result.kind) {
      case AttemptResult::Kind::kSuccess: {
        bool stale = false;
        for (std::size_t qi = result.quarantine_snapshot;
             qi < quarantined_.size(); ++qi) {
          if (quarantined_[qi].shard == *shard) {
            stale = true;
            break;
          }
        }
        if (stale) {
          // A sibling attempt quarantined one of *this shard's* documents
          // while this attempt was in flight: its output was built against
          // a stale document list and must not commit (the journal already
          // promises the quarantine). Retry with the current list.
          stats_.recovery_wall_seconds += result.wall_seconds;
          ++stats_.shards_retried;
          requeue_locked(*shard);
          break;
        }
        // Claim the commit under the lock (first finisher wins; a twin can
        // no longer write or commit this shard), then do the output-file
        // write off the lock so commits don't serialize every worker
        // behind disk I/O, then journal.
        post.phase = ShardState::Phase::kCommitted;
        lock.unlock();
        try {
          io::write_file_atomic(shard_output_path(*shard), result.output);
        } catch (...) {
          lock.lock();
          if (!error_) error_ = std::current_exception();
          shards_[*shard].phase = ShardState::Phase::kPending;
          cv_.notify_all();
          return;
        }
        lock.lock();
        if (halted_) {
          // The scripted kill landed while this commit's file was being
          // written; the journal line must not follow. The orphan .out is
          // overwritten on resume.
          shards_[*shard].phase = ShardState::Phase::kPending;
          stats_.recovery_wall_seconds += result.wall_seconds;
          break;
        }
        if (commit_locked(*shard, attempt, result)) {
          if (is_hedge) ++stats_.hedges_won;
        } else {
          // Torn commit: the journal line never landed, so the attempt's
          // work is lost exactly like any other uncommitted attempt.
          shards_[*shard].phase = ShardState::Phase::kPending;
          stats_.recovery_wall_seconds += result.wall_seconds;
        }
        break;
      }
      case AttemptResult::Kind::kCancelled:
        // Only reachable when the shard committed or halted (handled
        // above), but requeue defensively so no shard can strand in
        // kRunning with nothing in flight.
        stats_.recovery_wall_seconds += result.wall_seconds;
        requeue_locked(*shard);
        break;
      case AttemptResult::Kind::kFailed: {
        ++stats_.attempts_failed;
        stats_.recovery_wall_seconds += result.wall_seconds;
        ++post.failures;
        if (post.failures >= config_.max_shard_attempts &&
            !result.failed_doc_id.empty()) {
          // The shard keeps dying on the same document: quarantine it so
          // the corpus can make progress. Journaled before the requeue so
          // a resume replays the same decision.
          QuarantineRecord q;
          q.shard = *shard;
          q.doc_id = result.failed_doc_id;
          quarantined_.push_back(q);
          manifest_->append(q);
          ++stats_.docs_quarantined;
          post.failures = 0;
        }
        ++stats_.shards_retried;
        requeue_locked(*shard);
        break;
      }
    }
  }
}

void CampaignRunner::run_in_process(const SourceFactory& source) {
  sched::ThreadPool pool(config_.workers *
                         (config_.extract_workers + config_.upgrade_workers));
  sched::WarmModelCache warm_cache(/*enabled=*/true);
  pool_ = &pool;
  warm_cache_ = &warm_cache;
  std::vector<std::thread> workers;
  workers.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers.emplace_back([this, &source] { worker_loop(source); });
  }
  for (auto& worker : workers) worker.join();
  pool_ = nullptr;
  warm_cache_ = nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_) std::rethrow_exception(error_);
}

void CampaignRunner::run_multi_process(const SourceFactory& source) {
  // No shared pool or warm cache: every forked worker owns a private pair
  // sized for one shard attempt. The executor is inherited by the children
  // via the fork's memory image — trained engine included, no
  // serialization.
  ShardExecutor executor;
  executor.engine = &engine_;
  executor.config = &config_;
  executor.shard_docs = shard_docs_;
  executor.source = source;

  std::deque<std::size_t> pending;
  std::vector<QuarantineRecord> quarantined;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending = pending_;
    quarantined = quarantined_;
  }
  Coordinator coordinator(
      std::move(executor), *manifest_, std::move(pending),
      std::move(quarantined),
      // All stats mutations funnel through the runner's mutex, so
      // snapshot() stays a coherent live view during a multi-process run.
      [this](const std::function<void(CampaignStats&)>& fn) {
        std::lock_guard<std::mutex> lock(mutex_);
        fn(stats_);
      });
  const bool halted = coordinator.run();
  std::lock_guard<std::mutex> lock(mutex_);
  halted_ = halted;
}

CampaignStats CampaignRunner::run(const SourceFactory& source) {
  util::Stopwatch wall;

  // Root span of the whole campaign. Publishing its id as the ambient trace
  // context makes it the parent of every root span recorded below — on this
  // process's pool threads AND inside forked workers, which inherit the
  // context through the fork memory image and flush their spans back over
  // kSpans frames.
  obs::SpanGuard run_span("campaign", "run");
  obs::Tracer& tracer = obs::Tracer::instance();
  const obs::TraceContext outer_ctx = tracer.context();
  struct ContextRestore {
    obs::Tracer& tracer;
    obs::TraceContext saved;
    bool armed;
    ~ContextRestore() {
      if (armed) tracer.set_context(saved);
    }
  } restore{tracer, outer_ctx, run_span.active()};
  if (run_span.active()) {
    obs::TraceContext ctx = outer_ctx;
    if (ctx.trace_id == 0) ctx.trace_id = run_span.id();
    ctx.parent_span = run_span.id();
    tracer.set_context(ctx);
  }

  std::filesystem::create_directories(config_.dir);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.clear();
    shards_.clear();
    committed_seconds_.clear();
    quarantined_.clear();
    commits_this_run_ = 0;
    halted_ = false;
    error_ = nullptr;
    stats_ = CampaignStats{};
  }

  ManifestState state = load_manifest(manifest_path());
  if (state.dropped_torn_tail) {
    // Cut the torn fragment off before appending: the writer opens in
    // append mode, and a record written onto the fragment would merge into
    // one permanently corrupt mid-journal line.
    std::filesystem::resize_file(manifest_path(), state.valid_prefix_bytes);
    std::lock_guard<std::mutex> lock(mutex_);  // snapshot() may be polling
    stats_.recovered_torn_manifest = true;
  }
  manifest_ = std::make_unique<ManifestWriter>(manifest_path());
  if (state.plan) {
    if (state.plan->fingerprint != fingerprint()) {
      throw std::runtime_error(
          "campaign: engine/config fingerprint mismatch with manifest (got '" +
          fingerprint() + "', manifest has '" + state.plan->fingerprint +
          "') — committed shards would not be reproducible");
    }
  } else {
    stage(source, state);
  }
  shard_docs_ = state.plan->shard_docs;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.shards_total = shard_docs_.size();
    shards_.assign(shard_docs_.size(), ShardState{});
    for (const auto& q : state.quarantines) quarantined_.push_back(q);
    for (std::size_t i = 0; i < shard_docs_.size(); ++i) {
      if (auto it = state.shards.find(i); it != state.shards.end()) {
        // Trust, but verify: a committed shard whose output file is gone
        // or damaged is demoted back to pending (re-execution is
        // deterministic, so the final bytes are unaffected).
        const auto bytes = io::read_file(shard_output_path(i));
        if (bytes && io::fnv1a(*bytes) == it->second.checksum) {
          shards_[i].phase = ShardState::Phase::kCommitted;
          ++stats_.shards_committed;
          ++stats_.shards_resumed_skip;
          continue;
        }
        ++stats_.corrupt_output_recoveries;
      }
      pending_.push_back(i);
    }
    if (stats_.shards_resumed_skip > 0) {
      obs::Tracer::instance().instant(
          "campaign", "resume", "skipped",
          static_cast<std::uint64_t>(stats_.shards_resumed_skip), "pending",
          static_cast<std::uint64_t>(pending_.size()));
    }
  }

  // Already assembled and intact? Then this run is a cheap no-op: don't
  // re-read every shard output or append a duplicate final record.
  if (state.final_record) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) {
      const auto bytes = io::read_file(output_path());
      if (bytes && io::fnv1a(*bytes) == state.final_record->checksum) {
        stats_.completed = true;
        stats_.wall_seconds = wall.seconds();
        return stats_;
      }
    }
  }

  // Scripted at-rest corruption: damage the named shard files before any
  // worker reads them (committed shards no longer read their inputs).
  for (const std::size_t shard : config_.failures.corrupt_shards) {
    if (shard >= shards_.size()) continue;
    if (shards_[shard].phase == ShardState::Phase::kCommitted) continue;
    if (auto bytes = io::read_file(shard_path(shard))) {
      io::write_file_atomic(shard_path(shard),
                            std::string_view(*bytes).substr(0, bytes->size() / 2));
    }
  }

  const bool have_work = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    return !pending_.empty();
  }();
  if (have_work) {
    if (config_.execution == CampaignConfig::ExecutionMode::kMultiProcess) {
      run_multi_process(source);
    } else {
      run_in_process(source);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!halted_) {
      // All shards durable: assemble under the lock (nothing else runs).
      std::string all;
      for (std::size_t i = 0; i < shard_docs_.size(); ++i) {
        const auto bytes = io::read_file(shard_output_path(i));
        if (!bytes) {
          throw std::runtime_error("campaign: committed shard output missing: " +
                                   shard_output_path(i));
        }
        all += *bytes;
      }
      io::write_file_atomic(output_path(), all);
      FinalRecord fin;
      fin.records = static_cast<std::size_t>(
          std::count(all.begin(), all.end(), '\n'));
      fin.checksum = io::fnv1a(all);
      manifest_->append(fin);
      stats_.completed = true;
    }
    stats_.wall_seconds = wall.seconds();
    run_span.arg("docs", stats_.docs_processed);
    run_span.arg("shards", stats_.shards_committed);
    return stats_;
  }
}

CampaignStats CampaignRunner::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace adaparse::campaign
