#include "campaign/coordinator.hpp"

#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <csignal>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/doc_codec.hpp"
#include "io/fsio.hpp"
#include "obs/trace.hpp"

namespace adaparse::campaign {

Coordinator::Coordinator(ShardExecutor executor, ManifestWriter& manifest,
                         std::deque<std::size_t> pending,
                         std::vector<QuarantineRecord> quarantined,
                         StatsUpdate update)
    : executor_(std::move(executor)),
      manifest_(manifest),
      pending_(std::move(pending)),
      quarantined_(std::move(quarantined)),
      update_(std::move(update)) {
  shards_.assign(executor_.shard_docs.size(), ShardInfo{});
  for (const std::size_t shard : pending_) {
    shards_[shard].phase = ShardInfo::Phase::kPending;
  }
}

std::size_t Coordinator::remaining() const {
  std::size_t count = 0;
  for (const ShardInfo& si : shards_) {
    if (si.phase != ShardInfo::Phase::kCommitted) ++count;
  }
  return count;
}

std::size_t Coordinator::alive_workers() const {
  std::size_t count = 0;
  for (const Worker& w : workers_) {
    if (w.alive) ++count;
  }
  return count;
}

bool Coordinator::run() {
  // A worker can die mid-write at any moment; its pipe must surface EPIPE,
  // not kill the coordinator.
  std::signal(SIGPIPE, SIG_IGN);
  ensure_workers();
  while (!halted_ && remaining() > 0) {
    reap();
    if (halted_) break;
    check_heartbeats();
    ensure_workers();
    dispatch();
    poll_and_read();
  }
  shutdown_workers();
  return halted_;
}

void Coordinator::spawn_worker() {
  Worker w;  // both Pipe constructors open their pairs
  w.child = proc::Child::spawn([this, &w] {
    // Forked child: drop every pipe end belonging to the coordinator's
    // other workers — a held peer write end would mask that peer's EOF —
    // and the parent-side ends of our own pair.
    for (Worker& other : workers_) {
      other.to_child.close_read();
      other.to_child.close_write();
      other.from_child.close_read();
      other.from_child.close_write();
    }
    const int task_fd = w.to_child.read_fd();
    const int result_fd = w.from_child.write_fd();
    w.to_child.close_write();
    w.from_child.close_read();
    return worker_main(executor_, task_fd, result_fd);
  });
  w.to_child.close_read();
  w.from_child.close_write();
  proc::Pipe::set_nonblocking(w.from_child.read_fd());
  w.alive = true;
  w.last_message = std::chrono::steady_clock::now();
  obs::Tracer::instance().instant(
      "campaign", "worker.spawn", "pid",
      static_cast<std::uint64_t>(w.child.pid()));
  workers_.push_back(std::move(w));
  ++spawned_;
  update([](CampaignStats& s) { ++s.workers_spawned; });
}

void Coordinator::ensure_workers() {
  const std::size_t target = std::min(config().workers, remaining());
  while (alive_workers() < target) {
    if (spawned_ >= config().workers + config().max_worker_respawns) {
      if (alive_workers() == 0) {
        throw std::runtime_error(
            "campaign: worker respawn budget exhausted with shards "
            "uncommitted — crash loop?");
      }
      return;
    }
    spawn_worker();
  }
}

void Coordinator::reap() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    if (!w.alive) continue;
    if (!w.child.try_wait()) continue;
    // Drain what the worker wrote before dying: a result already in the
    // pipe may still commit (its output file landed before the message).
    drain_worker(i);
    on_worker_lost(i);
  }
}

void Coordinator::on_worker_lost(std::size_t index) {
  Worker& w = workers_[index];
  w.alive = false;
  const auto now = std::chrono::steady_clock::now();
  obs::Tracer::instance().instant(
      "campaign", "worker.death", "pid",
      static_cast<std::uint64_t>(w.child.pid()), "queued",
      static_cast<std::uint64_t>(w.assigned.size()));
  update([](CampaignStats& s) { ++s.workers_died; });
  if (!w.assigned.empty()) {
    // The front task was the running one (workers are FIFO): the wall
    // since its dispatch is this fault's measured recovery latency.
    const PendingTask running = w.assigned.front();
    const double latency =
        std::chrono::duration<double>(now - running.dispatched).count();
    update([latency](CampaignStats& s) {
      s.recovery_wall_seconds += latency;
      s.recovery_latency_seconds.push_back(latency);
      ++s.attempts_failed;
    });
    if (!halted_) maybe_quarantine_crash_suspect(running);
  }
  for (const PendingTask& task : w.assigned) {
    ShardInfo& si = shards_[task.shard];
    if (si.in_flight > 0) --si.in_flight;
  }
  // Requeue only after every in_flight decrement, so a shard with a live
  // twin on another worker stays out of the pending queue.
  const std::vector<PendingTask> lost(w.assigned.begin(), w.assigned.end());
  w.assigned.clear();
  bool retried = false;
  for (const PendingTask& task : lost) {
    if (!halted_ && shards_[task.shard].phase != ShardInfo::Phase::kCommitted) {
      retried = true;
    }
    requeue(task.shard);
  }
  if (retried) {
    update([](CampaignStats& s) { ++s.shards_retried; });
  }
  w.to_child.close_write();
  w.to_child.close_read();
  w.from_child.close_read();
  w.from_child.close_write();
}

void Coordinator::maybe_quarantine_crash_suspect(const PendingTask& task) {
  ShardInfo& si = shards_[task.shard];
  if (si.phase == ShardInfo::Phase::kCommitted) return;
  ++si.failures;
  if (si.failures < config().max_shard_attempts) return;
  // The shard keeps killing workers: quarantine the document the last
  // attempt died on — the first one it had not yet emitted, within the
  // quarantine-filtered list it was running (heartbeats carry the in-order
  // emitted count, so this is exact, not a guess).
  std::vector<doc::Document> docs;
  bool decoded = false;
  if (auto bytes = io::read_file(shard_file_path(config().dir, task.shard))) {
    try {
      docs = io::unpack_corpus_shard(*bytes);
      decoded = true;
    } catch (const std::runtime_error&) {
    }
  }
  if (!decoded) docs = executor_.load_shard_docs(task.shard);
  std::vector<std::string> run_ids;
  run_ids.reserve(docs.size());
  for (const auto& document : docs) {
    bool skip = false;
    for (std::size_t qi = 0;
         qi < task.quarantine_snapshot && qi < quarantined_.size(); ++qi) {
      if (quarantined_[qi].doc_id == document.id) {
        skip = true;
        break;
      }
    }
    if (!skip) run_ids.push_back(document.id);
  }
  si.failures = 0;
  if (task.docs_done >= run_ids.size()) return;  // died after its last emit
  QuarantineRecord q;
  q.shard = task.shard;
  q.doc_id = run_ids[task.docs_done];
  quarantined_.push_back(q);
  manifest_.append(q);
  obs::Tracer::instance().instant("campaign", "quarantine", "shard",
                                  static_cast<std::uint64_t>(task.shard));
  update([](CampaignStats& s) { ++s.docs_quarantined; });
}

void Coordinator::check_heartbeats() {
  const auto now = std::chrono::steady_clock::now();
  for (Worker& w : workers_) {
    if (!w.alive || w.kill_sent || w.assigned.empty()) continue;
    if (now - w.last_message <= config().heartbeat_timeout) continue;
    // Hung, not dead — waitpid would have caught dead. SIGKILL turns it
    // into an ordinary death that reap() recovers from.
    w.child.kill(SIGKILL);
    w.kill_sent = true;
    obs::Tracer::instance().instant(
        "campaign", "worker.kill", "pid",
        static_cast<std::uint64_t>(w.child.pid()));
    update([](CampaignStats& s) { ++s.workers_killed; });
  }
}

void Coordinator::send_task(Worker& worker, std::size_t shard, bool hedge) {
  ShardInfo& si = shards_[shard];
  PendingTask task;
  task.shard = shard;
  task.attempt = si.attempts_started++;
  task.hedge = hedge;
  task.dispatched = std::chrono::steady_clock::now();
  task.quarantine_snapshot = quarantined_.size();
  if (si.phase == ShardInfo::Phase::kPending) {
    si.phase = ShardInfo::Phase::kRunning;
    si.started = task.dispatched;
  }
  if (hedge) si.hedged = true;
  ++si.in_flight;
  update([](CampaignStats& s) { ++s.attempts_started; });
  proc::Message message;
  message.type = proc::MsgType::kTask;
  message.shard = shard;
  message.attempt = task.attempt;
  message.quarantine.reserve(quarantined_.size());
  for (const auto& q : quarantined_) message.quarantine.push_back(q.doc_id);
  // A failed write means the worker is already gone; reap() requeues this
  // task along with the rest of its queue.
  proc::write_all(worker.to_child.write_fd(), proc::encode_frame(message));
  obs::Tracer::instance().instant("campaign", hedge ? "hedge" : "dispatch",
                                  "shard", shard, "attempt", task.attempt);
  worker.assigned.push_back(std::move(task));
}

std::optional<std::size_t> Coordinator::pick_hedge() const {
  if (config().hedge_factor <= 0.0) return std::nullopt;
  const auto now = std::chrono::steady_clock::now();
  double threshold_seconds =
      std::chrono::duration<double>(config().hedge_min_runtime).count();
  if (!committed_seconds_.empty()) {
    std::vector<double> sorted = committed_seconds_;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    threshold_seconds =
        std::max(threshold_seconds, config().hedge_factor * median);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardInfo& si = shards_[i];
    if (si.phase != ShardInfo::Phase::kRunning || si.hedged ||
        si.in_flight != 1) {
      continue;
    }
    const double elapsed =
        std::chrono::duration<double>(now - si.started).count();
    if (elapsed > threshold_seconds) return i;
  }
  return std::nullopt;
}

void Coordinator::dispatch() {
  if (halted_) return;
  for (Worker& w : workers_) {
    if (!w.alive || w.kill_sent) continue;
    while (w.assigned.size() < config().worker_queue_depth &&
           !pending_.empty()) {
      const std::size_t shard = pending_.front();
      pending_.pop_front();
      send_task(w, shard, /*hedge=*/false);
    }
  }
  if (!pending_.empty()) return;
  for (Worker& thief : workers_) {
    if (!thief.alive || thief.kill_sent || !thief.assigned.empty()) continue;
    // Steal the most backlogged worker's last queued (unstarted) shard:
    // revoke it on the victim, dispatch a fresh attempt to the thief. If
    // the victim raced us and ran it anyway, first commit wins and the
    // loser's result is ignored as a ghost.
    Worker* victim = nullptr;
    for (Worker& other : workers_) {
      if (!other.alive || other.kill_sent || &other == &thief) continue;
      if (other.assigned.size() < 2) continue;
      if (!victim || other.assigned.size() > victim->assigned.size()) {
        victim = &other;
      }
    }
    if (victim) {
      const PendingTask stolen = victim->assigned.back();
      victim->assigned.pop_back();
      ShardInfo& si = shards_[stolen.shard];
      if (si.in_flight > 0) --si.in_flight;
      proc::Message revoke;
      revoke.type = proc::MsgType::kRevoke;
      revoke.shard = stolen.shard;
      revoke.attempt = stolen.attempt;
      proc::write_all(victim->to_child.write_fd(),
                      proc::encode_frame(revoke));
      obs::Tracer::instance().instant(
          "campaign", "steal", "shard",
          static_cast<std::uint64_t>(stolen.shard), "victim_pid",
          static_cast<std::uint64_t>(victim->child.pid()));
      update([](CampaignStats& s) { ++s.shards_stolen; });
      send_task(thief, stolen.shard, stolen.hedge);
      continue;
    }
    if (const auto hedge = pick_hedge()) {
      update([](CampaignStats& s) { ++s.hedges_launched; });
      send_task(thief, *hedge, /*hedge=*/true);
    }
  }
}

void Coordinator::poll_and_read() {
  std::vector<struct pollfd> fds;
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive) continue;
    fds.push_back({workers_[i].from_child.read_fd(), POLLIN, 0});
    owner.push_back(i);
  }
  if (fds.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return;
  }
  const int ready =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), /*timeout=*/20);
  if (ready <= 0) return;
  for (std::size_t k = 0; k < fds.size(); ++k) {
    if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    drain_worker(owner[k]);
    if (halted_) return;
  }
}

void Coordinator::drain_worker(std::size_t index) {
  Worker& w = workers_[index];
  std::string bytes;
  // EOF here just means the worker exited; reap() owns death handling.
  proc::read_available(w.from_child.read_fd(), bytes);
  if (bytes.empty()) return;
  w.decoder.feed(bytes);
  try {
    while (auto message = w.decoder.next()) {
      handle_message(index, std::move(*message));
      if (halted_) return;
    }
  } catch (const std::runtime_error&) {
    // Corrupt frame: the protocol stream is broken, so nothing further
    // from this worker can be trusted. Treat it like a hung worker.
    if (w.alive && !w.kill_sent) {
      w.child.kill(SIGKILL);
      w.kill_sent = true;
      update([](CampaignStats& s) { ++s.workers_killed; });
    }
  }
}

void Coordinator::handle_message(std::size_t index, proc::Message message) {
  Worker& w = workers_[index];
  w.last_message = std::chrono::steady_clock::now();
  if (message.type == proc::MsgType::kSpans) {
    // Trace spans recorded inside the worker, re-homed into our tracer so
    // the whole campaign exports as one coherent trace. Telemetry must
    // never take a worker down: a malformed batch is dropped, not fatal.
    try {
      obs::Tracer::instance().adopt(obs::decode_spans(message.spans));
    } catch (const std::runtime_error&) {
    }
    return;
  }
  if (message.type == proc::MsgType::kHeartbeat) {
    for (PendingTask& task : w.assigned) {
      if (task.shard == message.shard && task.attempt == message.attempt) {
        task.docs_done = static_cast<std::size_t>(message.docs_done);
        break;
      }
    }
    return;
  }
  if (message.type != proc::MsgType::kResult) return;
  const auto it = std::find_if(
      w.assigned.begin(), w.assigned.end(), [&](const PendingTask& t) {
        return t.shard == message.shard && t.attempt == message.attempt;
      });
  if (it == w.assigned.end()) {
    // A ghost: the attempt was revoked or its worker already written off.
    // Its work is lost wall-clock, nothing else.
    const double wall = static_cast<double>(message.wall_ms) / 1e3;
    update([wall](CampaignStats& s) { s.recovery_wall_seconds += wall; });
    return;
  }
  const PendingTask task = *it;
  w.assigned.erase(it);
  ShardInfo& si = shards_[task.shard];
  if (si.in_flight > 0) --si.in_flight;
  handle_result(message, task);
}

void Coordinator::handle_result(const proc::Message& message,
                                const PendingTask& task) {
  const double wall = static_cast<double>(message.wall_ms) / 1e3;
  ShardInfo& si = shards_[task.shard];
  if (message.restaged) {
    update([](CampaignStats& s) { ++s.corrupt_shard_recoveries; });
  }
  if (halted_ || si.phase == ShardInfo::Phase::kCommitted) {
    // Halted, or a twin committed first: this attempt's work is lost.
    update([wall](CampaignStats& s) { s.recovery_wall_seconds += wall; });
    return;
  }
  if (message.status != 0) {
    update([wall](CampaignStats& s) {
      ++s.attempts_failed;
      s.recovery_wall_seconds += wall;
    });
    ++si.failures;
    if (si.failures >= config().max_shard_attempts &&
        !message.failed_doc_id.empty()) {
      // Journaled before the requeue so a resume replays the decision.
      QuarantineRecord q;
      q.shard = task.shard;
      q.doc_id = message.failed_doc_id;
      quarantined_.push_back(q);
      manifest_.append(q);
      si.failures = 0;
      update([](CampaignStats& s) { ++s.docs_quarantined; });
    }
    update([](CampaignStats& s) { ++s.shards_retried; });
    requeue(task.shard);
    return;
  }
  // Success. A commit built against a stale quarantine list must retry:
  // the journal already promises a quarantine inside this shard.
  for (std::size_t qi = task.quarantine_snapshot; qi < quarantined_.size();
       ++qi) {
    if (quarantined_[qi].shard == task.shard) {
      update([wall](CampaignStats& s) {
        s.recovery_wall_seconds += wall;
        ++s.shards_retried;
      });
      requeue(task.shard);
      return;
    }
  }
  // Trust, but verify: the durable artifact is the file the worker
  // renamed into place, not the message. Re-read and check the checksum
  // before journaling — a journal line must never promise bytes that are
  // not on disk.
  const auto bytes =
      io::read_file(shard_output_file_path(config().dir, task.shard));
  if (!bytes || io::fnv1a(*bytes) != message.checksum) {
    update([wall](CampaignStats& s) {
      s.recovery_wall_seconds += wall;
      ++s.shards_retried;
    });
    requeue(task.shard);
    return;
  }
  commit(message, task);
}

void Coordinator::commit(const proc::Message& message,
                         const PendingTask& task) {
  ShardInfo& si = shards_[task.shard];
  ShardRecord record;
  record.index = task.shard;
  record.attempt = static_cast<std::size_t>(task.attempt);
  record.docs = static_cast<std::size_t>(message.records);
  record.bytes = static_cast<std::size_t>(message.bytes);
  record.checksum = message.checksum;
  record.quarantined = static_cast<std::size_t>(message.quarantined);
  if (config().failures.tears_commit(task.shard)) {
    // The scripted torn write: half a journal line lands and the
    // coordinator "dies". Nothing after this counts as committed.
    manifest_.append_torn(record);
    halted_ = true;
    update([](CampaignStats& s) { s.halted = true; });
    return;
  }
  manifest_.append(record);
  si.phase = ShardInfo::Phase::kCommitted;
  obs::Tracer::instance().instant("campaign", "commit", "shard",
                                  static_cast<std::uint64_t>(task.shard),
                                  "docs",
                                  static_cast<std::uint64_t>(record.docs));
  committed_seconds_.push_back(static_cast<double>(message.wall_ms) / 1e3);
  ++commits_this_run_;
  const std::size_t docs = record.docs;
  const bool hedge_won = task.hedge;
  update([docs, hedge_won](CampaignStats& s) {
    ++s.shards_committed;
    s.docs_processed += docs;
    if (hedge_won) ++s.hedges_won;
  });
  if (config().failures.halt_after_commits &&
      commits_this_run_ >= *config().failures.halt_after_commits) {
    halted_ = true;
    update([](CampaignStats& s) { s.halted = true; });
  }
}

void Coordinator::requeue(std::size_t shard) {
  if (halted_) return;
  ShardInfo& si = shards_[shard];
  if (si.phase == ShardInfo::Phase::kCommitted) return;
  if (si.phase == ShardInfo::Phase::kPending) return;  // already queued
  if (si.in_flight > 0) return;  // a live twin will resolve or requeue it
  si.phase = ShardInfo::Phase::kPending;
  si.hedged = false;
  pending_.push_back(shard);
}

void Coordinator::shutdown_workers() {
  if (halted_) {
    // The scripted kill: this process is "dead", and real workers die
    // with their coordinator — no goodbye, mid-whatever-they-were-doing.
    for (Worker& w : workers_) {
      if (w.alive) w.child.kill(SIGKILL);
    }
  } else {
    proc::Message bye;
    bye.type = proc::MsgType::kShutdown;
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      proc::write_all(w.to_child.write_fd(), proc::encode_frame(bye));
      w.to_child.close_write();
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (;;) {
      bool waiting = false;
      for (Worker& w : workers_) {
        if (!w.alive) continue;
        if (w.child.try_wait()) {
          w.alive = false;
        } else {
          waiting = true;
        }
      }
      if (!waiting || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (Worker& w : workers_) {
      if (w.alive) w.child.kill(SIGKILL);
    }
  }
  for (Worker& w : workers_) {
    if (w.alive) {
      w.child.wait();
      w.alive = false;
    }
  }
}

}  // namespace adaparse::campaign
