#include "campaign/failure.hpp"

#include <algorithm>

namespace adaparse::campaign {

std::optional<std::size_t> FailurePlan::crash_after(std::size_t shard,
                                                    std::size_t attempt) const {
  for (const auto& crash : crashes) {
    if (crash.shard == shard && crash.attempt == attempt) {
      return crash.after_docs;
    }
  }
  return std::nullopt;
}

bool FailurePlan::is_poison(std::string_view doc_id) const {
  return std::find(poison_docs.begin(), poison_docs.end(), doc_id) !=
         poison_docs.end();
}

bool FailurePlan::corrupts_shard(std::size_t shard) const {
  return std::find(corrupt_shards.begin(), corrupt_shards.end(), shard) !=
         corrupt_shards.end();
}

bool FailurePlan::tears_commit(std::size_t shard) const {
  return std::find(torn_manifest_shards.begin(), torn_manifest_shards.end(),
                   shard) != torn_manifest_shards.end();
}

std::chrono::milliseconds FailurePlan::delay_for(std::size_t shard,
                                                 std::size_t attempt) const {
  for (const auto& straggler : stragglers) {
    if (straggler.shard == shard && attempt < straggler.first_attempts) {
      return straggler.per_doc_delay;
    }
  }
  return std::chrono::milliseconds{0};
}

bool FailurePlan::empty() const {
  return crashes.empty() && poison_docs.empty() && corrupt_shards.empty() &&
         torn_manifest_shards.empty() && stragglers.empty() &&
         !halt_after_commits.has_value();
}

}  // namespace adaparse::campaign
