// The worker half of a campaign: one shard attempt, runnable either on an
// in-process worker thread or inside a forked worker process.
//
// ShardExecutor is the shared attempt logic extracted from the PR 5
// runner: read (or re-stage) the shard file, filter the quarantine list,
// apply scripted faults, drive the documents through a core::Pipeline, and
// serialize the shard's output with deterministic quarantine stand-ins.
// Because both execution modes run exactly this code against the same
// shard plan, a campaign's output is byte-identical across modes — and a
// run killed in one mode resumes in the other.
//
// worker_main() is the child-process entry: a forked worker's event loop
// reading framed task messages from the coordinator, streaming per-record
// heartbeats back, writing committed shard outputs via the same
// atomic-rename protocol, and reporting results. In a worker process,
// scripted WorkerCrash faults raise a *real* SIGKILL on the worker — the
// kill/resume guarantees are proven against genuine process death, not a
// simulated halt.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace adaparse::campaign {

/// Shard/output file paths inside a campaign directory (shared by the
/// runner, the coordinator, and forked workers).
std::string shard_file_path(const std::string& dir, std::size_t index);
std::string shard_output_file_path(const std::string& dir, std::size_t index);

/// What one shard attempt produced.
struct AttemptOutcome {
  enum class Kind { kSuccess, kFailed, kCancelled };
  Kind kind = Kind::kFailed;
  std::string output;            ///< serialized JSONL (success only)
  std::size_t records = 0;       ///< lines in `output`
  std::size_t quarantined_in_shard = 0;
  std::string failed_doc_id;     ///< document a failed attempt died on
  double wall_seconds = 0.0;
  bool restaged = false;         ///< shard file was corrupt; rebuilt
};

/// Everything needed to execute shard attempts, bundled so a forked child
/// inherits it by memory image. In-process callers point `pool` and
/// `warm_cache` at the runner's shared substrate; a worker process owns a
/// private pair sized for one attempt.
struct ShardExecutor {
  const core::AdaParseEngine* engine = nullptr;
  const CampaignConfig* config = nullptr;
  std::vector<std::size_t> shard_docs;  ///< documents per shard (the plan)
  CampaignRunner::SourceFactory source;
  sched::ThreadPool* pool = nullptr;
  sched::WarmModelCache* warm_cache = nullptr;
  /// Worker processes set this: a scripted WorkerCrash SIGKILLs the
  /// process at its fault point instead of simulating the death.
  bool real_crashes = false;

  /// Runs one attempt. `quarantined` is the quarantine list snapshot the
  /// attempt builds against (doc ids, order irrelevant). `on_record`, when
  /// set, fires after each record reaches the sink with the in-order
  /// emitted count — the worker process's heartbeat hook.
  AttemptOutcome run_attempt(
      std::size_t shard, std::size_t attempt,
      const std::vector<std::string>& quarantined,
      const std::atomic<bool>* cancel,
      const std::function<void(std::size_t)>& on_record) const;

  /// Replays the source to rebuild one shard's documents (corrupt-shard
  /// re-staging, quarantine attribution). Throws if the source shrank.
  std::vector<doc::Document> load_shard_docs(std::size_t shard) const;
};

/// Entry point of a forked worker process: reads kTask/kRevoke/kShutdown
/// frames from `task_fd`, writes kHeartbeat/kResult frames to `result_fd`,
/// exits 0 on shutdown or coordinator EOF. Never throws (a worker that
/// cannot proceed exits nonzero and the coordinator requeues its work).
int worker_main(const ShardExecutor& executor, int task_fd, int result_fd);

}  // namespace adaparse::campaign
