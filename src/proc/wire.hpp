// Length-prefixed, CRC'd wire codec for coordinator <-> worker messages.
//
// Frame layout (little-endian):
//
//   [u32 payload_len][u64 fnv1a(payload)][payload]
//
// The CRC makes a torn or garbled pipe read detectable the same way the
// campaign manifest detects a torn journal line: a frame that fails its
// checksum is protocol corruption and decoding throws — the coordinator
// then treats that worker as lost. Payloads use one fixed field layout for
// every message type (they are tens of bytes; sparseness is cheaper than a
// per-type schema).
//
// Message types:
//   kTask       coordinator -> worker: run `shard` as `attempt`, with the
//               current quarantine list (doc ids excluded from the shard)
//   kRevoke     coordinator -> worker: drop (shard, attempt) if still
//               queued — its work was stolen by an idle worker
//   kShutdown   coordinator -> worker: finish up and exit
//   kHeartbeat  worker -> coordinator: still alive, `docs_done` records of
//               (shard, attempt) emitted so far
//   kResult     worker -> coordinator: attempt finished; status 0 = output
//               file written (records/bytes/checksum describe it), 1 =
//               attempt failed on `failed_doc_id`
//   kSpans      worker -> coordinator: a batch of obs trace spans recorded
//               in the worker (`spans` holds an obs::encode_spans payload)
//
// Forward compatibility: a frame whose CRC checks out but whose type byte is
// unrecognized decodes as kUnknown with no fields — receivers skip it instead
// of declaring the peer corrupt. That lets an older coordinator survive a
// newer worker's frame kinds (this is exactly how kSpans was introduced).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaparse::proc {

enum class MsgType : std::uint8_t {
  kUnknown = 0,  ///< decode result for an unrecognized (future) frame kind
  kTask = 1,
  kRevoke = 2,
  kShutdown = 3,
  kHeartbeat = 4,
  kResult = 5,
  kSpans = 6,
};

struct Message {
  MsgType type = MsgType::kShutdown;
  std::uint8_t status = 0;        ///< result: 0 = committed output, 1 = failed
  std::uint64_t shard = 0;
  std::uint64_t attempt = 0;
  std::uint64_t docs_done = 0;    ///< heartbeat: records emitted so far
  std::uint64_t records = 0;      ///< result: lines in the output file
  std::uint64_t bytes = 0;        ///< result: output file size
  std::uint64_t checksum = 0;     ///< result: fnv1a over the output file
  std::uint64_t quarantined = 0;  ///< result: stand-in records in the output
  std::uint64_t restaged = 0;     ///< result: shard file rebuilt from source
  std::uint64_t wall_ms = 0;      ///< result: attempt wall clock
  std::string failed_doc_id;      ///< result (failed): document it died on
  std::string spans;              ///< spans: obs::encode_spans payload
  std::vector<std::string> quarantine;  ///< task: excluded doc ids
};

/// Serializes one message as a complete frame ready for write_all().
std::string encode_frame(const Message& message);

/// Incremental frame decoder over a byte stream (one per worker pipe).
/// feed() whatever read_available() produced, then drain next() until it
/// returns nullopt. next() throws std::runtime_error on a corrupt frame
/// (bad CRC, oversized length, truncated payload) — pipes do not reorder
/// or drop, so corruption means the peer is broken. A frame that passes its
/// CRC but carries an unrecognized type byte is NOT corruption: it decodes
/// as MsgType::kUnknown (fields defaulted) and the caller skips it.
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }
  std::optional<Message> next();

 private:
  std::string buffer_;
};

}  // namespace adaparse::proc
