#include "proc/pipe.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace adaparse::proc {

Pipe::Pipe() {
  int fds[2];
  // No exec follows a campaign fork, but CLOEXEC keeps the fds from
  // leaking into anything else the host process might spawn.
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    throw std::runtime_error("proc::Pipe: pipe2 failed");
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

Pipe::~Pipe() {
  close_read();
  close_write();
}

Pipe::Pipe(Pipe&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)) {}

Pipe& Pipe::operator=(Pipe&& other) noexcept {
  if (this != &other) {
    close_read();
    close_write();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
  }
  return *this;
}

void Pipe::close_read() {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

void Pipe::close_write() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void Pipe::set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("proc::Pipe: fcntl O_NONBLOCK failed");
  }
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE (peer died) or a hard error
  }
  return true;
}

bool read_available(int fd, std::string& out) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF: the peer closed its write end
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // drained
    return false;
  }
}

}  // namespace adaparse::proc
