// Unidirectional byte pipes for coordinator <-> worker messaging.
//
// A proc::Pipe wraps one pipe(2) pair. The campaign coordinator gives each
// forked worker two of them (tasks down, heartbeats/results up), closes the
// ends it does not own after the fork, and polls the read ends
// nonblockingly. The free functions implement the two I/O idioms the
// protocol needs: EINTR-safe full writes of small framed messages, and
// drain-everything-available reads feeding an incremental frame decoder.
#pragma once

#include <string>
#include <string_view>

namespace adaparse::proc {

/// One pipe(2) pair. Ends are closed eagerly (close_read/close_write) after
/// a fork so EOF propagates as soon as the peer exits; the destructor
/// closes whatever is still open.
class Pipe {
 public:
  /// Creates the pair (close-on-exec). Throws std::runtime_error on failure.
  Pipe();
  ~Pipe();

  Pipe(Pipe&& other) noexcept;
  Pipe& operator=(Pipe&& other) noexcept;
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  int read_fd() const { return read_fd_; }
  int write_fd() const { return write_fd_; }

  void close_read();
  void close_write();

  /// Marks `fd` O_NONBLOCK (the coordinator's read ends, so one slow or
  /// dead worker can never block the supervision loop).
  static void set_nonblocking(int fd);

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Writes all of `bytes`, retrying on EINTR. Returns false when the peer is
/// gone (EPIPE) or the write fails — the caller treats the peer as dead;
/// never throws, because it runs on both sides of a fork.
bool write_all(int fd, std::string_view bytes);

/// Appends every byte currently readable from a nonblocking `fd` to `out`.
/// Returns false on EOF (peer closed its write end) or a hard error; true
/// when the pipe is merely drained (EAGAIN).
bool read_available(int fd, std::string& out);

}  // namespace adaparse::proc
