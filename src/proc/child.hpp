// A fork/exec-free child-process handle.
//
// Campaign workers are forked, not exec'd: the child inherits the trained
// engine, the source factory, and the shard plan by memory image, runs a
// C++ callable, and _exit()s with its return code — no serialization of
// model weights, no argv plumbing. The handle owns the pid: nonblocking
// waitpid polling (try_wait) is how the coordinator detects real deaths —
// SIGKILL, OOM kills, crashes — and the destructor SIGKILLs + reaps
// anything still running so no test or bench can leak a child.
#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>

namespace adaparse::proc {

/// How a child ended, decoded from the waitpid status word.
struct ExitStatus {
  bool exited = false;    ///< normal _exit
  int exit_code = 0;      ///< valid when `exited`
  bool signaled = false;  ///< killed by a signal (SIGKILL, SIGSEGV, ...)
  int term_signal = 0;    ///< valid when `signaled`
};

class Child {
 public:
  /// An empty handle (no process).
  Child() = default;

  /// fork()s; the child runs `body` and _exit()s with its return value
  /// (125 if it throws). Never returns in the child. Throws
  /// std::runtime_error if fork fails. The caller must be effectively
  /// single-threaded at the call site (the coordinator loop is), or the
  /// child can inherit a locked allocator.
  static Child spawn(const std::function<int()>& body);

  /// SIGKILLs and reaps a still-running child — a dropped handle must not
  /// leave an orphan worker or a zombie behind.
  ~Child();

  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  pid_t pid() const { return pid_; }

  /// True while the process exists and has not been reaped.
  bool running() const { return pid_ > 0 && !reaped_; }

  /// Nonblocking reap (WNOHANG): the coordinator's death detector.
  /// Returns the exit status once, the first call after the child died;
  /// nullopt while it is still running (or after it was already reaped).
  std::optional<ExitStatus> try_wait();

  /// Blocking reap. Returns a default ExitStatus if already reaped.
  ExitStatus wait();

  /// Sends `sig` (e.g. SIGKILL) to a running child; no-op otherwise.
  void kill(int sig) const;

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  ExitStatus status_;
};

}  // namespace adaparse::proc
