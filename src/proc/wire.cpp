#include "proc/wire.hpp"

#include <stdexcept>

#include "io/fsio.hpp"

namespace adaparse::proc {
namespace {

/// Frames beyond this are garbage lengths, not real messages: a task
/// message is bounded by the quarantine list, which is bounded by the
/// corpus — and even a pathological campaign stays far under this.
constexpr std::uint32_t kMaxPayload = 16u << 20;

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_string(std::string& out, std::string_view value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

/// Cursor over a payload; every get_* throws on truncation so a malformed
/// payload can never read out of bounds.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > data.size()) {
      throw std::runtime_error("proc wire: truncated payload");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(data[pos + i]))
               << (8 * i);
    }
    pos += 4;
    return value;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(data[pos + i]))
               << (8 * i);
    }
    pos += 8;
    return value;
  }
  std::string str() {
    const std::uint32_t size = u32();
    need(size);
    std::string value(data.substr(pos, size));
    pos += size;
    return value;
  }
};

std::string encode_payload(const Message& m) {
  std::string payload;
  payload.push_back(static_cast<char>(m.type));
  payload.push_back(static_cast<char>(m.status));
  put_u64(payload, m.shard);
  put_u64(payload, m.attempt);
  put_u64(payload, m.docs_done);
  put_u64(payload, m.records);
  put_u64(payload, m.bytes);
  put_u64(payload, m.checksum);
  put_u64(payload, m.quarantined);
  put_u64(payload, m.restaged);
  put_u64(payload, m.wall_ms);
  put_string(payload, m.failed_doc_id);
  put_string(payload, m.spans);
  put_u32(payload, static_cast<std::uint32_t>(m.quarantine.size()));
  for (const auto& id : m.quarantine) put_string(payload, id);
  return payload;
}

Message decode_payload(std::string_view payload) {
  Reader reader{payload};
  Message m;
  const std::uint8_t type = reader.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kTask) ||
      type > static_cast<std::uint8_t>(MsgType::kSpans)) {
    // The frame's CRC already checked out, so this is a well-formed frame of
    // a kind this build does not know — a newer peer, not a broken one. Skip
    // it instead of reading fields that may not follow the fixed layout.
    m.type = MsgType::kUnknown;
    return m;
  }
  m.type = static_cast<MsgType>(type);
  m.status = reader.u8();
  m.shard = reader.u64();
  m.attempt = reader.u64();
  m.docs_done = reader.u64();
  m.records = reader.u64();
  m.bytes = reader.u64();
  m.checksum = reader.u64();
  m.quarantined = reader.u64();
  m.restaged = reader.u64();
  m.wall_ms = reader.u64();
  m.failed_doc_id = reader.str();
  m.spans = reader.str();
  const std::uint32_t quarantine_count = reader.u32();
  m.quarantine.reserve(quarantine_count);
  for (std::uint32_t i = 0; i < quarantine_count; ++i) {
    m.quarantine.push_back(reader.str());
  }
  return m;
}

}  // namespace

std::string encode_frame(const Message& message) {
  const std::string payload = encode_payload(message);
  std::string frame;
  frame.reserve(12 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u64(frame, io::fnv1a(payload));
  frame.append(payload);
  return frame;
}

std::optional<Message> FrameDecoder::next() {
  if (buffer_.size() < 12) return std::nullopt;
  Reader header{buffer_};
  const std::uint32_t length = header.u32();
  if (length > kMaxPayload) {
    throw std::runtime_error("proc wire: oversized frame");
  }
  if (buffer_.size() < 12 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  const std::uint64_t crc = header.u64();
  const std::string_view payload(buffer_.data() + 12, length);
  if (io::fnv1a(payload) != crc) {
    throw std::runtime_error("proc wire: frame crc mismatch");
  }
  Message message = decode_payload(payload);
  buffer_.erase(0, 12 + static_cast<std::size_t>(length));
  return message;
}

}  // namespace adaparse::proc
