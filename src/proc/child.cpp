#include "proc/child.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace adaparse::proc {
namespace {

ExitStatus decode(int status) {
  ExitStatus result;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

}  // namespace

Child Child::spawn(const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("proc::Child: fork failed");
  if (pid == 0) {
    int code = 125;
    try {
      code = body();
    } catch (...) {
      // Swallow everything: an exception escaping into the parent's stack
      // frames (gtest, main) would run teardown that belongs to the parent.
    }
    // _exit, not exit: the child shares the parent's atexit handlers and
    // stdio buffers and must not flush or destroy either.
    ::_exit(code);
  }
  Child child;
  child.pid_ = pid;
  return child;
}

Child::~Child() {
  if (running()) {
    ::kill(pid_, SIGKILL);
    wait();
  }
}

Child::Child(Child&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      reaped_(std::exchange(other.reaped_, false)),
      status_(other.status_) {}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (running()) {
      ::kill(pid_, SIGKILL);
      wait();
    }
    pid_ = std::exchange(other.pid_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    status_ = other.status_;
  }
  return *this;
}

std::optional<ExitStatus> Child::try_wait() {
  if (!running()) return std::nullopt;
  int status = 0;
  const pid_t got = ::waitpid(pid_, &status, WNOHANG);
  if (got == 0) return std::nullopt;  // still running
  reaped_ = true;
  if (got == pid_) {
    status_ = decode(status);
  }
  return status_;
}

ExitStatus Child::wait() {
  if (!running()) return status_;
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid_, &status, 0);
  } while (got < 0 && errno == EINTR);
  reaped_ = true;
  if (got == pid_) {
    status_ = decode(status);
  }
  return status_;
}

void Child::kill(int sig) const {
  if (running()) ::kill(pid_, sig);
}

}  // namespace adaparse::proc
