// Synthetic scientific-document corpus generator.
//
// Stands in for the paper's 25k-document benchmark corpus (ArXiv, BioRxiv,
// BMC, MDPI, MedRxiv, Nature across eight domains / 67 sub-categories).
// Every document gets: groundtruth text (prose + LaTeX + SMILES +
// references), an embedded text layer whose fidelity depends on the
// producing tool and age, an image layer (born-digital or degraded scan),
// and metadata. All draws derive from one corpus seed, so corpora are
// reproducible and (parser, document) interactions are deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/document.hpp"
#include "util/rng.hpp"

namespace adaparse::doc {

/// Knobs for corpus generation. Defaults model the paper's mixed "in the
/// wild" benchmark set.
struct GeneratorConfig {
  std::size_t num_documents = 1000;
  std::uint64_t seed = 42;

  int min_pages = 2;
  int max_pages = 18;
  int sentences_per_page = 18;

  /// Fraction of documents that are scans (image layer degraded, text layer
  /// OCR-derived or absent). The paper's born-digital test set uses 0.
  double scanned_fraction = 0.15;
  /// Among scanned documents, probability the text layer is entirely absent.
  double scan_no_text_layer = 0.30;

  /// Probability that a born-digital document's embedded text was produced
  /// by a low-quality toolchain (Ghostscript re-distillation etc.).
  double legacy_toolchain_fraction = 0.12;

  /// Probability a document is unreadable (failure injection); parsers must
  /// survive these. Kept at 0 for metric-calibration corpora.
  double corrupted_fraction = 0.0;

  int min_year = 2021;
  int max_year = 2024;
};

/// Generates documents deterministically from the config.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(GeneratorConfig config);

  /// Generates the whole corpus.
  std::vector<Document> generate() const;

  /// Generates the i-th document only (same result as generate()[i]).
  Document generate_one(std::size_t index) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

/// Convenience: the held-out evaluation set of the paper's Table 1 —
/// 1000 born-digital documents (no scans, no corruption).
GeneratorConfig born_digital_config(std::size_t n = 1000,
                                    std::uint64_t seed = 1234);

/// The large mixed benchmark corpus of Figure 3 (defaults to the paper's
/// n=23,398 when `n` is not overridden).
GeneratorConfig benchmark_config(std::size_t n = 23398,
                                 std::uint64_t seed = 7);

}  // namespace adaparse::doc
