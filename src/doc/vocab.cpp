#include "doc/vocab.hpp"

#include <array>
#include <cctype>

namespace adaparse::doc {
namespace {

// Core English vocabulary in rough frequency order (Zipf sampling assumes
// earlier = more frequent). Function words first, then common academic verbs
// and nouns — the connective tissue of scientific prose.
const std::vector<std::string>& core_vocab() {
  static const std::vector<std::string> v = {
      "the", "of", "and", "a", "to", "in", "is", "that", "we", "for",
      "are", "with", "as", "this", "by", "on", "be", "it", "an", "which",
      "from", "or", "can", "these", "our", "results", "model", "data",
      "method", "using", "show", "between", "each", "where", "both",
      "given", "however", "based", "approach", "function", "distribution",
      "analysis", "system", "values", "observed", "parameters", "measured",
      "significant", "present", "study", "first", "obtained", "consider",
      "different", "number", "large", "small", "higher", "lower", "then",
      "thus", "therefore", "furthermore", "moreover", "respectively",
      "figure", "table", "section", "equation", "shown", "described",
      "proposed", "evaluate", "performance", "sample", "samples", "error",
      "errors", "estimate", "estimates", "experimental", "theoretical",
      "compared", "comparison", "increase", "decrease", "effect", "effects",
      "structure", "process", "processes", "condition", "conditions",
      "observed", "relative", "average", "standard", "deviation", "linear",
      "nonlinear", "constant", "variable", "variables", "random", "case",
      "cases", "set", "sets", "total", "rate", "rates", "time", "times",
      "space", "field", "fields", "order", "term", "terms", "point",
      "points", "value", "problem", "problems", "solution", "solutions",
      "property", "properties", "form", "forms", "state", "states",
      "defined", "definition", "denote", "denotes", "assume", "assumption",
      "follows", "following", "corresponding", "respect", "obtained",
      "derive", "derived", "apply", "applied", "general", "particular",
      "important", "known", "unknown", "possible", "necessary", "sufficient",
      "result", "implies", "holds", "exists", "unique", "proof", "lemma",
      "remark", "note", "example", "examples", "further", "work", "recent",
      "previous", "literature", "review", "novel", "new", "existing",
      "demonstrate", "demonstrated", "indicates", "indicating", "suggests",
      "observed", "measurement", "measurements", "procedure", "protocol",
      "finally", "conclusion", "conclusions", "summary", "discussed",
      "discussion", "provides", "provide", "enables", "allows", "requires",
      "required", "within", "across", "under", "over", "during", "after",
      "before", "while", "although", "despite", "because", "since",
  };
  return v;
}

const std::vector<std::string>& terms_for(Domain d) {
  static const std::array<std::vector<std::string>, kNumDomains> tables = {{
      // mathematics
      {"manifold", "topology", "homomorphism", "eigenvalue", "eigenvector",
       "convergence", "theorem", "corollary", "isomorphism", "polynomial",
       "conjecture", "integrable", "measurable", "cardinality", "functor",
       "sheaf", "cohomology", "operator", "spectrum", "norm", "Banach",
       "Hilbert", "stochastic", "martingale", "ergodic", "asymptotic",
       "holomorphic", "algebraic", "combinatorial", "lattice", "modular",
       "bounded", "compact", "convex", "dense", "orthogonal"},
      // biology
      {"genome", "transcription", "phenotype", "genotype", "enzyme",
       "protein", "mitochondria", "ribosome", "chromosome", "mutation",
       "expression", "receptor", "ligand", "pathway", "signaling",
       "apoptosis", "homeostasis", "metabolism", "organism", "species",
       "evolution", "phylogenetic", "microbiome", "antibody", "antigen",
       "epithelial", "neuron", "synapse", "plasmid", "vector", "codon",
       "polymerase", "kinase", "substrate", "in-vitro", "in-vivo"},
      // chemistry
      {"catalyst", "synthesis", "oxidation", "reduction", "titration",
       "molarity", "stoichiometry", "isomer", "polymer", "monomer",
       "electrophile", "nucleophile", "aromatic", "aliphatic", "chirality",
       "enantiomer", "spectroscopy", "chromatography", "crystallography",
       "solvent", "solute", "precipitate", "equilibrium", "kinetics",
       "thermodynamics", "enthalpy", "entropy", "exothermic", "endothermic",
       "valence", "orbital", "covalent", "ionic", "ligand", "complex",
       "yield"},
      // physics
      {"quantum", "relativity", "entanglement", "boson", "fermion",
       "hamiltonian", "lagrangian", "photon", "electron", "neutrino",
       "superconductor", "plasma", "entropy", "momentum", "angular",
       "oscillation", "wavelength", "frequency", "amplitude", "interference",
       "diffraction", "scattering", "cross-section", "decay", "radiation",
       "magnetic", "electric", "gravitational", "cosmological", "inflaton",
       "gauge", "symmetry", "renormalization", "perturbation", "lattice",
       "condensate"},
      // engineering
      {"actuator", "sensor", "feedback", "controller", "stability",
       "robustness", "bandwidth", "latency", "throughput", "impedance",
       "voltage", "current", "circuit", "transistor", "semiconductor",
       "fatigue", "stress", "strain", "torque", "vibration", "resonance",
       "turbine", "compressor", "combustion", "aerodynamic", "hydraulic",
       "pneumatic", "kinematics", "dynamics", "mechanism", "tolerance",
       "calibration", "simulation", "prototype", "optimization", "payload"},
      // medicine
      {"diagnosis", "prognosis", "etiology", "pathology", "epidemiology",
       "clinical", "placebo", "randomized", "cohort", "biomarker",
       "therapeutic", "dosage", "pharmacokinetics", "hypertension",
       "hypotension", "hyperthyroidism", "hypothyroidism", "oncology",
       "cardiology", "neurology", "immunology", "inflammation", "lesion",
       "tumor", "metastasis", "remission", "relapse", "morbidity",
       "mortality", "comorbidity", "symptom", "syndrome", "chronic",
       "acute", "intervention", "outcome"},
      // economics
      {"elasticity", "equilibrium", "inflation", "deflation", "monetary",
       "fiscal", "liquidity", "volatility", "arbitrage", "hedging",
       "portfolio", "dividend", "utility", "welfare", "externality",
       "oligopoly", "monopoly", "auction", "incentive", "contract",
       "bargaining", "endogenous", "exogenous", "heteroskedasticity",
       "regression", "instrumental", "counterfactual", "treatment",
       "consumption", "investment", "productivity", "unemployment",
       "tariff", "subsidy", "taxation", "GDP"},
      // computer science
      {"algorithm", "complexity", "heuristic", "optimization", "gradient",
       "backpropagation", "transformer", "attention", "embedding",
       "tokenizer", "inference", "training", "overfitting", "regularization",
       "convolution", "recurrent", "reinforcement", "supervised",
       "unsupervised", "clustering", "classification", "benchmark",
       "throughput", "latency", "scheduler", "concurrency", "distributed",
       "cache", "pipeline", "compiler", "semantics", "invariant",
       "recursion", "hashing", "cryptography", "scalability"},
  }};
  return tables[static_cast<std::size_t>(d)];
}

const std::vector<std::string>& latex_commands() {
  static const std::vector<std::string> v = {
      "\\alpha",  "\\beta",   "\\gamma",  "\\delta",  "\\epsilon",
      "\\lambda", "\\mu",     "\\sigma",  "\\omega",  "\\theta",
      "\\sum",    "\\prod",   "\\int",    "\\partial", "\\nabla",
      "\\infty",  "\\forall", "\\exists", "\\approx", "\\leq",
      "\\geq",    "\\times",  "\\cdot",   "\\pm",     "\\sqrt",
  };
  return v;
}

/// Small stock of SMILES fragments combined at random.
const std::vector<std::string>& smiles_fragments() {
  static const std::vector<std::string> v = {
      "CC(=O)O", "c1ccccc1", "C(=O)N", "C1CCCCC1", "N[C@@H](C)",
      "OC(=O)",  "c1ccncc1", "S(=O)(=O)", "C#N",   "C=CC=C",
      "[Na+]",   "[Cl-]",    "CCO",       "CN1C=NC2=C1",
  };
  return v;
}

char upcase(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

}  // namespace

Vocabulary::Vocabulary(Domain domain)
    : domain_(domain), core_(&core_vocab()), domain_terms_(&terms_for(domain)) {}

std::string Vocabulary::word(util::Rng& rng) const {
  // ~80% core English (Zipf-weighted), ~20% domain terms (uniform-ish Zipf).
  if (rng.chance(0.8)) {
    return (*core_)[rng.zipf(core_->size(), 1.05)];
  }
  return (*domain_terms_)[rng.zipf(domain_terms_->size(), 0.7)];
}

std::string Vocabulary::sentence(util::Rng& rng, std::size_t min_words,
                                 std::size_t max_words) const {
  const std::size_t n =
      min_words + static_cast<std::size_t>(rng.below(max_words - min_words + 1));
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    std::string w = word(rng);
    if (i == 0 && !w.empty()) w[0] = upcase(w[0]);
    if (i > 0) out += ' ';
    out += w;
    // Occasional inline citation "[12]" or comma.
    if (i + 1 < n) {
      if (rng.chance(0.03)) {
        out += " [" + std::to_string(1 + rng.below(60)) + "]";
      } else if (rng.chance(0.06)) {
        out += ',';
      }
    }
  }
  out += '.';
  return out;
}

std::string Vocabulary::latex_snippet(util::Rng& rng) const {
  const auto& cmds = latex_commands();
  std::string out = "$";
  const std::size_t n = 1 + rng.below(3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += rng.chance(0.5) ? " + " : " ";
    out += cmds[rng.below(cmds.size())];
    if (rng.chance(0.4)) {
      out += "^{" + std::to_string(2 + rng.below(4)) + "}";
    } else if (rng.chance(0.3)) {
      out += "_{i}";
    }
  }
  out += "$";
  return out;
}

std::string Vocabulary::latex_equation(util::Rng& rng) const {
  const auto& cmds = latex_commands();
  std::string out = "\\begin{equation} ";
  out += cmds[rng.below(cmds.size())];
  out += "_{i=1}";
  if (rng.chance(0.6)) {
    out += " \\frac{" + std::string(cmds[rng.below(cmds.size())]) + "}{" +
           std::string(cmds[rng.below(cmds.size())]) + "^{2}}";
  } else {
    out += " " + std::string(cmds[rng.below(cmds.size())]) + " \\cdot x_{i}";
  }
  out += " \\end{equation}";
  return out;
}

std::string Vocabulary::smiles(util::Rng& rng) const {
  const auto& frags = smiles_fragments();
  std::string out;
  const std::size_t n = 2 + rng.below(3);
  for (std::size_t i = 0; i < n; ++i) {
    out += frags[rng.below(frags.size())];
  }
  return out;
}

std::string Vocabulary::reference(util::Rng& rng, int index) const {
  std::string authors;
  const std::size_t n_authors = 1 + rng.below(3);
  for (std::size_t i = 0; i < n_authors; ++i) {
    if (i > 0) authors += ", ";
    std::string name = (*domain_terms_)[rng.below(domain_terms_->size())];
    name[0] = upcase(name[0]);
    authors += name + " " + static_cast<char>('A' + rng.below(26)) + ".";
  }
  return "[" + std::to_string(index) + "] " + authors + " (" +
         std::to_string(1995 + rng.below(30)) + "). " +
         sentence(rng, 4, 9);
}

std::string Vocabulary::title(util::Rng& rng) const {
  std::string out;
  const std::size_t n = 4 + rng.below(6);
  for (std::size_t i = 0; i < n; ++i) {
    std::string w = rng.chance(0.5)
                        ? (*domain_terms_)[rng.below(domain_terms_->size())]
                        : (*core_)[rng.zipf(core_->size(), 1.05)];
    if (!w.empty()) w[0] = upcase(w[0]);
    if (i > 0) out += ' ';
    out += w;
  }
  return out;
}

}  // namespace adaparse::doc
