#include "doc/document.hpp"

#include <algorithm>
#include <cmath>

namespace adaparse::doc {

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kMathematics: return "mathematics";
    case Domain::kBiology: return "biology";
    case Domain::kChemistry: return "chemistry";
    case Domain::kPhysics: return "physics";
    case Domain::kEngineering: return "engineering";
    case Domain::kMedicine: return "medicine";
    case Domain::kEconomics: return "economics";
    case Domain::kComputerScience: return "computer_science";
  }
  return "?";
}

const char* publisher_name(Publisher p) {
  switch (p) {
    case Publisher::kArxiv: return "arxiv";
    case Publisher::kBiorxiv: return "biorxiv";
    case Publisher::kBmc: return "bmc";
    case Publisher::kMdpi: return "mdpi";
    case Publisher::kMedrxiv: return "medrxiv";
    case Publisher::kNature: return "nature";
  }
  return "?";
}

const char* format_name(PdfFormat f) {
  switch (f) {
    case PdfFormat::kPdfA: return "PDF/A";
    case PdfFormat::kPdf14: return "PDF-1.4";
    case PdfFormat::kPdf17: return "PDF-1.7";
    case PdfFormat::kPdf20: return "PDF-2.0";
  }
  return "?";
}

const char* producer_name(ProducerTool t) {
  switch (t) {
    case ProducerTool::kPdfTex: return "pdfTeX";
    case ProducerTool::kWordProcessor: return "word_processor";
    case ProducerTool::kInDesign: return "indesign";
    case ProducerTool::kGhostscript: return "ghostscript";
    case ProducerTool::kScannerOcr: return "scanner_ocr";
    case ProducerTool::kUnknown: return "unknown";
  }
  return "?";
}

double ImageLayer::quality() const {
  if (born_digital && rotation_deg == 0.0 && blur_sigma == 0.0 &&
      contrast == 1.0 && compression == 0.0) {
    return 1.0;
  }
  // Each degradation multiplies quality down; coefficients calibrated so a
  // heavily degraded scan lands near 0.4-0.6 (where OCR visibly suffers but
  // still functions, matching Table 2's moderate drops).
  double q = born_digital ? 1.0 : 0.92;
  q *= std::exp(-std::abs(rotation_deg) / 20.0);
  q *= std::exp(-blur_sigma / 3.0);
  q *= 1.0 - 0.5 * std::abs(contrast - 1.0);
  q *= 1.0 - 0.35 * compression;
  return std::clamp(q, 0.0, 1.0);
}

std::string Document::full_groundtruth() const {
  std::string out;
  for (std::size_t p = 0; p < groundtruth_pages.size(); ++p) {
    if (p > 0) out += '\n';
    out += groundtruth_pages[p];
  }
  return out;
}

std::string Document::full_text_layer() const {
  std::string out;
  for (std::size_t p = 0; p < text_layer.pages.size(); ++p) {
    if (p > 0) out += '\n';
    out += text_layer.pages[p];
  }
  return out;
}

}  // namespace adaparse::doc
