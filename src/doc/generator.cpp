#include "doc/generator.hpp"

#include <algorithm>
#include <cmath>

#include "doc/vocab.hpp"
#include "text/corrupt.hpp"

namespace adaparse::doc {
namespace {

Domain sample_domain(util::Rng& rng) {
  // Mixture loosely reflecting preprint-server volume.
  static const std::vector<double> weights = {0.10, 0.16, 0.10, 0.16,
                                              0.10, 0.16, 0.06, 0.16};
  return static_cast<Domain>(rng.categorical(weights));
}

Publisher sample_publisher(util::Rng& rng, Domain d) {
  switch (d) {
    case Domain::kBiology:
      return rng.chance(0.5) ? Publisher::kBiorxiv
                             : (rng.chance(0.5) ? Publisher::kBmc
                                                : Publisher::kNature);
    case Domain::kMedicine:
      return rng.chance(0.5) ? Publisher::kMedrxiv
                             : (rng.chance(0.5) ? Publisher::kBmc
                                                : Publisher::kMdpi);
    case Domain::kMathematics:
    case Domain::kPhysics:
    case Domain::kComputerScience:
      return rng.chance(0.8) ? Publisher::kArxiv : Publisher::kNature;
    default:
      return static_cast<Publisher>(rng.below(kNumPublishers));
  }
}

ProducerTool sample_producer(util::Rng& rng, Domain d, bool scanned) {
  if (scanned) return ProducerTool::kScannerOcr;
  switch (d) {
    case Domain::kMathematics:
    case Domain::kPhysics:
    case Domain::kComputerScience:
      return rng.chance(0.9) ? ProducerTool::kPdfTex
                             : ProducerTool::kGhostscript;
    case Domain::kMedicine:
    case Domain::kBiology:
      return rng.chance(0.55) ? ProducerTool::kWordProcessor
                              : (rng.chance(0.5) ? ProducerTool::kInDesign
                                                 : ProducerTool::kPdfTex);
    default:
      return static_cast<ProducerTool>(rng.below(4));  // any born-digital tool
  }
}

/// Per-domain densities of math and chemistry constructs (per 100 words).
void domain_densities(Domain d, util::Rng& rng, double& math_density,
                      double& chem_density) {
  switch (d) {
    case Domain::kMathematics:
      math_density = rng.uniform(4.0, 10.0);
      chem_density = 0.0;
      break;
    case Domain::kPhysics:
      math_density = rng.uniform(3.0, 8.0);
      chem_density = rng.chance(0.1) ? rng.uniform(0.0, 0.5) : 0.0;
      break;
    case Domain::kComputerScience:
      // The paper notes ML papers can "boast hundreds of LaTeX expressions,
      // more akin to a mathematics paper" — heavy-tailed density.
      math_density = rng.chance(0.3) ? rng.uniform(4.0, 9.0)
                                     : rng.uniform(0.5, 3.0);
      chem_density = 0.0;
      break;
    case Domain::kChemistry:
      math_density = rng.uniform(0.5, 2.5);
      chem_density = rng.uniform(1.5, 5.0);
      break;
    case Domain::kBiology:
      math_density = rng.uniform(0.1, 1.0);
      chem_density = rng.chance(0.4) ? rng.uniform(0.2, 2.0) : 0.0;
      break;
    case Domain::kEngineering:
      math_density = rng.uniform(1.0, 4.0);
      chem_density = 0.0;
      break;
    case Domain::kMedicine:
      math_density = rng.uniform(0.0, 0.8);
      chem_density = rng.chance(0.25) ? rng.uniform(0.1, 1.0) : 0.0;
      break;
    case Domain::kEconomics:
      math_density = rng.uniform(0.5, 3.5);
      chem_density = 0.0;
      break;
  }
}

std::string make_page(const Vocabulary& vocab, util::Rng& rng,
                      int sentences, double math_density, double chem_density,
                      double layout_complexity, bool is_last_page) {
  std::string page;
  for (int s = 0; s < sentences; ++s) {
    if (s > 0) page += ' ';
    std::string sentence = vocab.sentence(rng);
    // Inline math: insert snippets mid-sentence with per-word probability
    // derived from the per-100-word density.
    if (math_density > 0.0 && rng.chance(math_density * 0.16)) {
      const std::size_t cut = sentence.size() / 2;
      sentence.insert(cut, " " + vocab.latex_snippet(rng) + " ");
    }
    if (chem_density > 0.0 && rng.chance(chem_density * 0.08)) {
      sentence += " " + vocab.smiles(rng);
    }
    page += sentence;
    // Display equations cluster in math-dense, layout-complex documents.
    if (math_density > 2.0 && rng.chance(0.05 + 0.05 * layout_complexity)) {
      page += ' ' + vocab.latex_equation(rng);
    }
  }
  if (is_last_page) {
    page += '\n';
    const int n_refs = 4 + static_cast<int>(rng.below(10));
    for (int r = 0; r < n_refs; ++r) {
      page += vocab.reference(rng, r + 1);
      page += '\n';
    }
  }
  return page;
}

/// Builds the embedded text layer from groundtruth, degraded according to
/// producing tool, age, and (for scans) OCR quality.
TextLayer make_text_layer(const Document& document, util::Rng& rng,
                          const GeneratorConfig& config) {
  TextLayer layer;
  layer.present = true;

  const auto& meta = document.meta;
  // Base rates calibrated so that verbatim extraction of a typical layer
  // scores BLEU ~0.5 against groundtruth (paper Table 1) — real embedded
  // text diverges from the rendered article through missing figure/caption
  // text, ligature and hyphenation damage, and reading-order drift.
  double base_char_noise = 0.0;   // character substitutions
  double word_sub_rate = 0.0;     // whole-word confusions
  double word_drop_rate = 0.0;    // text not present in the layer at all
  double scramble_rate = 0.0;     // scrambled words
  double whitespace_rate = 0.0;   // injected whitespace
  double mojibake_rate = 0.0;     // encoding damage
  double latex_mangle = 0.55;     // extraction always struggles with math

  switch (meta.producer) {
    case ProducerTool::kPdfTex:
      base_char_noise = 0.004;
      word_sub_rate = 0.011;
      word_drop_rate = 0.013;
      whitespace_rate = 0.006;
      scramble_rate = 0.008;
      latex_mangle = 0.65;  // TeX-heavy docs have the worst math extraction
      break;
    case ProducerTool::kWordProcessor:
      base_char_noise = 0.008;
      word_sub_rate = 0.020;
      word_drop_rate = 0.030;
      whitespace_rate = 0.010;
      scramble_rate = 0.010;
      latex_mangle = 0.35;
      break;
    case ProducerTool::kInDesign:
      base_char_noise = 0.010;
      word_sub_rate = 0.024;
      word_drop_rate = 0.036;
      whitespace_rate = 0.016;  // layout-rich: text runs reordered/spaced
      scramble_rate = 0.016;
      latex_mangle = 0.45;
      break;
    case ProducerTool::kGhostscript:
      base_char_noise = 0.030;
      word_sub_rate = 0.050;
      word_drop_rate = 0.080;
      whitespace_rate = 0.022;
      mojibake_rate = 0.006;
      scramble_rate = 0.050;
      latex_mangle = 0.80;
      break;
    case ProducerTool::kScannerOcr: {
      // Embedded layer is whatever the scanner's OCR produced: noise scales
      // with image degradation.
      const double q = document.image_layer.quality();
      base_char_noise = 0.020 + 0.08 * (1.0 - q);
      word_sub_rate = 0.035 + 0.05 * (1.0 - q);
      word_drop_rate = 0.050 + 0.08 * (1.0 - q);
      scramble_rate = 0.030 + 0.14 * (1.0 - q);
      whitespace_rate = 0.008 + 0.02 * (1.0 - q);
      mojibake_rate = 0.004 + 0.012 * (1.0 - q);
      latex_mangle = 0.9;
      break;
    }
    case ProducerTool::kUnknown:
      base_char_noise = 0.022;
      word_sub_rate = 0.040;
      word_drop_rate = 0.060;
      whitespace_rate = 0.014;
      scramble_rate = 0.025;
      break;
  }

  // Old documents accumulated lossy re-processing.
  const int age = std::max(0, config.max_year - meta.year);
  base_char_noise *= 1.0 + 0.3 * age;
  mojibake_rate *= 1.0 + 0.5 * age;

  // Layout complexity leaks whitespace, ordering artifacts, and lost
  // regions into the embedded layer (multi-column merge errors, text in
  // figures/tables invisible to extraction).
  whitespace_rate += 0.015 * document.layout_complexity;
  scramble_rate += 0.015 * document.layout_complexity;
  word_drop_rate += 0.05 * document.layout_complexity;

  // Idiosyncratic severity: real documents vary for reasons no metadata
  // field records (font subsetting, producer versions, template quirks).
  // This is what keeps parser-accuracy prediction hard (paper: R^2 ~ 40%).
  const double severity = std::exp(rng.normal(0.0, 0.45));
  base_char_noise *= severity;
  word_sub_rate *= severity;
  word_drop_rate *= severity;
  scramble_rate *= severity;
  whitespace_rate *= severity;

  double fidelity_acc = 0.0;
  layer.pages.reserve(document.groundtruth_pages.size());
  for (const auto& gt : document.groundtruth_pages) {
    std::string t = text::mangle_latex(gt, latex_mangle, rng);
    if (document.chem_density > 0.0) {
      t = text::corrupt_smiles(t, 0.6, rng);  // embedded chem text is fragile
    }
    t = text::drop_words(t, word_drop_rate, rng);
    t = text::substitute_words(t, word_sub_rate, rng);
    t = text::substitute_chars(t, base_char_noise, rng);
    t = text::scramble_words(t, scramble_rate, rng);
    t = text::inject_whitespace(t, whitespace_rate, rng);
    t = text::mojibake(t, mojibake_rate, rng);
    layer.pages.push_back(std::move(t));
    // Fidelity is a diagnostic summary, not a metric: keep it in (0, 1].
    fidelity_acc += 1.0 - std::min(0.95, base_char_noise * 8.0 +
                                             word_sub_rate * 1.5 +
                                             word_drop_rate * 1.5 +
                                             scramble_rate * 3.0 +
                                             whitespace_rate * 2.0);
  }
  layer.fidelity = document.groundtruth_pages.empty()
                       ? 1.0
                       : fidelity_acc /
                             static_cast<double>(document.groundtruth_pages.size());
  return layer;
}

}  // namespace

CorpusGenerator::CorpusGenerator(GeneratorConfig config)
    : config_(std::move(config)) {}

Document CorpusGenerator::generate_one(std::size_t index) const {
  util::Rng corpus_rng(config_.seed);
  // Stable per-document stream independent of generation order.
  util::Rng rng(util::mix64(corpus_rng.next_u64(), index + 1));

  Document document;
  document.id = "doc-" + std::to_string(config_.seed) + "-" +
                std::to_string(index);
  document.seed = util::mix64(config_.seed, index * 2 + 1);

  const bool scanned = rng.chance(config_.scanned_fraction);

  document.meta.domain = sample_domain(rng);
  document.meta.publisher = sample_publisher(rng, document.meta.domain);
  document.meta.subcategory =
      static_cast<int>(static_cast<std::size_t>(document.meta.domain) * 8 +
                       rng.below(9));  // 8 domains x ~8-9 subcats ≈ 67
  document.meta.year = static_cast<int>(
      rng.range(config_.min_year, config_.max_year));
  if (scanned && rng.chance(0.6)) {
    // Scans skew old.
    document.meta.year = static_cast<int>(rng.range(1990, config_.min_year));
  }
  document.meta.producer = sample_producer(rng, document.meta.domain, scanned);
  document.meta.format = scanned
                             ? (rng.chance(0.7) ? PdfFormat::kPdf14
                                                : PdfFormat::kPdfA)
                             : (rng.chance(0.6) ? PdfFormat::kPdf17
                                                : PdfFormat::kPdf20);
  if (!scanned && rng.chance(config_.legacy_toolchain_fraction)) {
    document.meta.producer = ProducerTool::kGhostscript;
    document.meta.format = PdfFormat::kPdf14;
  }

  document.layout_complexity = std::pow(rng.uniform(), 1.6);  // skew simple
  domain_densities(document.meta.domain, rng, document.math_density,
                   document.chem_density);

  Vocabulary vocab(document.meta.domain);
  document.meta.title = vocab.title(rng);

  const int pages = static_cast<int>(
      rng.range(config_.min_pages, config_.max_pages));
  document.meta.num_pages = pages;
  document.groundtruth_pages.reserve(static_cast<std::size_t>(pages));
  for (int p = 0; p < pages; ++p) {
    const int sentences = std::max(
        4, config_.sentences_per_page +
               static_cast<int>(rng.range(-4, 4)));
    document.groundtruth_pages.push_back(
        make_page(vocab, rng, sentences, document.math_density,
                  document.chem_density, document.layout_complexity,
                  p == pages - 1));
  }

  // Image layer.
  if (scanned) {
    document.image_layer.born_digital = false;
    document.image_layer.rotation_deg = rng.uniform(-4.0, 4.0);
    document.image_layer.blur_sigma = rng.uniform(0.0, 1.8);
    document.image_layer.contrast = rng.uniform(0.7, 1.2);
    document.image_layer.compression = rng.uniform(0.0, 0.6);
  }

  // Text layer (after image layer: scanner OCR quality depends on it).
  if (scanned && rng.chance(config_.scan_no_text_layer)) {
    document.text_layer.present = false;
    document.text_layer.fidelity = 0.0;
  } else {
    document.text_layer = make_text_layer(document, rng, config_);
  }

  document.corrupted = rng.chance(config_.corrupted_fraction);
  return document;
}

std::vector<Document> CorpusGenerator::generate() const {
  std::vector<Document> docs;
  docs.reserve(config_.num_documents);
  for (std::size_t i = 0; i < config_.num_documents; ++i) {
    docs.push_back(generate_one(i));
  }
  return docs;
}

GeneratorConfig born_digital_config(std::size_t n, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_documents = n;
  config.seed = seed;
  config.scanned_fraction = 0.0;
  config.corrupted_fraction = 0.0;
  return config;
}

GeneratorConfig benchmark_config(std::size_t n, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_documents = n;
  config.seed = seed;
  config.scanned_fraction = 0.18;
  config.legacy_toolchain_fraction = 0.15;
  return config;
}

}  // namespace adaparse::doc
