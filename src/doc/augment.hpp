// Evaluation-time augmentations (paper §6.2, Tables 2 and 3).
//
// Table 2: "random rotations, contrast adjustments, Gaussian blurring, and
// compression ... applied to a subset of 15% of documents" — image-layer
// degradation that affects OCR/ViT parsers but not text extraction.
//
// Table 3: "15% of the embedded text layers are replaced with the output of
// common tools (Tesseract or GROBID)" — text-layer perturbation that hits
// extraction parsers but leaves the image layer intact.
#pragma once

#include <vector>

#include "doc/document.hpp"
#include "util/rng.hpp"

namespace adaparse::doc {

struct ImageAugmentOptions {
  double fraction = 0.15;        ///< share of documents affected
  double max_rotation_deg = 6.0;
  double max_blur_sigma = 2.2;
  double contrast_lo = 0.6;
  double contrast_hi = 1.3;
  double max_compression = 0.7;
};

/// Degrades the image layer of a random `fraction` of documents in place.
/// Affected documents are no longer "born digital". Returns the number of
/// documents modified.
std::size_t augment_image_layer(std::vector<Document>& docs,
                                const ImageAugmentOptions& options,
                                util::Rng& rng);

struct TextAugmentOptions {
  double fraction = 0.15;  ///< share of documents whose text layer is replaced
  /// When replacing, probability of using the Tesseract-style degradation
  /// (otherwise GROBID-style structural loss).
  double tesseract_share = 0.5;
};

/// Replaces the embedded text layer of a random `fraction` of documents with
/// simulated Tesseract/GROBID output derived from the groundtruth. Returns
/// the number of documents modified.
std::size_t augment_text_layer(std::vector<Document>& docs,
                               const TextAugmentOptions& options,
                               util::Rng& rng);

}  // namespace adaparse::doc
