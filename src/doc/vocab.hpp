// Domain vocabularies and generators for scientific prose constructs.
//
// The corpus generator composes document text from (a) a shared core
// English vocabulary, (b) per-domain technical terms, (c) LaTeX equation
// snippets, (d) SMILES strings, and (e) citation/reference markers. Terms
// are drawn Zipf-distributed, which gives parser output realistic n-gram
// statistics for the BLEU/ROUGE metrics to discriminate on.
#pragma once

#include <string>
#include <vector>

#include "doc/document.hpp"
#include "util/rng.hpp"

namespace adaparse::doc {

/// Provides the word stock for one domain. Cheap to copy (points into
/// static storage for the shared lists).
class Vocabulary {
 public:
  explicit Vocabulary(Domain domain);

  /// Draws one word: mixes core English (Zipf) with domain terms.
  std::string word(util::Rng& rng) const;

  /// Draws a sentence of `min_words..max_words` words with capitalization
  /// and a terminal period; may embed a citation marker.
  std::string sentence(util::Rng& rng, std::size_t min_words = 8,
                       std::size_t max_words = 24) const;

  /// A LaTeX inline-math snippet, e.g. "$\\frac{\\alpha}{\\beta^{2}}$".
  std::string latex_snippet(util::Rng& rng) const;

  /// A display equation (multi-token LaTeX).
  std::string latex_equation(util::Rng& rng) const;

  /// A SMILES-like chemical string, e.g. "CC(=O)Oc1ccccc1C(=O)O".
  std::string smiles(util::Rng& rng) const;

  /// A bibliography-style reference line.
  std::string reference(util::Rng& rng, int index) const;

  /// A plausible paper title for metadata.
  std::string title(util::Rng& rng) const;

  Domain domain() const { return domain_; }

 private:
  Domain domain_;
  const std::vector<std::string>* core_;
  const std::vector<std::string>* domain_terms_;
};

}  // namespace adaparse::doc
