// The document model: the synthetic stand-in for a scientific PDF.
//
// A real PDF offers a parser three things: an embedded *text layer* (what
// extraction tools read), a rendered *image layer* (what OCR/ViT models
// read), and *metadata* (producer tool, format, year, ...). The paper's
// routing logic consumes exactly those three surfaces, so the model carries
// all of them plus the hidden groundtruth used for evaluation only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adaparse::doc {

/// Scientific domain of a document (the paper's corpus spans these eight).
enum class Domain : std::uint8_t {
  kMathematics,
  kBiology,
  kChemistry,
  kPhysics,
  kEngineering,
  kMedicine,
  kEconomics,
  kComputerScience,
};
inline constexpr std::size_t kNumDomains = 8;
const char* domain_name(Domain d);

/// Source venue (paper §6.2).
enum class Publisher : std::uint8_t {
  kArxiv,
  kBiorxiv,
  kBmc,
  kMdpi,
  kMedrxiv,
  kNature,
};
inline constexpr std::size_t kNumPublishers = 6;
const char* publisher_name(Publisher p);

/// PDF format/version recorded in metadata (a CLS I/II feature).
enum class PdfFormat : std::uint8_t { kPdfA, kPdf14, kPdf17, kPdf20 };
inline constexpr std::size_t kNumFormats = 4;
const char* format_name(PdfFormat f);

/// Authoring/producing tool recorded in metadata. Strongly correlated with
/// text-layer quality: LaTeX engines embed clean text; scanner pipelines
/// embed whatever their OCR produced.
enum class ProducerTool : std::uint8_t {
  kPdfTex,
  kWordProcessor,
  kInDesign,
  kGhostscript,
  kScannerOcr,
  kUnknown,
};
inline constexpr std::size_t kNumProducers = 6;
const char* producer_name(ProducerTool t);

/// Document metadata available without parsing the content.
struct Metadata {
  Publisher publisher = Publisher::kArxiv;
  Domain domain = Domain::kComputerScience;
  int subcategory = 0;       ///< 0..66 (the paper's 67 sub-categories)
  int year = 2023;           ///< publication year
  PdfFormat format = PdfFormat::kPdf17;
  ProducerTool producer = ProducerTool::kPdfTex;
  int num_pages = 1;
  std::string title;
};

/// Rendered-page quality descriptor — the state of the "image layer".
/// Born-digital renders are pristine; scans carry degradation parameters
/// that raise OCR/ViT error rates.
struct ImageLayer {
  bool born_digital = true;
  double rotation_deg = 0.0;    ///< residual skew of the scan
  double blur_sigma = 0.0;      ///< Gaussian blur strength
  double contrast = 1.0;        ///< 1.0 = nominal
  double compression = 0.0;     ///< JPEG-artifact strength in [0,1]

  /// Aggregate quality in [0,1]; 1 = perfect render. Computed from the
  /// degradation parameters; OCR-style parsers key their error rates off it.
  double quality() const;
};

/// The embedded text layer of the synthetic PDF.
struct TextLayer {
  /// Per-page embedded text; may be empty (scan without OCR layer).
  std::vector<std::string> pages;
  /// Fidelity of the embedded layer w.r.t. groundtruth in [0,1]; stored for
  /// inspection/tests — parsers never read it (they see only `pages`).
  double fidelity = 1.0;
  bool present = true;  ///< false = no embedded text at all
};

/// A synthetic scientific document.
struct Document {
  std::string id;
  Metadata meta;

  /// Hidden groundtruth text per page (evaluation only; parsers must not
  /// read this directly — the simulated parsers access it via their error
  /// channels, standing in for "reading the page image").
  std::vector<std::string> groundtruth_pages;

  TextLayer text_layer;
  ImageLayer image_layer;

  // Latent generation attributes (drive parser error rates; also hidden
  // from the routing models, which see only text/metadata).
  double layout_complexity = 0.0;  ///< multi-column/table/figure density, [0,1]
  double math_density = 0.0;       ///< LaTeX constructs per 100 words
  double chem_density = 0.0;       ///< SMILES strings per 100 words

  /// Per-document RNG stream seed: parsers fork their noise streams from it
  /// so every (parser, document) pair is deterministic.
  std::uint64_t seed = 0;

  /// Failure-injection flag: file is unreadable (truncated/encrypted).
  bool corrupted = false;

  /// Concatenated groundtruth across pages (newline-separated).
  std::string full_groundtruth() const;
  /// Concatenated embedded text across pages (newline-separated).
  std::string full_text_layer() const;
  std::size_t num_pages() const { return groundtruth_pages.size(); }
};

}  // namespace adaparse::doc
