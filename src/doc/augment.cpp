#include "doc/augment.hpp"

#include "text/corrupt.hpp"

namespace adaparse::doc {

std::size_t augment_image_layer(std::vector<Document>& docs,
                                const ImageAugmentOptions& options,
                                util::Rng& rng) {
  std::size_t modified = 0;
  for (auto& document : docs) {
    if (!rng.chance(options.fraction)) continue;
    auto& img = document.image_layer;
    img.born_digital = false;
    img.rotation_deg = rng.uniform(-options.max_rotation_deg,
                                   options.max_rotation_deg);
    img.blur_sigma = rng.uniform(0.0, options.max_blur_sigma);
    img.contrast = rng.uniform(options.contrast_lo, options.contrast_hi);
    img.compression = rng.uniform(0.0, options.max_compression);
    ++modified;
  }
  return modified;
}

std::size_t augment_text_layer(std::vector<Document>& docs,
                               const TextAugmentOptions& options,
                               util::Rng& rng) {
  std::size_t modified = 0;
  for (auto& document : docs) {
    if (!rng.chance(options.fraction)) continue;
    auto& layer = document.text_layer;
    layer.pages.clear();
    layer.present = true;
    if (rng.chance(options.tesseract_share)) {
      // Tesseract-style: character confusions + partial line loss, strength
      // tied to the page render quality.
      const double q = document.image_layer.quality();
      const double char_noise = 0.045 + 0.06 * (1.0 - q);
      const double word_drop = 0.045 + 0.05 * (1.0 - q);
      for (const auto& gt : document.groundtruth_pages) {
        std::string t = text::mangle_latex(gt, 0.92, rng);
        t = text::drop_words(t, word_drop, rng);
        t = text::substitute_words(t, 0.05, rng);
        t = text::substitute_chars(t, char_noise, rng);
        t = text::scramble_words(t, 0.03, rng);
        layer.pages.push_back(std::move(t));
      }
      layer.fidelity = 0.6 * q;
    } else {
      // GROBID-style: clean characters but structural loss — whole regions
      // (equations, references, captions) dropped from the layer.
      for (const auto& gt : document.groundtruth_pages) {
        std::string t = text::mangle_latex(gt, 0.2, rng);
        t = text::drop_words(t, 0.18, rng);  // lost regions
        layer.pages.push_back(std::move(t));
      }
      layer.fidelity = 0.55;
    }
    ++modified;
  }
  return modified;
}

}  // namespace adaparse::doc
