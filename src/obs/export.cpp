#include "obs/export.hpp"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "hpc/trace.hpp"

namespace adaparse::obs {
namespace {

void json_escape(std::ostream& os, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (c < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << *s;
        }
    }
  }
}

void hex_id(std::ostream& os, std::uint64_t id) {
  os << "\"0x" << std::hex << id << std::dec << '"';
}

void micros(std::ostream& os, std::uint64_t ns) {
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ns) / 1000.0;
  os.unsetf(std::ios::floatfield);
}

}  // namespace

void write_trace_json(std::ostream& os, std::vector<SpanRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // enclosing span first
            });
  const std::uint32_t self = static_cast<std::uint32_t>(::getpid());
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint32_t named_pid = 0;
  bool named_any = false;
  for (const SpanRecord& rec : records) {
    if (!named_any || rec.pid != named_pid) {
      // First record of each pid group: emit its process-name metadata.
      if (!first) os << ',';
      first = false;
      os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << rec.pid
         << ",\"args\":{\"name\":\""
         << (rec.pid == self ? "adaparse coordinator" : "adaparse worker")
         << " (pid " << rec.pid << ")\"}}";
      named_pid = rec.pid;
      named_any = true;
    }
    os << ",{\"ph\":\"X\",\"pid\":" << rec.pid << ",\"tid\":" << rec.tid
       << ",\"ts\":";
    micros(os, rec.start_ns);
    os << ",\"dur\":";
    micros(os, rec.dur_ns);
    os << ",\"cat\":\"";
    json_escape(os, rec.category);
    os << "\",\"name\":\"";
    json_escape(os, rec.name);
    os << "\",\"args\":{\"span_id\":";
    hex_id(os, rec.id);
    os << ",\"parent_id\":";
    hex_id(os, rec.parent);
    if (rec.instant) os << ",\"instant\":1";
    if (rec.tag != nullptr) {
      os << ",\"tag\":\"";
      json_escape(os, rec.tag);
      os << '"';
    }
    if (rec.arg1_name != nullptr) {
      os << ",\"";
      json_escape(os, rec.arg1_name);
      os << "\":" << rec.arg1;
    }
    if (rec.arg2_name != nullptr) {
      os << ",\"";
      json_escape(os, rec.arg2_name);
      os << "\":" << rec.arg2;
    }
    os << "}}";
  }
  os << "]}\n";
}

std::string trace_to_json(std::vector<SpanRecord> records) {
  std::ostringstream os;
  write_trace_json(os, std::move(records));
  return os.str();
}

bool write_env_trace() { return write_env_trace(Tracer::instance().collect()); }

bool write_env_trace(std::vector<SpanRecord> records) {
  Tracer& tracer = Tracer::instance();
  const std::string& path = tracer.env_path();
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_trace_json(out, std::move(records));
  out.flush();
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
  return true;
}

std::string render_flame_summary(const std::vector<SpanRecord>& records,
                                 std::size_t width) {
  struct Stage {
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };
  // map keeps the output alphabetical within equal totals (deterministic).
  std::map<std::string, Stage> stages;
  for (const SpanRecord& rec : records) {
    if (rec.instant) continue;
    Stage& stage = stages[std::string(rec.category) + "/" + rec.name];
    stage.total_ns += rec.dur_ns;
    ++stage.count;
  }
  std::vector<std::pair<std::string, Stage>> rows(stages.begin(), stages.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total_ns > b.second.total_ns;
                   });
  std::size_t name_width = 0;
  std::uint64_t max_ns = 1;
  for (const auto& [name, stage] : rows) {
    name_width = std::max(name_width, name.size());
    max_ns = std::max(max_ns, stage.total_ns);
  }
  std::ostringstream os;
  for (const auto& [name, stage] : rows) {
    const double share =
        static_cast<double>(stage.total_ns) / static_cast<double>(max_ns);
    // One cell per column, partially filled at the bar's leading edge, fed
    // through the same glyph ramp the HPC utilization traces use.
    std::vector<double> cells(width, 0.0);
    for (std::size_t i = 0; i < width; ++i) {
      cells[i] = std::clamp(share * static_cast<double>(width) -
                                static_cast<double>(i),
                            0.0, 1.0);
    }
    os << std::left << std::setw(static_cast<int>(name_width)) << name
       << std::right << ' ' << std::setw(10) << std::fixed
       << std::setprecision(3)
       << static_cast<double>(stage.total_ns) / 1e9 << " s " << std::setw(8)
       << stage.count << "x  " << hpc::render_row(cells) << '\n';
    os.unsetf(std::ios::floatfield);
  }
  return os.str();
}

}  // namespace adaparse::obs
