#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace adaparse::obs {

struct Registry::Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<Quantile> quantile;
};

struct Registry::Family {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<std::unique_ptr<Series>> series;
};

Registry::Registry() = default;
Registry::~Registry() = default;

namespace {

void render_value(std::ostream& os, const Value& v) {
  if (v.integral) {
    os << static_cast<long long>(std::llround(v.num));
  } else {
    os << v.num;
  }
}

void render_labels(std::ostream& os, const Labels& labels,
                   const Labels& extra = {}) {
  if (labels.empty() && extra.empty()) return;
  os << '{';
  bool first = true;
  for (const Labels* group : {&labels, &extra}) {
    for (const auto& [key, value] : *group) {
      if (!first) os << ',';
      first = false;
      os << key << "=\"" << Registry::escape_label(value) << '"';
    }
  }
  os << '}';
}

const char* type_name(Registry::Kind kind);

}  // namespace

// ----------------------------------------------------------- instruments --

void Counter::add(Value v) {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  value_.integral = value_.integral && v.integral;
  value_.num += v.num;
}

void Counter::set(Value v) {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  value_ = v;
}

double Counter::value() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return value_.num;
}

void Gauge::set(Value v) {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  value_ = v;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return value_.num;
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  std::size_t bucket = edges_.size();  // +Inf
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (v <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  sum_ += v;
  ++count_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return sum_;
}

void Quantile::observe(double v) {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  for (util::P2Quantile& est : estimators_) est.add(v);
  ++count_;
}

double Quantile::estimate(std::size_t q_index) const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return estimators_.at(q_index).value();
}

std::uint64_t Quantile::count() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return count_;
}

// -------------------------------------------------------------- registry --

Registry::Family& Registry::family_locked(const std::string& name,
                                          const std::string& help, Kind kind) {
  for (const auto& f : families_) {
    if (f->name == name) {
      if (f->kind != kind) {
        throw std::logic_error("metric family '" + name +
                               "' reused with a different instrument kind");
      }
      return *f;
    }
  }
  families_.push_back(std::make_unique<Family>());
  Family& family = *families_.back();
  family.name = name;
  family.help = help;
  family.kind = kind;
  return family;
}

void Registry::declare(const std::string& name, const std::string& help,
                       Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  family_locked(name, help, kind);
}

Registry::Series& Registry::series(const std::string& name,
                                   const std::string& help, Kind kind,
                                   const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_locked(name, help, kind);
  for (const auto& s : family.series) {
    if (s->labels == labels) return *s;
  }
  family.series.push_back(std::make_unique<Series>());
  Series& s = *family.series.back();
  s.labels = labels;
  return s;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  Series& s = series(name, help, Kind::kCounter, labels);
  if (!s.counter) {
    s.counter = std::make_unique<Counter>();
    s.counter->owner_ = this;
  }
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  Series& s = series(name, help, Kind::kGauge, labels);
  if (!s.gauge) {
    s.gauge = std::make_unique<Gauge>();
    s.gauge->owner_ = this;
  }
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> edges,
                               const Labels& labels) {
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (edges[i] <= edges[i - 1]) {
      throw std::logic_error("histogram edges must be strictly increasing");
    }
  }
  Series& s = series(name, help, Kind::kHistogram, labels);
  if (!s.histogram) {
    s.histogram = std::make_unique<Histogram>();
    s.histogram->owner_ = this;
    s.histogram->edges_ = std::move(edges);
    s.histogram->buckets_.assign(s.histogram->edges_.size() + 1, 0);
  }
  return *s.histogram;
}

Quantile& Registry::quantile(const std::string& name, const std::string& help,
                             std::vector<double> qs, const Labels& labels) {
  Series& s = series(name, help, Kind::kQuantile, labels);
  if (!s.quantile) {
    s.quantile = std::make_unique<Quantile>();
    s.quantile->owner_ = this;
    for (const double q : qs) s.quantile->estimators_.emplace_back(q);
    s.quantile->qs_ = std::move(qs);
  }
  return *s.quantile;
}

namespace {

const char* type_name(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter:
      return "counter";
    case Registry::Kind::kHistogram:
      return "histogram";
    case Registry::Kind::kGauge:
    case Registry::Kind::kQuantile:
      break;
  }
  return "gauge";
}

}  // namespace

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& family : families_) {
    if (!family->help.empty()) {
      os << "# HELP " << family->name << ' ' << family->help << '\n';
    }
    os << "# TYPE " << family->name << ' ' << type_name(family->kind) << '\n';
    for (const auto& s : family->series) {
      switch (family->kind) {
        case Kind::kCounter: {
          os << family->name;
          render_labels(os, s->labels);
          os << ' ';
          render_value(os, s->counter->value_);
          os << '\n';
          break;
        }
        case Kind::kGauge: {
          os << family->name;
          render_labels(os, s->labels);
          os << ' ';
          render_value(os, s->gauge->value_);
          os << '\n';
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = *s->histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.edges_.size(); ++i) {
            cumulative += h.buckets_[i];
            std::ostringstream le;
            le << h.edges_[i];
            os << family->name << "_bucket";
            render_labels(os, s->labels, {{"le", le.str()}});
            os << ' ' << cumulative << '\n';
          }
          os << family->name << "_bucket";
          render_labels(os, s->labels, {{"le", "+Inf"}});
          os << ' ' << h.count_ << '\n';
          os << family->name << "_sum";
          render_labels(os, s->labels);
          os << ' ' << h.sum_ << '\n';
          os << family->name << "_count";
          render_labels(os, s->labels);
          os << ' ' << h.count_ << '\n';
          break;
        }
        case Kind::kQuantile: {
          const Quantile& q = *s->quantile;
          for (std::size_t i = 0; i < q.qs_.size(); ++i) {
            std::ostringstream qv;
            qv << q.qs_[i];
            os << family->name;
            render_labels(os, s->labels, {{"quantile", qv.str()}});
            os << ' ' << q.estimators_[i].value() << '\n';
          }
          break;
        }
      }
    }
  }
  return os.str();
}

std::vector<double> Registry::log_buckets(double lo, double hi,
                                          std::size_t count) {
  if (!(lo > 0.0) || !(hi > lo) || count < 2) {
    throw std::logic_error("log_buckets requires 0 < lo < hi and count >= 2");
  }
  std::vector<double> edges;
  edges.reserve(count);
  const double ratio = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(lo * std::exp(ratio * static_cast<double>(i)));
  }
  edges.back() = hi;  // land exactly on hi despite float rounding
  return edges;
}

std::string Registry::escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace adaparse::obs
