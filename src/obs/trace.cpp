#include "obs/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

namespace adaparse::obs {
namespace {

constexpr std::size_t kRingCapacity = 16384;  // records per thread (~1.5 MB)

// Single-producer (owning thread) / single-consumer (collect) ring. The
// producer publishes with a release store of head; the consumer acquires head
// and releases tail. A full ring drops the record — recording never blocks.
struct Ring {
  std::vector<SpanRecord> slots{kRingCapacity};
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> in_use{false};
  std::uint32_t tid = 0;
  // Owner-thread-only state (never touched by the collector).
  std::vector<std::uint64_t> stack;  // open SpanGuard ids, innermost last
  std::uint64_t next_seq = 1;

  void push(const SpanRecord& rec) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= kRingCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[h % kRingCapacity] = rec;
    head.store(h + 1, std::memory_order_release);
  }

  void drain_into(std::vector<SpanRecord>& out) {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    const std::uint64_t h = head.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i < h; ++i) out.push_back(slots[i % kRingCapacity]);
    tail.store(h, std::memory_order_release);
  }
};

// All rings ever created, intentionally leaked: records must stay collectable
// after their thread exits, and leaking sidesteps shutdown-order races with
// thread_local destructors. Exited threads return their ring to the free pool
// for the next thread, so the set stays bounded by peak thread concurrency.
struct Registry {
  std::mutex mutex;
  std::uint32_t next_tid = 0;
  std::vector<Ring*> rings;
  std::vector<SpanRecord> adopted;
  std::mutex adopted_mutex;
  std::mutex collect_mutex;
  std::mutex intern_mutex;
  std::unordered_set<std::string> interned;  // node-based: stable pointers
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_pid{0};
std::atomic<std::uint64_t> g_trace_id{0};
std::atomic<std::uint64_t> g_parent_span{0};
std::chrono::steady_clock::time_point g_epoch;
std::string* g_env_path = nullptr;

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

struct RingLease {
  Ring* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

thread_local RingLease t_lease;

Ring& acquire_ring() {
  if (t_lease.ring != nullptr) return *t_lease.ring;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Ring* ring : reg.rings) {
    if (!ring->in_use.load(std::memory_order_acquire)) {
      ring->in_use.store(true, std::memory_order_release);
      ring->stack.clear();
      // A fresh tid per acquisition: the dead thread's still-buffered
      // records copied the old tid at write time, so re-stamping keeps
      // sequentially-live threads on distinct trace lanes without
      // touching what they already recorded.
      ring->tid = reg.next_tid++;
      t_lease.ring = ring;
      return *ring;
    }
  }
  Ring* ring = new Ring();
  ring->tid = reg.next_tid++;
  ring->in_use.store(true, std::memory_order_release);
  reg.rings.push_back(ring);
  t_lease.ring = ring;
  return *ring;
}

std::uint64_t make_span_id(Ring& ring) {
  const std::uint64_t pid = g_pid.load(std::memory_order_relaxed);
  return (pid << 40) | (static_cast<std::uint64_t>(ring.tid & 0xFFF) << 28) |
         (ring.next_seq++ & 0x0FFFFFFF);
}

std::uint64_t current_parent(const Ring& ring) {
  if (!ring.stack.empty()) return ring.stack.back();
  return g_parent_span.load(std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() {
  g_epoch = std::chrono::steady_clock::now();
  g_pid.store(static_cast<std::uint32_t>(::getpid()), std::memory_order_relaxed);
  g_env_path = new std::string();
  if (const char* path = std::getenv("ADAPARSE_TRACE");
      path != nullptr && *path != '\0') {
    *g_env_path = path;
    g_enabled.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

bool Tracer::enabled() const { return g_enabled.load(std::memory_order_relaxed); }

void Tracer::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::set_context(const TraceContext& ctx) {
  g_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  g_parent_span.store(ctx.parent_span, std::memory_order_relaxed);
}

TraceContext Tracer::context() const {
  return {g_trace_id.load(std::memory_order_relaxed),
          g_parent_span.load(std::memory_order_relaxed)};
}

const char* Tracer::intern(std::string_view s) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.intern_mutex);
  return reg.interned.emplace(s).first->c_str();
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

void Tracer::instant(const char* category, const char* name,
                     const char* arg1_name, std::uint64_t arg1,
                     const char* arg2_name, std::uint64_t arg2,
                     const char* tag) {
  if (!enabled()) return;
  Ring& ring = acquire_ring();
  SpanRecord rec;
  rec.start_ns = now_ns();
  rec.dur_ns = 0;
  rec.id = make_span_id(ring);
  rec.parent = current_parent(ring);
  rec.category = category;
  rec.name = name;
  rec.tag = tag;
  rec.arg1_name = arg1_name;
  rec.arg1 = arg1;
  rec.arg2_name = arg2_name;
  rec.arg2 = arg2;
  rec.pid = g_pid.load(std::memory_order_relaxed);
  rec.tid = ring.tid;
  rec.instant = true;
  ring.push(rec);
}

std::vector<SpanRecord> Tracer::collect() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> collect_lock(reg.collect_mutex);
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (Ring* ring : reg.rings) ring->drain_into(out);
  }
  {
    std::lock_guard<std::mutex> lock(reg.adopted_mutex);
    out.insert(out.end(), reg.adopted.begin(), reg.adopted.end());
    reg.adopted.clear();
  }
  return out;
}

void Tracer::adopt(std::vector<SpanRecord> records) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.adopted_mutex);
  reg.adopted.insert(reg.adopted.end(), records.begin(), records.end());
}

std::uint64_t Tracer::dropped() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const Ring* ring : reg.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Tracer::on_fork_child() {
  // The child is single-threaded (fork() clones only the calling thread), so
  // walking every ring here is race-free by construction.
  Registry& reg = registry();
  Ring* mine = t_lease.ring;
  for (Ring* ring : reg.rings) {
    ring->tail.store(ring->head.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
    ring->stack.clear();
    if (ring != mine) ring->in_use.store(false, std::memory_order_relaxed);
  }
  reg.adopted.clear();
  g_pid.store(static_cast<std::uint32_t>(::getpid()), std::memory_order_relaxed);
}

const std::string& Tracer::env_path() const { return *g_env_path; }

bool tracing_enabled() {
  Tracer::instance();  // make sure ADAPARSE_TRACE has been consulted
  return g_enabled.load(std::memory_order_relaxed);
}

#ifndef ADAPARSE_OBS_DISABLED

SpanGuard::SpanGuard(const char* category, const char* name) {
  if (!Tracer::instance().enabled()) return;
  Ring& ring = acquire_ring();
  rec_.start_ns = Tracer::instance().now_ns();
  rec_.id = make_span_id(ring);
  rec_.parent = current_parent(ring);
  rec_.category = category;
  rec_.name = name;
  rec_.pid = g_pid.load(std::memory_order_relaxed);
  rec_.tid = ring.tid;
  ring.stack.push_back(rec_.id);
  active_ = true;
}

SpanGuard::SpanGuard(const char* category, const char* name,
                     const char* arg1_name, std::uint64_t arg1)
    : SpanGuard(category, name) {
  if (active_) {
    rec_.arg1_name = arg1_name;
    rec_.arg1 = arg1;
  }
}

SpanGuard::SpanGuard(const char* category, const char* name,
                     const char* arg1_name, std::uint64_t arg1,
                     const char* arg2_name, std::uint64_t arg2)
    : SpanGuard(category, name, arg1_name, arg1) {
  if (active_) {
    rec_.arg2_name = arg2_name;
    rec_.arg2 = arg2;
  }
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  Ring& ring = acquire_ring();
  rec_.dur_ns = Tracer::instance().now_ns() - rec_.start_ns;
  // Pop our id. Guards are strictly scoped, so it is the innermost entry.
  if (!ring.stack.empty() && ring.stack.back() == rec_.id) ring.stack.pop_back();
  ring.push(rec_);
}

void SpanGuard::arg(const char* name, std::uint64_t value) {
  if (!active_) return;
  if (rec_.arg1_name == nullptr || std::strcmp(rec_.arg1_name, name) == 0) {
    rec_.arg1_name = name;
    rec_.arg1 = value;
  } else {
    rec_.arg2_name = name;
    rec_.arg2 = value;
  }
}

void SpanGuard::tag(const char* tag) {
  if (active_) rec_.tag = tag;
}

#endif  // ADAPARSE_OBS_DISABLED

// --------------------------------------------------------------------------
// kSpans payload codec. Layout: u32 count, then per record the fixed u64/u32
// fields followed by length-prefixed strings (absent strings encode as the
// sentinel 0xFFFF, distinct from a present-but-empty string).
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_str(std::string& out, const char* s) {
  if (s == nullptr) {
    out.push_back('\xFF');
    out.push_back('\xFF');
    return;
  }
  const std::size_t len = std::strlen(s);
  if (len >= 0xFFFF) throw std::runtime_error("span string too long");
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.append(s, len);
}

struct SpanReader {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > data.size()) throw std::runtime_error("span payload truncated");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  const char* str() {
    need(2);
    const std::uint32_t len =
        static_cast<unsigned char>(data[pos]) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + 1]))
         << 8);
    pos += 2;
    if (len == 0xFFFF) return nullptr;
    need(len);
    const char* out =
        Tracer::instance().intern(std::string_view(data.data() + pos, len));
    pos += len;
    return out;
  }
};

}  // namespace

std::string encode_spans(const std::vector<SpanRecord>& records) {
  std::string out;
  out.reserve(16 + records.size() * 80);
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const SpanRecord& rec : records) {
    put_u64(out, rec.start_ns);
    put_u64(out, rec.dur_ns);
    put_u64(out, rec.id);
    put_u64(out, rec.parent);
    put_u64(out, rec.arg1);
    put_u64(out, rec.arg2);
    put_u32(out, rec.pid);
    put_u32(out, rec.tid);
    out.push_back(rec.instant ? '\1' : '\0');
    put_str(out, rec.category);
    put_str(out, rec.name);
    put_str(out, rec.tag);
    put_str(out, rec.arg1_name);
    put_str(out, rec.arg2_name);
  }
  return out;
}

std::vector<SpanRecord> decode_spans(std::string_view payload) {
  SpanReader reader{payload};
  const std::uint32_t count = reader.u32();
  std::vector<SpanRecord> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SpanRecord rec;
    rec.start_ns = reader.u64();
    rec.dur_ns = reader.u64();
    rec.id = reader.u64();
    rec.parent = reader.u64();
    rec.arg1 = reader.u64();
    rec.arg2 = reader.u64();
    rec.pid = reader.u32();
    rec.tid = reader.u32();
    reader.need(1);
    rec.instant = payload[reader.pos++] != '\0';
    rec.category = reader.str();
    rec.name = reader.str();
    rec.tag = reader.str();
    rec.arg1_name = reader.str();
    rec.arg2_name = reader.str();
    if (rec.category == nullptr) rec.category = "";
    if (rec.name == nullptr) rec.name = "";
    out.push_back(rec);
  }
  if (reader.pos != payload.size()) {
    throw std::runtime_error("span payload has trailing bytes");
  }
  return out;
}

}  // namespace adaparse::obs
