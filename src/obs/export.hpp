// Trace exporters: Chrome trace-event / Perfetto JSON and an ASCII per-stage
// flame summary for bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace adaparse::obs {

// Renders records as a Chrome trace-event JSON object ("traceEvents" array of
// ph:"X" duration slices, instants as zero-duration slices, plus ph:"M"
// process-name metadata). Events are sorted by (pid, tid, ts), timestamps are
// microseconds since the tracer epoch, and span/parent ids are emitted as hex
// strings under args (u64 ids do not survive a double round-trip). Load the
// file at https://ui.perfetto.dev or chrome://tracing.
std::string trace_to_json(std::vector<SpanRecord> records);
void write_trace_json(std::ostream& os, std::vector<SpanRecord> records);

// Collects everything buffered in Tracer::instance() and writes it to the
// path from ADAPARSE_TRACE. Returns false (and writes nothing) when the env
// knob is unset; throws std::runtime_error when the file cannot be written.
// The overload writes already-collected records instead (Tracer::collect()
// drains the rings, so a caller that collected for its own reporting must
// pass those records along rather than collect twice).
bool write_env_trace();
bool write_env_trace(std::vector<SpanRecord> records);

// Aggregates spans by category:name and renders one line per stage — total
// busy time, call count, and a sparkline-style bar scaled to the busiest
// stage (the hpc::render_row glyph ramp). Instant events are skipped.
std::string render_flame_summary(const std::vector<SpanRecord>& records,
                                 std::size_t width = 32);

}  // namespace adaparse::obs
