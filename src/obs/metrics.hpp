// Shared metrics registry: counters, gauges, log-bucket histograms, and
// P²-quantile summaries behind ONE Prometheus text renderer.
//
// Two usage styles, both first-class:
//   * live instruments — create once, update from anywhere (thread-safe via
//     the registry mutex; none of these sit on a per-document hot path);
//   * snapshot builder — build a fresh Registry inside an existing stats
//     object's render call and set absolute values. This is how
//     serve::MetricsRegistry and campaign::render_prometheus migrate onto the
//     shared renderer without changing their exposition byte-for-byte.
//
// Rendering rules (chosen to reproduce the legacy expositions exactly):
//   * families render in creation order, series within a family in creation
//     order;
//   * a family with empty help renders no "# HELP" line (campaign style);
//   * integral values render as integers, real values through default
//     ostream formatting (so 0.25 -> "0.25", 4.0 -> "4");
//   * label values are escaped (backslash, quote, newline).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace adaparse::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

// A sample that remembers whether it was set from an integral type, so the
// renderer can print `7` for counts but `0.25` / `2.5e+06` for reals.
struct Value {
  double num = 0.0;
  bool integral = true;

  Value() = default;
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Value(T v) : num(static_cast<double>(v)), integral(true) {}  // NOLINT
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  Value(T v) : num(static_cast<double>(v)), integral(false) {}  // NOLINT
};

class Registry;

class Counter {
 public:
  void add(Value v);
  void set(Value v);  // snapshot-builder style: absolute value
  double value() const;

 private:
  friend class Registry;
  Registry* owner_ = nullptr;
  Value value_;
};

class Gauge {
 public:
  void set(Value v);
  double value() const;

 private:
  friend class Registry;
  Registry* owner_ = nullptr;
  Value value_;
};

// Fixed-edge histogram (cumulative Prometheus buckets + _sum/_count). Edges
// are upper bounds, strictly increasing; a trailing +Inf bucket is implicit.
class Histogram {
 public:
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;

 private:
  friend class Registry;
  Registry* owner_ = nullptr;
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;  // edges_.size() + 1 (last = +Inf)
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

// Streaming quantile estimates (util::P2Quantile per requested q), rendered
// as a gauge family with a `quantile` label — the serve exposition style.
class Quantile {
 public:
  void observe(double v);
  double estimate(std::size_t q_index) const;
  std::uint64_t count() const;

 private:
  friend class Registry;
  Registry* owner_ = nullptr;
  std::vector<double> qs_;
  std::vector<util::P2Quantile> estimators_;
  std::uint64_t count_ = 0;
};

class Registry {
 public:
  Registry();   // out of line: Family is incomplete here
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  enum class Kind { kCounter, kGauge, kHistogram, kQuantile };

  // Creates (or finds) a family without adding a series — lets a snapshot
  // builder emit HELP/TYPE headers even while a labeled family has zero
  // series, as the serve exposition does before any tenant exists.
  void declare(const std::string& name, const std::string& help, Kind kind);

  // Instrument handles are stable for the registry's lifetime. Repeated calls
  // with the same (name, labels) return the same instrument; a name reused
  // with a different instrument kind throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> edges, const Labels& labels = {});
  Quantile& quantile(const std::string& name, const std::string& help,
                     std::vector<double> qs, const Labels& labels = {});

  // The one Prometheus text renderer.
  std::string render_prometheus() const;

  // `count` log-spaced upper bounds from lo to hi inclusive (lo, hi > 0).
  static std::vector<double> log_buckets(double lo, double hi,
                                         std::size_t count);
  static std::string escape_label(const std::string& value);

 private:
  struct Series;
  struct Family;
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  friend class Quantile;

  Family& family_locked(const std::string& name, const std::string& help,
                        Kind kind);
  Series& series(const std::string& name, const std::string& help, Kind kind,
                 const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace adaparse::obs
