// In-process tracer: thread-local lock-free ring buffers of fixed-size span
// records, drained on demand into one coherent trace.
//
// Design constraints, in order:
//   1. The disabled path must be invisible to the SIMD hot loops: one relaxed
//      atomic load per span site, no allocation, no branch beyond the check.
//      Defining ADAPARSE_OBS_DISABLED at compile time removes even that.
//   2. Recording a span never blocks: each OS thread owns a single-producer /
//      single-consumer ring of fixed-size records. When the ring is full the
//      record is dropped and counted — tracing sheds load, it never applies
//      backpressure to the pipeline.
//   3. Spans survive fork(): a campaign worker inherits the tracer's memory
//      image (epoch, trace id, parent context) and calls
//      Tracer::on_fork_child() to discard the coordinator's buffered records
//      and re-stamp its pid; its spans are later re-adopted by the
//      coordinator via a proc/wire kSpans frame (see encode_spans below), so
//      one multi-process campaign yields a single pid/tid-tagged trace.
//
// Timestamps are steady-clock nanoseconds relative to the tracer epoch.
// CLOCK_MONOTONIC is machine-wide on Linux and the epoch is inherited across
// fork, so coordinator and worker spans share one timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adaparse::obs {

// One completed span (or instant event, dur_ns == 0 && instant == true).
// Fixed size, trivially copyable; string fields are interned pointers with
// process lifetime (see Tracer::intern), so records can be memcpy'd into the
// ring. `tag` carries a low-cardinality dynamic label (tenant name, parser
// name); args carry two optional u64 measurements.
struct SpanRecord {
  std::uint64_t start_ns = 0;  // since tracer epoch (steady clock)
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;       // unique within the trace; never 0
  std::uint64_t parent = 0;   // 0 = root
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  const char* category = "";
  const char* name = "";
  const char* tag = nullptr;
  const char* arg1_name = nullptr;
  const char* arg2_name = nullptr;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;  // small per-process thread index, not the OS tid
  bool instant = false;
};

// Trace id + parent span id carried across process boundaries. The
// coordinator sets this before forking workers; the child inherits it through
// the fork memory image, so every worker-side root span parents to the
// coordinator's campaign span without any wire handshake.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

class Tracer {
 public:
  // Process-wide singleton. Reads ADAPARSE_TRACE on first touch: a non-empty
  // value enables tracing and remembers the path for write_env_trace().
  static Tracer& instance();

  bool enabled() const;
  void set_enabled(bool on);

  void set_context(const TraceContext& ctx);
  TraceContext context() const;

  // Copies `s` into process-lifetime storage and returns a stable pointer;
  // repeated calls with the same string return the same pointer. Use for
  // dynamic low-cardinality labels (tenant names) that must outlive the
  // caller's string. Takes a mutex — not for hot per-record use.
  const char* intern(std::string_view s);

  // Emit an instant event (zero-duration mark) on the calling thread,
  // parented to the innermost open SpanGuard.
  void instant(const char* category, const char* name,
               const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
               const char* arg2_name = nullptr, std::uint64_t arg2 = 0,
               const char* tag = nullptr);

  // Drain every thread's ring plus all adopted foreign records. Safe to call
  // while other threads keep recording (they are single-producer rings; the
  // collector is the single consumer, serialized internally).
  std::vector<SpanRecord> collect();

  // Merge records harvested from another process (a kSpans frame). Records
  // keep their original pid/tid/ids.
  void adopt(std::vector<SpanRecord> records);

  // Total records dropped because a ring was full.
  std::uint64_t dropped() const;

  // Must be called by a forked child before it records anything: discards
  // ring contents inherited from the parent (the parent still owns those
  // records), drops adopted foreign records, and re-stamps the cached pid.
  // The trace context and epoch are deliberately preserved.
  void on_fork_child();

  // Path from ADAPARSE_TRACE, or empty when the env knob is unset.
  const std::string& env_path() const;

  std::uint64_t now_ns() const;  // ns since the tracer epoch

 private:
  Tracer();
  friend class SpanGuard;
};

// True when span recording is on. Use to gate argument computation that is
// only worth doing when a record will actually be written.
bool tracing_enabled();

#ifndef ADAPARSE_OBS_DISABLED

// RAII span: records [construction, destruction) on the calling thread.
// Nesting on one thread links parents automatically; the outermost span on a
// thread parents to Tracer::context().parent_span.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name);
  SpanGuard(const char* category, const char* name, const char* arg1_name,
            std::uint64_t arg1);
  SpanGuard(const char* category, const char* name, const char* arg1_name,
            std::uint64_t arg1, const char* arg2_name, std::uint64_t arg2);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  // Attach or update an argument after construction (e.g. a count known only
  // at scope exit). Fills arg1 then arg2; further names overwrite arg2.
  void arg(const char* name, std::uint64_t value);
  void tag(const char* tag);       // interned pointer, see Tracer::intern
  std::uint64_t id() const { return rec_.id; }
  bool active() const { return active_; }

 private:
  SpanRecord rec_;
  bool active_ = false;
};

#else  // ADAPARSE_OBS_DISABLED: span sites compile to nothing.

class SpanGuard {
 public:
  SpanGuard(const char*, const char*) {}
  SpanGuard(const char*, const char*, const char*, std::uint64_t) {}
  SpanGuard(const char*, const char*, const char*, std::uint64_t, const char*,
            std::uint64_t) {}
  void arg(const char*, std::uint64_t) {}
  void tag(const char*) {}
  std::uint64_t id() const { return 0; }
  bool active() const { return false; }
};

#endif

// Wire codec for shipping span batches between processes (the payload of a
// proc::MsgType::kSpans frame). decode_spans interns the string fields so the
// returned records have process-lifetime names like locally recorded ones.
// Throws std::runtime_error on a malformed payload.
std::string encode_spans(const std::vector<SpanRecord>& records);
std::vector<SpanRecord> decode_spans(std::string_view payload);

}  // namespace adaparse::obs
