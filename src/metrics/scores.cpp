#include "metrics/scores.hpp"

#include <algorithm>

#include "metrics/bleu.hpp"
#include "metrics/edit_distance.hpp"
#include "metrics/rouge.hpp"
#include "text/tokenize.hpp"

namespace adaparse::metrics {

DocumentScores score_document(std::span<const std::string> candidate_pages,
                              std::span<const std::string> reference_pages) {
  DocumentScores scores;
  if (reference_pages.empty()) {
    scores.coverage = candidate_pages.empty() ? 1.0 : 0.0;
    return scores;
  }

  // Size the joined strings up front so page concatenation never reallocates.
  std::size_t cand_bytes = 0, ref_bytes = 0;
  for (std::size_t p = 0; p < reference_pages.size(); ++p) {
    if (p < candidate_pages.size()) cand_bytes += candidate_pages[p].size() + 1;
    ref_bytes += reference_pages[p].size() + 1;
  }
  std::size_t retrieved = 0;
  std::string candidate, reference;
  candidate.reserve(cand_bytes);
  reference.reserve(ref_bytes);
  for (std::size_t p = 0; p < reference_pages.size(); ++p) {
    if (p < candidate_pages.size() && !candidate_pages[p].empty()) {
      ++retrieved;
      if (!candidate.empty()) candidate += '\n';
      candidate += candidate_pages[p];
    }
    if (!reference.empty()) reference += '\n';
    reference += reference_pages[p];
  }
  scores.coverage =
      static_cast<double>(retrieved) / static_cast<double>(reference_pages.size());
  scores.bleu = bleu(candidate, reference);
  scores.rouge = rouge(candidate, reference);
  scores.car = character_accuracy(candidate, reference);
  scores.tokens = text::count_tokens(candidate);
  return scores;
}

void CorpusScores::add(const DocumentScores& doc) {
  coverage_.add(doc.coverage);
  bleu_.add(doc.bleu);
  rouge_.add(doc.rouge);
  car_.add(doc.car);
  bleu_values_.push_back(doc.bleu);
  total_tokens_ += doc.tokens;
  if (doc.bleu > accept_threshold_) accepted_tokens_ += doc.tokens;
}

double CorpusScores::accepted_tokens() const {
  if (total_tokens_ == 0) return 0.0;
  return static_cast<double>(accepted_tokens_) /
         static_cast<double>(total_tokens_);
}

}  // namespace adaparse::metrics
