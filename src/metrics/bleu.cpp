#include "metrics/bleu.hpp"

#include <algorithm>
#include <cmath>

#include "text/ngram.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace adaparse::metrics {
namespace {

/// Core scorer over pre-hashed token streams: each side's tokens are hashed
/// exactly once, and every n-gram order chains the same per-token hashes.
BleuResult bleu_hashed(const text::TokenHashes& candidate,
                       const text::TokenHashes& reference,
                       const BleuOptions& options) {
  BleuResult result;
  result.candidate_len = candidate.size();
  result.reference_len = reference.size();
  result.precisions.assign(options.max_order, 0.0);

  if (candidate.empty() || reference.empty()) {
    result.score = 0.0;
    return result;
  }

  double log_sum = 0.0;
  bool any_order_scored = false;
  for (std::size_t n = 1; n <= options.max_order; ++n) {
    if (candidate.size() < n) {
      // Candidate too short for this order: treat precision as fully smoothed.
      const double p = options.smoothing_k > 0.0
                           ? options.smoothing_k / (options.smoothing_k + 1.0)
                           : 0.0;
      result.precisions[n - 1] = p;
      if (p <= 0.0) {
        result.score = 0.0;
        return result;
      }
      log_sum += std::log(p);
      any_order_scored = true;
      continue;
    }
    const auto cand_counts = text::count_ngrams(candidate, n);
    const auto ref_counts = text::count_ngrams(reference, n);
    const auto matches = text::overlap(cand_counts, ref_counts);
    const auto possible = candidate.size() - n + 1;
    double p;
    if (matches > 0) {
      p = static_cast<double>(matches) / static_cast<double>(possible);
    } else if (options.smoothing_k > 0.0) {
      p = options.smoothing_k /
          (static_cast<double>(possible) + options.smoothing_k);
    } else {
      result.precisions[n - 1] = 0.0;
      result.score = 0.0;
      return result;
    }
    result.precisions[n - 1] = p;
    log_sum += std::log(p);
    any_order_scored = true;
  }
  if (!any_order_scored) {
    result.score = 0.0;
    return result;
  }

  const auto c = static_cast<double>(candidate.size());
  const auto r = static_cast<double>(reference.size());
  result.brevity_penalty = c >= r ? 1.0 : std::exp(1.0 - r / c);
  result.score = result.brevity_penalty *
                 std::exp(log_sum / static_cast<double>(options.max_order));
  result.score = std::clamp(result.score, 0.0, 1.0);
  return result;
}

}  // namespace

BleuResult bleu_tokens(std::span<const std::string> candidate,
                       std::span<const std::string> reference,
                       const BleuOptions& options) {
  return bleu_hashed(text::hash_tokens(candidate), text::hash_tokens(reference),
                     options);
}

BleuResult bleu_tokens(std::span<const std::string_view> candidate,
                       std::span<const std::string_view> reference,
                       const BleuOptions& options) {
  return bleu_hashed(text::hash_tokens(candidate), text::hash_tokens(reference),
                     options);
}

double bleu(std::string_view candidate, std::string_view reference,
            const BleuOptions& options) {
  // Tokenize as views and hash each token exactly once per side; no token
  // strings are materialized anywhere in the scoring path.
  text::TokenHashes cand, ref;
  cand.reserve(candidate.size() / 6 + 1);
  ref.reserve(reference.size() / 6 + 1);
  text::for_each_token(candidate, [&](std::string_view t) {
    cand.push_back(util::hash64(t));
  });
  text::for_each_token(reference, [&](std::string_view t) {
    ref.push_back(util::hash64(t));
  });
  return bleu_hashed(cand, ref, options).score;
}

}  // namespace adaparse::metrics
