// Character-level edit distance and the character accuracy rate (CAR).
//
// The paper reports CAR as a character-level accuracy; it is defined as
// 1 - dist/len(reference), clamped to [0,1]. Full Levenshtein is O(nm),
// "computationally prohibitive for ultra-long text sequences" (paper §2.2),
// so we provide a banded variant (Ukkonen): if the true distance exceeds
// the band it returns the band bound, which is exactly what a bounded
// accuracy metric needs.
#pragma once

#include <cstddef>
#include <string_view>

namespace adaparse::metrics {

/// Exact Levenshtein distance (unit costs). O(nm) time, O(min(nm)) space.
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance if it is <= `band`,
/// otherwise returns `band + 1` (a certified lower-bound cutoff).
std::size_t levenshtein_banded(std::string_view a, std::string_view b,
                               std::size_t band);

/// Character accuracy rate = max(0, 1 - dist/|reference|).
/// Uses a relative band of `band_frac * |reference|` so that badly broken
/// candidates short-circuit toward 0, and compares at most `max_chars` of
/// each side (prefix) — document-level texts make the full quadratic DP
/// "computationally prohibitive" (paper §2.2), and a multi-page prefix is
/// an unbiased sample for a rate metric. An empty candidate scores 0.
double character_accuracy(std::string_view candidate,
                          std::string_view reference,
                          double band_frac = 0.85,
                          std::size_t max_chars = 6000);

}  // namespace adaparse::metrics
