// ROUGE (Lin, 2004) recall-oriented n-gram and LCS overlap metrics.
//
// ROUGE-N reports n-gram recall/precision/F1 against the reference;
// ROUGE-L uses the longest common subsequence. For document-length inputs
// an exact O(nm) LCS is too expensive, so rouge_l computes the LCS over
// token sequences with a window-capped Hunt–Szymanski-style fallback:
// sequences longer than `max_tokens` are block-sampled deterministically.
//
// The view overloads are the hot path: candidate and reference are
// tokenized once into `string_view`s (see `rouge`) and shared between the
// n-gram and LCS variants without copying a single token.
#pragma once

#include <span>
#include <string>
#include <string_view>

namespace adaparse::metrics {

struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// ROUGE-N over pre-tokenized sequences (n >= 1).
RougeScore rouge_n_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t n);
RougeScore rouge_n_tokens(std::span<const std::string_view> candidate,
                          std::span<const std::string_view> reference,
                          std::size_t n);

/// ROUGE-N over raw strings.
RougeScore rouge_n(std::string_view candidate, std::string_view reference,
                   std::size_t n);

/// ROUGE-L (LCS-based) over pre-tokenized sequences. `max_tokens` caps the
/// quadratic LCS cost; longer inputs are deterministically subsampled in
/// contiguous blocks, preserving long-range ordering structure.
RougeScore rouge_l_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t max_tokens = 4000);
RougeScore rouge_l_tokens(std::span<const std::string_view> candidate,
                          std::span<const std::string_view> reference,
                          std::size_t max_tokens = 4000);

/// ROUGE-L over raw strings.
RougeScore rouge_l(std::string_view candidate, std::string_view reference,
                   std::size_t max_tokens = 4000);

/// The single "ROUGE" number reported in the paper's tables: we use the
/// ROUGE-L F1, the most common headline variant.
double rouge(std::string_view candidate, std::string_view reference);

}  // namespace adaparse::metrics
