// Aggregate quality scoring: per-document and corpus-level metrics matching
// the columns of the paper's Tables 1-3 (Coverage, BLEU, ROUGE, CAR, AT).
// Win rate (WR) is computed from the preference study (src/pref).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace adaparse::metrics {

/// Quality of a single document parse against groundtruth.
struct DocumentScores {
  double coverage = 0.0;  ///< retrieved pages / groundtruth pages
  double bleu = 0.0;      ///< document-level BLEU
  double rouge = 0.0;     ///< document-level ROUGE-L F1
  double car = 0.0;       ///< character accuracy rate
  std::size_t tokens = 0; ///< candidate token count (for AT weighting)
};

/// Scores a parse given per-page candidate and reference texts. Pages the
/// parser dropped must appear as empty strings in `candidate_pages` (or the
/// vector may be shorter); coverage counts non-empty retrieved pages.
DocumentScores score_document(std::span<const std::string> candidate_pages,
                              std::span<const std::string> reference_pages);

/// Corpus accumulator for Tables 1-3 style rows.
class CorpusScores {
 public:
  /// Default acceptance threshold for the AT metric: a parse contributes its
  /// tokens as "accepted" iff its document BLEU exceeds this.
  static constexpr double kDefaultAcceptThreshold = 0.33;

  explicit CorpusScores(double accept_threshold = kDefaultAcceptThreshold)
      : accept_threshold_(accept_threshold) {}

  void add(const DocumentScores& doc);

  std::size_t count() const { return coverage_.count(); }
  double coverage() const { return coverage_.mean(); }
  double bleu() const { return bleu_.mean(); }
  double rouge() const { return rouge_.mean(); }
  double car() const { return car_.mean(); }

  /// Accepted-token rate: fraction of emitted tokens belonging to documents
  /// whose BLEU exceeded the acceptance threshold.
  double accepted_tokens() const;

  /// Per-document BLEU values seen so far (used for difficulty ranking and
  /// correlation studies).
  const std::vector<double>& bleu_values() const { return bleu_values_; }

 private:
  double accept_threshold_;
  util::RunningStats coverage_, bleu_, rouge_, car_;
  std::size_t accepted_tokens_ = 0;
  std::size_t total_tokens_ = 0;
  std::vector<double> bleu_values_;
};

}  // namespace adaparse::metrics
