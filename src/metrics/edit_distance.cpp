#include "metrics/edit_distance.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace adaparse::metrics {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) return levenshtein(b, a);
  if (b.empty()) return a.size();
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev_row = row[j];
      const std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      prev_diag = prev_row;
    }
  }
  return row[b.size()];
}

std::size_t levenshtein_banded(std::string_view a, std::string_view b,
                               std::size_t band) {
  if (a.size() < b.size()) return levenshtein_banded(b, a, band);
  // Length difference alone forces at least that many edits.
  if (a.size() - b.size() > band) return band + 1;
  if (b.empty()) return a.size();

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  // Row-wise DP restricted to |i-j| <= band (Ukkonen's cutoff).
  std::vector<std::size_t> row(b.size() + 1, kInf);
  for (std::size_t j = 0; j <= std::min(b.size(), band); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(b.size(), i + band);
    std::size_t prev_diag = lo > 0 ? row[lo - 1] : (i == 1 ? 0 : kInf);
    if (lo == 0) {
      prev_diag = row[0];
      row[0] = i;
    }
    std::size_t row_min = lo == 0 ? row[0] : kInf;
    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      const std::size_t prev_row = row[j];
      const std::size_t left = row[j - 1];
      const std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      std::size_t best = sub;
      if (prev_row != kInf) best = std::min(best, prev_row + 1);
      if (left != kInf) best = std::min(best, left + 1);
      row[j] = best;
      prev_diag = prev_row;
      row_min = std::min(row_min, best);
    }
    // Invalidate cells outside the next row's band.
    if (hi < b.size()) row[hi + 1] = kInf;
    if (row_min > band) return band + 1;  // the whole band exceeded the bound
  }
  return std::min(row[b.size()], band + 1);
}

double character_accuracy(std::string_view candidate,
                          std::string_view reference, double band_frac,
                          std::size_t max_chars) {
  if (reference.empty()) return candidate.empty() ? 1.0 : 0.0;
  if (candidate.empty()) return 0.0;
  // Compare length-proportional prefixes: both sides are cut at the same
  // *fraction* of their length, so truncation/padding rates inside the
  // window mirror the rates of the full texts.
  const std::size_t max_len = std::max(candidate.size(), reference.size());
  if (max_len > max_chars) {
    const double f =
        static_cast<double>(max_chars) / static_cast<double>(max_len);
    candidate = candidate.substr(
        0, static_cast<std::size_t>(f * static_cast<double>(candidate.size())));
    reference = reference.substr(
        0, static_cast<std::size_t>(f * static_cast<double>(reference.size())));
  }
  const auto ref_len = static_cast<double>(reference.size());
  const auto band = static_cast<std::size_t>(band_frac * ref_len) + 1;
  const std::size_t dist = levenshtein_banded(candidate, reference, band);
  const double acc = 1.0 - static_cast<double>(dist) / ref_len;
  return std::max(0.0, acc);
}

}  // namespace adaparse::metrics
