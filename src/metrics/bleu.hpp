// BLEU (Papineni et al., 2002) for parser-output vs groundtruth comparison.
//
// We implement the standard corpus/sentence BLEU with modified (clipped)
// n-gram precision up to order 4, geometric mean, and brevity penalty. A
// smoothing option (add-k on higher orders, i.e. "method 1" of Chen &
// Cherry) is provided because document-level candidates occasionally lack
// any 4-gram match, and an unsmoothed score would collapse to zero — the
// paper's note that metric hyperparameters are "hardly canonical" applies.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adaparse::metrics {

struct BleuOptions {
  std::size_t max_order = 4;  ///< highest n-gram order (standard: 4)
  double smoothing_k = 1.0;   ///< add-k smoothing for zero counts; 0 = none
};

struct BleuResult {
  double score = 0.0;                  ///< final BLEU in [0,1]
  double brevity_penalty = 1.0;        ///< exp(1 - r/c) if c < r
  std::vector<double> precisions;      ///< clipped precision per order
  std::size_t candidate_len = 0;       ///< candidate token count
  std::size_t reference_len = 0;       ///< reference token count
};

/// BLEU over pre-tokenized sequences.
BleuResult bleu_tokens(std::span<const std::string> candidate,
                       std::span<const std::string> reference,
                       const BleuOptions& options = {});

/// BLEU over pre-tokenized view sequences (hot path: no token copies). Each
/// token is hashed once and the hashes are reused across all n-gram orders.
BleuResult bleu_tokens(std::span<const std::string_view> candidate,
                       std::span<const std::string_view> reference,
                       const BleuOptions& options = {});

/// Convenience: tokenizes both sides then scores. This is the document-level
/// accuracy measure A used throughout the reproduction.
double bleu(std::string_view candidate, std::string_view reference,
            const BleuOptions& options = {});

}  // namespace adaparse::metrics
