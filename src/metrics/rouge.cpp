#include "metrics/rouge.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "text/ngram.hpp"
#include "text/tokenize.hpp"

namespace adaparse::metrics {
namespace {

RougeScore from_counts(double matches, double cand_total, double ref_total) {
  RougeScore s;
  s.precision = cand_total > 0.0 ? matches / cand_total : 0.0;
  s.recall = ref_total > 0.0 ? matches / ref_total : 0.0;
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

/// Deterministically subsamples `tokens` to at most `cap` tokens by taking
/// evenly spaced contiguous blocks, which keeps local n-gram structure and
/// global ordering intact (unlike random sampling). Views are cheap to copy,
/// so sampling never duplicates token bytes.
template <typename Token>
std::vector<Token> block_sample(std::span<const Token> tokens,
                                std::size_t cap) {
  if (tokens.size() <= cap) {
    return {tokens.begin(), tokens.end()};
  }
  const std::size_t block = 64;
  const std::size_t num_blocks = std::max<std::size_t>(1, cap / block);
  const double stride =
      static_cast<double>(tokens.size()) / static_cast<double>(num_blocks);
  std::vector<Token> out;
  out.reserve(num_blocks * block);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto start = static_cast<std::size_t>(static_cast<double>(b) * stride);
    const std::size_t end = std::min(tokens.size(), start + block);
    for (std::size_t i = start; i < end; ++i) out.push_back(tokens[i]);
  }
  return out;
}

/// Classic O(nm) LCS length with O(min(n,m)) memory, over per-token 64-bit
/// hashes: the DP inner loop compares two integers instead of token bytes,
/// which is the same token-equality convention the hashed n-gram counts
/// already use.
std::size_t lcs_length(std::span<const std::uint64_t> a,
                       std::span<const std::uint64_t> b) {
  if (a.size() < b.size()) return lcs_length(b, a);
  if (b.empty()) return 0;
  std::vector<std::uint32_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

template <typename Token>
RougeScore rouge_n_impl(std::span<const Token> candidate,
                        std::span<const Token> reference, std::size_t n) {
  // Hash each token once; both orders and both sides reuse the hashes.
  const auto cand_hashes = text::hash_tokens(candidate);
  const auto ref_hashes = text::hash_tokens(reference);
  const auto cand_counts = text::count_ngrams(cand_hashes, n);
  const auto ref_counts = text::count_ngrams(ref_hashes, n);
  const auto matches = text::overlap(cand_counts, ref_counts);
  return from_counts(static_cast<double>(matches),
                     static_cast<double>(text::total(cand_counts)),
                     static_cast<double>(text::total(ref_counts)));
}

template <typename Token>
RougeScore rouge_l_impl(std::span<const Token> candidate,
                        std::span<const Token> reference,
                        std::size_t max_tokens) {
  if (candidate.empty() || reference.empty()) return {};
  // Sample first, hash after: only the <= max_tokens surviving tokens per
  // side are hashed (sampling and hashing commute).
  const auto cand = block_sample(candidate, max_tokens);
  const auto ref = block_sample(reference, max_tokens);
  const auto cand_hashes = text::hash_tokens(std::span<const Token>(cand));
  const auto ref_hashes = text::hash_tokens(std::span<const Token>(ref));
  const std::size_t lcs =
      lcs_length(std::span<const std::uint64_t>(cand_hashes),
                 std::span<const std::uint64_t>(ref_hashes));
  return from_counts(static_cast<double>(lcs),
                     static_cast<double>(cand.size()),
                     static_cast<double>(ref.size()));
}

}  // namespace

RougeScore rouge_n_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t n) {
  return rouge_n_impl(candidate, reference, n);
}

RougeScore rouge_n_tokens(std::span<const std::string_view> candidate,
                          std::span<const std::string_view> reference,
                          std::size_t n) {
  return rouge_n_impl(candidate, reference, n);
}

RougeScore rouge_n(std::string_view candidate, std::string_view reference,
                   std::size_t n) {
  const auto cand = text::tokenize_views(candidate);
  const auto ref = text::tokenize_views(reference);
  return rouge_n_impl(std::span<const std::string_view>(cand),
                      std::span<const std::string_view>(ref), n);
}

RougeScore rouge_l_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t max_tokens) {
  return rouge_l_impl(candidate, reference, max_tokens);
}

RougeScore rouge_l_tokens(std::span<const std::string_view> candidate,
                          std::span<const std::string_view> reference,
                          std::size_t max_tokens) {
  return rouge_l_impl(candidate, reference, max_tokens);
}

RougeScore rouge_l(std::string_view candidate, std::string_view reference,
                   std::size_t max_tokens) {
  const auto cand = text::tokenize_views(candidate);
  const auto ref = text::tokenize_views(reference);
  return rouge_l_impl(std::span<const std::string_view>(cand),
                      std::span<const std::string_view>(ref), max_tokens);
}

double rouge(std::string_view candidate, std::string_view reference) {
  // Tokenize each side exactly once; the views are shared with the LCS
  // variant (and with rouge_n_tokens if a caller wants both numbers).
  return rouge_l(candidate, reference).f1;
}

}  // namespace adaparse::metrics
