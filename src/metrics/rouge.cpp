#include "metrics/rouge.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "text/ngram.hpp"
#include "text/tokenize.hpp"

namespace adaparse::metrics {
namespace {

RougeScore from_counts(double matches, double cand_total, double ref_total) {
  RougeScore s;
  s.precision = cand_total > 0.0 ? matches / cand_total : 0.0;
  s.recall = ref_total > 0.0 ? matches / ref_total : 0.0;
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

/// Deterministically subsamples `tokens` to at most `cap` tokens by taking
/// evenly spaced contiguous blocks, which keeps local n-gram structure and
/// global ordering intact (unlike random sampling).
std::vector<std::string> block_sample(std::span<const std::string> tokens,
                                      std::size_t cap) {
  if (tokens.size() <= cap) {
    return {tokens.begin(), tokens.end()};
  }
  const std::size_t block = 64;
  const std::size_t num_blocks = std::max<std::size_t>(1, cap / block);
  const double stride =
      static_cast<double>(tokens.size()) / static_cast<double>(num_blocks);
  std::vector<std::string> out;
  out.reserve(num_blocks * block);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto start = static_cast<std::size_t>(static_cast<double>(b) * stride);
    const std::size_t end = std::min(tokens.size(), start + block);
    for (std::size_t i = start; i < end; ++i) out.push_back(tokens[i]);
  }
  return out;
}

/// Classic O(nm) LCS length with O(min(n,m)) memory.
std::size_t lcs_length(std::span<const std::string> a,
                       std::span<const std::string> b) {
  if (a.size() < b.size()) return lcs_length(b, a);
  if (b.empty()) return 0;
  std::vector<std::uint32_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

RougeScore rouge_n_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t n) {
  const auto cand_counts = text::count_ngrams(candidate, n);
  const auto ref_counts = text::count_ngrams(reference, n);
  const auto matches = text::overlap(cand_counts, ref_counts);
  return from_counts(static_cast<double>(matches),
                     static_cast<double>(text::total(cand_counts)),
                     static_cast<double>(text::total(ref_counts)));
}

RougeScore rouge_n(std::string_view candidate, std::string_view reference,
                   std::size_t n) {
  const auto cand = text::tokenize(candidate);
  const auto ref = text::tokenize(reference);
  return rouge_n_tokens(cand, ref, n);
}

RougeScore rouge_l_tokens(std::span<const std::string> candidate,
                          std::span<const std::string> reference,
                          std::size_t max_tokens) {
  if (candidate.empty() || reference.empty()) return {};
  const auto cand = block_sample(candidate, max_tokens);
  const auto ref = block_sample(reference, max_tokens);
  const std::size_t lcs = lcs_length(cand, ref);
  return from_counts(static_cast<double>(lcs),
                     static_cast<double>(cand.size()),
                     static_cast<double>(ref.size()));
}

RougeScore rouge_l(std::string_view candidate, std::string_view reference,
                   std::size_t max_tokens) {
  const auto cand = text::tokenize(candidate);
  const auto ref = text::tokenize(reference);
  return rouge_l_tokens(cand, ref, max_tokens);
}

double rouge(std::string_view candidate, std::string_view reference) {
  return rouge_l(candidate, reference).f1;
}

}  // namespace adaparse::metrics
