// The streaming pipeline engine (paper §5–6): documents flow continuously
// through bounded-queue-connected stages instead of the barrier-staged
// run_barrier() phases —
//
//   source ─▶ [prefetch] ─q─▶ [extract ×W] ─q─▶ [route] ─q─▶ [upgrade ×G]
//                                                                  │
//                                                  sink ◀─ [write] ◀q
//
// Every queue is a sched::BoundedQueue, so a slow stage back-pressures the
// prefetcher instead of letting extractions pile up in RAM (the same
// reason the paper stages shard batches into node-local storage rather
// than unboundedly). Routing preserves the per-batch floor(alpha*k) budget
// semantics by assembling sliding windows of k consecutive documents;
// upgrades run on warm models (sched::WarmModelCache); the write stage
// restores input order and emits each io::ParseRecord the moment its
// document completes — so output streams to JSONL incrementally and the
// peak number of resident extractions is bounded by the batch size plus
// the queue capacities, never by the corpus size.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/doc_source.hpp"
#include "core/engine.hpp"

namespace adaparse::sched {
class WarmModelCache;
}  // namespace adaparse::sched

namespace adaparse::core {

struct PipelineConfig {
  /// Capacity of each inter-stage queue (the backpressure window).
  std::size_t queue_capacity = 32;
  /// Extraction workers; 0 = the engine's `threads` setting (which itself
  /// defaults to hardware concurrency).
  std::size_t extract_workers = 0;
  /// Upgrade workers — stand-ins for resident GPU model slots.
  std::size_t upgrade_workers = 2;
  /// Hard cap on documents admitted but not yet written (the credit
  /// window). 0 = sized automatically from batch size + queue capacities;
  /// explicit values are clamped up to the deadlock-free minimum (one full
  /// routing batch must fit alongside everything in flight downstream).
  std::size_t max_resident_documents = 0;
  /// Optional shared worker pool (e.g. one pool multiplexed across service
  /// jobs). When null, the run owns a pool sized extract + upgrade workers.
  /// A shared pool must be able to run this run's full worker complement
  /// (extract_workers + upgrade_workers) concurrently, or a stage can
  /// starve and deadlock the run — serve::ParseService sizes for this.
  sched::ThreadPool* pool = nullptr;
  /// Optional shared warm-model cache so upgrades across runs (service
  /// jobs) reuse one resident model per key. When null, each run warms its
  /// own cache.
  sched::WarmModelCache* warm_cache = nullptr;
  /// Optional live multiplier on the engine's alpha budget, read once per
  /// route-window flush (values clamped to [0, 1]). This is the SLO
  /// guardian's budget-shrink actuator: serve::ParseService points it at
  /// the controller's effective-alpha gauge. Null (the default, and always
  /// null on batch/campaign paths) means the fixed config().alpha — runs
  /// stay byte-identical to a build without the hook.
  const std::atomic<double>* alpha_scale = nullptr;
  /// Optional cooperative cancellation flag. Checked by the prefetcher
  /// before each admission: once set, no further documents are admitted;
  /// documents already in flight drain to the sink, so a cancelled run
  /// still emits every admitted record (bounded by the credit window).
  const std::atomic<bool>* cancel = nullptr;
  /// Optional progress callback, invoked on the writer thread after each
  /// record reaches the sink, with the number of records emitted so far.
  std::function<void(std::size_t emitted)> on_progress;
};

/// Drives documents from a DocumentSource through the five stages into a
/// sink. One Pipeline is reusable (each run owns its queues and threads);
/// the referenced engine must outlive it.
class Pipeline {
 public:
  explicit Pipeline(const AdaParseEngine& engine, PipelineConfig config = {});

  /// Called once per document, in strict input order, as soon as the
  /// document's record is final.
  using Sink = std::function<void(std::size_t index,
                                  const io::ParseRecord& record,
                                  const RouteDecision& decision)>;

  /// Streams every document from `source` through the stages into `sink`.
  EngineStats run(DocumentSource& source, const Sink& sink) const;

  /// Streams records into a JSONL stream as documents complete (the
  /// incremental counterpart of writing RunOutput::records at the end).
  EngineStats run_to_jsonl(DocumentSource& source, std::ostream& os) const;

  /// In-memory convenience: same output shape as AdaParseEngine::run().
  RunOutput run_collect(const std::vector<doc::Document>& docs) const;

  const PipelineConfig& config() const { return config_; }

 private:
  const AdaParseEngine& engine_;
  PipelineConfig config_;
};

}  // namespace adaparse::core
