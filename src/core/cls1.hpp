// CLS I — rule-based validity check on extracted text (paper Fig. 2).
//
// "The first classification stage employs aggregate statistics computed
// from the extracted text (e.g., number of characters) to infer validity.
// While simplistic, the features are highly interpretable and permit rapid
// inference." Documents whose extraction is invalid skip straight to the
// high-quality parser.
#pragma once

#include <string>
#include <string_view>

#include "text/features.hpp"

namespace adaparse::core {

/// Thresholds of the rule set; defaults tuned on the synthetic corpus and
/// exposed so operators can tighten or relax stages without recompiling.
struct Cls1Rules {
  double min_chars_per_page = 300.0;   ///< nearly-empty extraction
  double min_alpha_ratio = 0.45;       ///< symbol soup
  double max_whitespace_ratio = 0.45;  ///< whitespace injection blow-up
  double max_scrambled_ratio = 0.18;   ///< scrambled-word storm
  double max_non_ascii_ratio = 0.08;   ///< mojibake storm
  double min_entropy = 3.0;            ///< degenerate repetition
  double max_entropy = 5.4;            ///< noise
  double max_longest_run = 400.0;      ///< pathological char runs
};

/// Verdict with the first violated rule (for the routing trail).
struct Cls1Verdict {
  bool valid = true;
  std::string reason;  ///< empty when valid
};

/// Validates extracted text for a document of `num_pages` pages.
Cls1Verdict cls1_validate(std::string_view extracted_text,
                          std::size_t num_pages, const Cls1Rules& rules = {});

/// Feature-level entry point when features were already computed.
Cls1Verdict cls1_validate(const text::TextFeatures& features,
                          std::size_t num_pages, const Cls1Rules& rules = {});

}  // namespace adaparse::core
