// Training pipelines: builds the regression corpus (paper Appendix A:
// N pairs of extracted text and the m=6 per-parser BLEU vector), the CLS II
// labels, converts the preference study into DPO pairs, and assembles ready
// AdaParse engines.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/predictor.hpp"
#include "doc/document.hpp"
#include "ml/encoder.hpp"
#include "parsers/parser.hpp"
#include "pref/study.hpp"

namespace adaparse::core {

/// Everything extracted from one training corpus pass.
struct TrainingData {
  std::vector<RegressionExample> examples;   ///< per-doc text + BLEU vector
  std::vector<doc::Metadata> metas;          ///< aligned with examples
  std::vector<int> improvement_labels;       ///< CLS II targets
};

/// Runs all six parsers over `docs`, computes document BLEU against
/// groundtruth, extracts the default parser's first page as model input.
/// `improvement_margin`: CLS II label is 1 iff some parser beats the
/// extraction BLEU by more than this.
TrainingData build_training_data(const std::vector<doc::Document>& docs,
                                 double improvement_margin = 0.03,
                                 std::size_t threads = 0);

/// Converts decided study judgments of `split` into DPO preference pairs
/// conditioned on the judged document's extracted text.
std::vector<AccuracyPredictor::Preference> preferences_from_study(
    const pref::StudyResult& study, const std::vector<doc::Document>& docs,
    pref::Split split);

/// A fully trained AdaParse bundle.
struct TrainedAdaParse {
  std::shared_ptr<AccuracyPredictor> predictor;  ///< CLS III (SciBERT-sim)
  std::shared_ptr<Cls2Improver> improver;        ///< CLS II (metadata)
  std::shared_ptr<AdaParseEngine> ft;            ///< AdaParse (FT)
  std::shared_ptr<AdaParseEngine> llm;           ///< AdaParse (LLM)
};

struct TrainAdaParseOptions {
  EngineConfig engine;                  ///< alpha, batch size, threads, ...
  ml::EncoderArch encoder = ml::EncoderArch::kSciBert;
  ml::TrainOptions regression;          ///< step 1 hyperparameters
  bool apply_dpo = true;                ///< step 2 on/off (ablation)
  ml::DpoOptions dpo;
  double improvement_margin = 0.03;
};

/// Full pipeline: training data -> supervised fit -> optional DPO -> engines.
/// `study`/`study_docs` may be null to skip DPO (then apply_dpo is ignored).
TrainedAdaParse train_adaparse(const std::vector<doc::Document>& train_docs,
                               const pref::StudyResult* study,
                               const std::vector<doc::Document>* study_docs,
                               const TrainAdaParseOptions& options = {});

}  // namespace adaparse::core
