#include "core/cls1.hpp"

namespace adaparse::core {

Cls1Verdict cls1_validate(const text::TextFeatures& f, std::size_t num_pages,
                          const Cls1Rules& rules) {
  Cls1Verdict v;
  const double pages = static_cast<double>(num_pages == 0 ? 1 : num_pages);
  if (f.char_count / pages < rules.min_chars_per_page) {
    return {false, "too_few_chars"};
  }
  if (f.alpha_ratio < rules.min_alpha_ratio) {
    return {false, "low_alpha_ratio"};
  }
  if (f.whitespace_ratio > rules.max_whitespace_ratio) {
    return {false, "whitespace_blowup"};
  }
  if (f.scrambled_ratio > rules.max_scrambled_ratio) {
    return {false, "scrambled_text"};
  }
  if (f.non_ascii_ratio > rules.max_non_ascii_ratio) {
    return {false, "mojibake"};
  }
  if (f.entropy < rules.min_entropy) {
    return {false, "degenerate_entropy"};
  }
  if (f.entropy > rules.max_entropy) {
    return {false, "noise_entropy"};
  }
  if (f.longest_run > rules.max_longest_run) {
    return {false, "char_run"};
  }
  return v;
}

Cls1Verdict cls1_validate(std::string_view extracted_text,
                          std::size_t num_pages, const Cls1Rules& rules) {
  return cls1_validate(text::compute_features(extracted_text), num_pages,
                       rules);
}

}  // namespace adaparse::core
