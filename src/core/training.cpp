#include "core/training.hpp"

#include <algorithm>
#include <future>
#include <thread>

#include "metrics/bleu.hpp"
#include "parsers/registry.hpp"
#include "sched/thread_pool.hpp"

namespace adaparse::core {
namespace {

std::string first_nonempty_page(const parsers::ParseResult& parse) {
  for (const auto& page : parse.pages) {
    if (!page.empty()) return page;
  }
  return {};
}

}  // namespace

TrainingData build_training_data(const std::vector<doc::Document>& docs,
                                 double improvement_margin,
                                 std::size_t threads) {
  TrainingData data;
  data.examples.resize(docs.size());
  data.metas.resize(docs.size());
  data.improvement_labels.resize(docs.size());

  const auto cohort = parsers::all_parsers();
  const std::size_t n_threads =
      threads > 0 ? threads
                  : std::max(2U, std::thread::hardware_concurrency());
  sched::ThreadPool pool(n_threads);
  std::vector<std::future<void>> futures;
  futures.reserve(docs.size());

  for (std::size_t i = 0; i < docs.size(); ++i) {
    futures.push_back(pool.submit([&, i] {
      const auto& document = docs[i];
      const std::string reference = document.full_groundtruth();
      RegressionExample& example = data.examples[i];
      example.title = document.meta.title;
      example.metadata = document.meta;
      example.bleu.assign(parsers::kNumParsers, 0.0);
      for (std::size_t j = 0; j < cohort.size(); ++j) {
        const auto parse = cohort[j]->parse(document);
        if (!parse.ok) continue;
        example.bleu[j] = metrics::bleu(parse.full_text(), reference);
        if (cohort[j]->kind() == parsers::ParserKind::kPyMuPdf) {
          example.text = first_nonempty_page(parse);
        }
      }
      data.metas[i] = document.meta;
      const double cheap =
          example.bleu[static_cast<std::size_t>(parsers::ParserKind::kPyMuPdf)];
      const double best =
          *std::max_element(example.bleu.begin(), example.bleu.end());
      data.improvement_labels[i] = best - cheap > improvement_margin ? 1 : 0;
    }));
  }
  for (auto& f : futures) f.get();
  return data;
}

std::vector<AccuracyPredictor::Preference> preferences_from_study(
    const pref::StudyResult& study, const std::vector<doc::Document>& docs,
    pref::Split split) {
  // Cache extraction per document (the predictor conditions on it).
  const auto extractor = parsers::make_parser(parsers::ParserKind::kPyMuPdf);
  std::vector<std::string> extracted(docs.size());
  std::vector<bool> ready(docs.size(), false);

  std::vector<AccuracyPredictor::Preference> preferences;
  for (const auto& judgment : study.judgments) {
    if (judgment.split != split || judgment.choice == 2) continue;
    const std::size_t d = judgment.doc_index;
    if (d >= docs.size()) continue;
    if (!ready[d]) {
      extracted[d] = first_nonempty_page(extractor->parse(docs[d]));
      ready[d] = true;
    }
    AccuracyPredictor::Preference preference;
    preference.text = extracted[d];
    preference.title = docs[d].meta.title;
    preference.metadata = docs[d].meta;
    preference.winner =
        judgment.choice == 0 ? judgment.parser_a : judgment.parser_b;
    preference.loser =
        judgment.choice == 0 ? judgment.parser_b : judgment.parser_a;
    preferences.push_back(std::move(preference));
  }
  return preferences;
}

TrainedAdaParse train_adaparse(const std::vector<doc::Document>& train_docs,
                               const pref::StudyResult* study,
                               const std::vector<doc::Document>* study_docs,
                               const TrainAdaParseOptions& options) {
  TrainedAdaParse out;

  const auto data =
      build_training_data(train_docs, options.improvement_margin,
                          options.engine.threads);

  // CLS III: supervised fine-tuning (step 1).
  out.predictor =
      std::make_shared<AccuracyPredictor>(ml::make_encoder(options.encoder));
  out.predictor->fit(data.examples, options.regression);

  // Step 2: DPO alignment from the study's training split.
  if (options.apply_dpo && study != nullptr && study_docs != nullptr) {
    const auto preferences =
        preferences_from_study(*study, *study_docs, pref::Split::kTrain);
    if (!preferences.empty()) {
      out.predictor->apply_dpo(preferences, options.dpo);
    }
  }

  // CLS II: metadata improvement classifier.
  out.improver = std::make_shared<Cls2Improver>();
  out.improver->fit(data.metas, data.improvement_labels, options.regression);

  EngineConfig ft_config = options.engine;
  ft_config.variant = Variant::kFastText;
  out.ft = std::make_shared<AdaParseEngine>(ft_config, out.predictor,
                                            out.improver);
  EngineConfig llm_config = options.engine;
  llm_config.variant = Variant::kLlm;
  out.llm = std::make_shared<AdaParseEngine>(llm_config, out.predictor,
                                             out.improver);
  return out;
}

}  // namespace adaparse::core
