#include "core/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/pipeline.hpp"
#include "parsers/registry.hpp"
#include "sched/thread_pool.hpp"
#include "sched/warm_cache.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace adaparse::core {
namespace {

constexpr double kMandatoryGain = 1e9;  ///< CLS I-invalid: must upgrade

/// First-page slice of an extraction (what CLS III conditions on).
std::string_view first_page(const parsers::ParseResult& extraction) {
  for (const auto& page : extraction.pages) {
    if (!page.empty()) return page;
  }
  return {};
}

}  // namespace

const char* variant_name(Variant v) {
  return v == Variant::kFastText ? "AdaParse (FT)" : "AdaParse (LLM)";
}

AdaParseEngine::AdaParseEngine(
    EngineConfig config, std::shared_ptr<const AccuracyPredictor> predictor,
    std::shared_ptr<const Cls2Improver> improver)
    : config_(std::move(config)),
      predictor_(std::move(predictor)),
      improver_(std::move(improver)),
      extractor_(parsers::make_parser(parsers::ParserKind::kPyMuPdf)),
      nougat_(parsers::make_parser(parsers::ParserKind::kNougat)) {
  if (config_.variant == Variant::kLlm && predictor_ == nullptr) {
    throw std::invalid_argument("LLM variant requires an AccuracyPredictor");
  }
  if (config_.variant == Variant::kFastText && improver_ == nullptr) {
    throw std::invalid_argument("FT variant requires a Cls2Improver");
  }
}

double AdaParseEngine::per_doc_classifier_seconds() const {
  return config_.variant == Variant::kLlm
             ? predictor_->inference_cost_seconds()
             : 0.02;
}

std::size_t AdaParseEngine::worker_threads() const {
  return config_.threads > 0
             ? config_.threads
             : std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

void AdaParseEngine::route_window(
    const doc::Document* const* docs,
    const parsers::ParseResult* const* extractions, std::size_t count,
    std::size_t base_index, double alpha, RouteDecision* out) const {
  std::vector<double> gains(count, 0.0);

  for (std::size_t i = 0; i < count; ++i) {
    const auto& document = *docs[i];
    const auto& extraction = *extractions[i];
    RouteDecision& decision = out[i];
    decision.doc_index = base_index + i;

    if (!extraction.ok) {
      // Unreadable input: nothing can parse it; keep the cheap lane so the
      // budget is not wasted, record the failure downstream.
      decision.cls1_valid = false;
      decision.trail = "error:unreadable";
      gains[i] = 0.0;
      continue;
    }

    const auto verdict =
        cls1_validate(extraction.full_text(), document.num_pages(),
                      config_.cls1_rules);
    decision.cls1_valid = verdict.valid;
    if (!verdict.valid) {
      decision.trail = "cls1:" + verdict.reason + "|nougat";
      gains[i] = kMandatoryGain;
      continue;
    }

    if (config_.variant == Variant::kFastText) {
      // Fused CLS I/II: metadata classifier decides "improvement likely".
      const double p = improver_->improvement_probability(document.meta);
      decision.predicted_gain = p;
      if (p >= config_.cls2_threshold) {
        decision.trail = "cls1:valid|cls2:p=" + util::format_fixed(p, 2) +
                         "|nougat_candidate";
        gains[i] = p;
      } else {
        decision.trail = "cls1:valid|cls2:p=" + util::format_fixed(p, 2) +
                         "|accept";
        gains[i] = 0.0;
      }
    } else {
      // CLS III: predict per-parser accuracy from the extracted first page.
      const auto scores = predictor_->predict(
          first_page(extraction), document.meta.title, document.meta);
      const double cheap =
          scores[static_cast<std::size_t>(parsers::ParserKind::kPyMuPdf)];
      const double expensive =
          scores[static_cast<std::size_t>(parsers::ParserKind::kNougat)];
      decision.predicted_gain = expensive - cheap;
      decision.predicted_accuracy = cheap;  // may flip below
      decision.trail =
          "cls1:valid|cls3:gain=" + util::format_fixed(expensive - cheap, 3);
      gains[i] = expensive - cheap;
    }
  }

  // Budgeted assignment within the batch: floor(alpha * k) Nougat slots.
  const auto selected = select_budgeted(gains, alpha,
                                        /*require_positive_gain=*/true);
  for (std::size_t local : selected) {
    RouteDecision& decision = out[local];
    if (!extractions[local]->ok) continue;
    decision.chosen = parsers::ParserKind::kNougat;
    decision.trail += "|selected:nougat";
    decision.predicted_accuracy += decision.predicted_gain < kMandatoryGain
                                       ? decision.predicted_gain
                                       : 0.0;
  }
}

void AdaParseEngine::route_batch(
    const std::vector<doc::Document>& docs,
    const std::vector<parsers::ParseResult>& extractions, std::size_t begin,
    std::size_t end, std::vector<RouteDecision>& out) const {
  const std::size_t k = end - begin;
  std::vector<const doc::Document*> doc_ptrs(k);
  std::vector<const parsers::ParseResult*> extraction_ptrs(k);
  for (std::size_t i = 0; i < k; ++i) {
    doc_ptrs[i] = &docs[begin + i];
    extraction_ptrs[i] = &extractions[begin + i];
  }
  route_window(doc_ptrs.data(), extraction_ptrs.data(), k, begin,
               config_.alpha, out.data() + begin);
}

std::vector<parsers::ParseResult> AdaParseEngine::extract_all(
    const std::vector<doc::Document>& docs, sched::ThreadPool& pool) const {
  std::vector<parsers::ParseResult> extractions(docs.size());
  std::vector<std::future<void>> futures;
  futures.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    futures.push_back(pool.submit([this, &docs, &extractions, i] {
      extractions[i] = extractor_->parse(docs[i]);
    }));
  }
  for (auto& f : futures) f.get();
  return extractions;
}

io::ParseRecord AdaParseEngine::make_record(
    const doc::Document& document, const RouteDecision& decision,
    const parsers::ParseResult& extraction,
    const parsers::ParseResult* upgrade, EngineStats& stats) const {
  const bool upgraded = decision.chosen == parsers::ParserKind::kNougat &&
                        upgrade != nullptr && upgrade->ok;
  const parsers::ParseResult& kept = upgraded ? *upgrade : extraction;

  io::ParseRecord record;
  record.document_id = document.id;
  record.parser = std::string(upgraded ? nougat_->name() : extractor_->name());
  record.route = decision.trail;
  record.predicted_accuracy = decision.predicted_accuracy;
  record.pages = static_cast<int>(document.num_pages());
  if (!kept.ok) {
    ++stats.failed_docs;
    record.parser = "none";
    return record;
  }
  record.text = kept.full_text();
  int retrieved = 0;
  for (const auto& page : kept.pages) {
    if (!page.empty()) ++retrieved;
  }
  record.pages_retrieved = retrieved;

  if (upgraded) {
    ++stats.routed_to_nougat;
    stats.nougat_gpu_seconds += kept.cost.gpu_seconds;
  } else {
    ++stats.accepted_extraction;
  }
  if (!decision.cls1_valid) ++stats.cls1_invalid;
  return record;
}

std::vector<RouteDecision> AdaParseEngine::route(
    const std::vector<doc::Document>& docs) const {
  sched::ThreadPool pool(worker_threads());
  const auto extractions = extract_all(docs, pool);
  std::vector<RouteDecision> decisions(docs.size());
  const std::size_t k = std::max<std::size_t>(1, config_.batch_size);
  for (std::size_t begin = 0; begin < docs.size(); begin += k) {
    route_batch(docs, extractions, begin, std::min(docs.size(), begin + k),
                decisions);
  }
  return decisions;
}

RunOutput AdaParseEngine::run(const std::vector<doc::Document>& docs) const {
  return Pipeline(*this).run_collect(docs);
}

RunOutput AdaParseEngine::run_barrier(
    const std::vector<doc::Document>& docs) const {
  util::Stopwatch wall;
  RunOutput output;
  output.decisions.assign(docs.size(), {});
  output.records.assign(docs.size(), {});
  output.stats.total_docs = docs.size();

  sched::ThreadPool pool(worker_threads());

  // ---- Stage 1: parallel extraction (the default parser runs on every
  // document; its output feeds both routing and the accept-as-is path). ----
  const auto extractions = extract_all(docs, pool);
  for (const auto& extraction : extractions) {
    output.stats.extraction_cpu_seconds += extraction.cost.cpu_seconds;
  }

  // ---- Stage 2: batched routing (CLS I / II / III + alpha budget). -------
  const std::size_t k = std::max<std::size_t>(1, config_.batch_size);
  for (std::size_t begin = 0; begin < docs.size(); begin += k) {
    route_batch(docs, extractions, begin, std::min(docs.size(), begin + k),
                output.decisions);
  }
  output.stats.classifier_cpu_seconds =
      per_doc_classifier_seconds() * static_cast<double>(docs.size());

  // ---- Stage 3: budgeted high-quality parses on warm models. -------------
  sched::WarmModelCache cache(/*enabled=*/true);
  std::vector<std::future<void>> gpu_futures;
  std::vector<parsers::ParseResult> upgrades(docs.size());
  std::vector<bool> attempted(docs.size(), false);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (output.decisions[i].chosen != parsers::ParserKind::kNougat) continue;
    attempted[i] = true;
    gpu_futures.push_back(pool.submit([this, &docs, &upgrades, &cache, i] {
      // Warm start: the model handle is created once per cache, standing in
      // for one resident copy per GPU worker.
      cache.get_or_load(
          "nougat", [] { return std::make_shared<int>(0); },
          nougat_->model_load_seconds());
      upgrades[i] = nougat_->parse(docs[i]);
    }));
  }
  for (auto& f : gpu_futures) f.get();

  // ---- Stage 4: assemble records. ----------------------------------------
  for (std::size_t i = 0; i < docs.size(); ++i) {
    output.records[i] =
        make_record(docs[i], output.decisions[i], extractions[i],
                    attempted[i] ? &upgrades[i] : nullptr, output.stats);
  }
  output.stats.wall_seconds = wall.seconds();
  output.stats.simd_tier = simd::active_tier_name();
  return output;
}

std::vector<hpc::TaskSpec> AdaParseEngine::plan_tasks(
    const std::vector<doc::Document>& docs,
    const std::vector<RouteDecision>& decisions) const {
  if (docs.size() != decisions.size()) {
    throw std::invalid_argument("plan_tasks: size mismatch");
  }
  const double per_doc_classifier_cost = per_doc_classifier_seconds();
  std::vector<hpc::TaskSpec> tasks;
  tasks.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto extraction_cost = extractor_->estimate_cost(docs[i]);
    hpc::TaskSpec task;
    task.cpu_seconds = extraction_cost.cpu_seconds + per_doc_classifier_cost;
    task.bytes_read = extraction_cost.bytes_read;
    if (decisions[i].chosen == parsers::ParserKind::kNougat) {
      const auto nougat_cost = nougat_->estimate_cost(docs[i]);
      task.cpu_seconds += nougat_cost.cpu_seconds;
      task.gpu_seconds = nougat_cost.gpu_seconds;
      task.bytes_read += nougat_cost.bytes_read;
      task.needs_gpu_model = true;
    }
    tasks.push_back(task);
  }
  return tasks;
}

std::string AdaParseEngine::model_digest() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  const auto fold = [&h](double value) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &value, sizeof(double));
    for (const unsigned char b : bytes) h = util::fnv1a_step(h, b);
  };
  // Fixed probe inputs: any weight change shifts these predictions.
  const doc::Metadata probe_meta;
  if (predictor_) {
    for (const double score : predictor_->predict(
             "campaign fingerprint probe: the ribosome measured in-vivo "
             "rates across the phylogenetic pathway",
             "probe title", probe_meta)) {
      fold(score);
    }
  }
  if (improver_) fold(improver_->improvement_probability(probe_meta));
  return std::to_string(h);
}

}  // namespace adaparse::core
