#include "core/predictor.hpp"

#include "util/stats.hpp"

namespace adaparse::core {

AccuracyPredictor::AccuracyPredictor(ml::EncoderPtr encoder)
    : encoder_(std::move(encoder)),
      head_(encoder_->dim(), parsers::kNumParsers) {}

ml::SparseVec AccuracyPredictor::featurize(std::string_view text,
                                           std::string_view title,
                                           const doc::Metadata& metadata) const {
  ml::EncoderInput input;
  input.text = text;
  input.title = title;
  input.metadata = &metadata;
  return encoder_->encode(input);
}

void AccuracyPredictor::fit(std::span<const RegressionExample> examples,
                            const ml::TrainOptions& options) {
  std::vector<ml::SparseVec> inputs;
  std::vector<std::vector<double>> targets;
  inputs.reserve(examples.size());
  targets.reserve(examples.size());
  for (const auto& example : examples) {
    inputs.push_back(featurize(example.text, example.title, example.metadata));
    targets.push_back(example.bleu);
  }
  head_.fit(inputs, targets, options);
}

void AccuracyPredictor::apply_dpo(std::span<const Preference> preferences,
                                  const ml::DpoOptions& options) {
  std::vector<ml::PreferencePair> pairs;
  pairs.reserve(preferences.size());
  for (const auto& preference : preferences) {
    ml::PreferencePair pair;
    pair.x = featurize(preference.text, preference.title, preference.metadata);
    pair.winner = static_cast<std::size_t>(preference.winner);
    pair.loser = static_cast<std::size_t>(preference.loser);
    pairs.push_back(std::move(pair));
  }
  adapter_ = std::make_unique<ml::DpoAdapter>(head_, options);
  adapter_->fit(pairs);
}

std::vector<double> AccuracyPredictor::predict(
    std::string_view extracted_text, std::string_view title,
    const doc::Metadata& metadata) const {
  const auto x = featurize(extracted_text, title, metadata);
  return adapter_ ? adapter_->predict(x) : head_.predict(x);
}

std::vector<double> AccuracyPredictor::predict(
    const RegressionExample& example) const {
  return predict(example.text, example.title, example.metadata);
}

std::vector<double> AccuracyPredictor::r_squared(
    std::span<const RegressionExample> examples) const {
  std::vector<std::vector<double>> truth(parsers::kNumParsers),
      pred(parsers::kNumParsers);
  for (const auto& example : examples) {
    const auto p = predict(example);
    for (std::size_t k = 0; k < parsers::kNumParsers; ++k) {
      truth[k].push_back(example.bleu[k]);
      pred[k].push_back(p[k]);
    }
  }
  std::vector<double> out(parsers::kNumParsers, 0.0);
  for (std::size_t k = 0; k < parsers::kNumParsers; ++k) {
    out[k] = util::r_squared(truth[k], pred[k]);
  }
  return out;
}

}  // namespace adaparse::core
