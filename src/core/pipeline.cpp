#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "io/jsonl.hpp"
#include "obs/trace.hpp"
#include "sched/queue.hpp"
#include "sched/thread_pool.hpp"
#include "sched/warm_cache.hpp"
#include "simd/dispatch.hpp"
#include "util/stopwatch.hpp"

namespace adaparse::core {
namespace {

using DocPtr = std::shared_ptr<const doc::Document>;

/// prefetch -> extract.
struct DocItem {
  std::size_t index = 0;
  DocPtr doc;
};

/// extract -> route.
struct ExtractedItem {
  std::size_t index = 0;
  DocPtr doc;
  parsers::ParseResult extraction;
};

/// route -> upgrade -> write. `upgrade` is set iff a Nougat parse ran.
struct DoneItem {
  std::size_t index = 0;
  DocPtr doc;
  parsers::ParseResult extraction;
  RouteDecision decision;
  std::optional<parsers::ParseResult> upgrade;
};

/// One stage thread's busy/idle accounting, merged under a lock at exit.
struct StageClock {
  double busy = 0.0;
  double idle = 0.0;
  std::size_t items = 0;
};

}  // namespace

Pipeline::Pipeline(const AdaParseEngine& engine, PipelineConfig config)
    : engine_(engine), config_(config) {}

EngineStats Pipeline::run(DocumentSource& source, const Sink& sink) const {
  util::Stopwatch wall;
  obs::SpanGuard run_span("pipeline", "run");
  EngineStats stats;

  const std::size_t cap = std::max<std::size_t>(1, config_.queue_capacity);
  const std::size_t extract_workers = config_.extract_workers > 0
                                          ? config_.extract_workers
                                          : engine_.worker_threads();
  const std::size_t upgrade_workers =
      std::max<std::size_t>(1, config_.upgrade_workers);

  sched::BoundedQueue<DocItem> prefetched(cap);
  sched::BoundedQueue<ExtractedItem> extracted(cap);
  sched::BoundedQueue<DoneItem> routed(cap);
  sched::BoundedQueue<DoneItem> completed(cap);

  // Admission credits: the prefetcher takes one credit per document, the
  // writer returns it once the record is emitted, so at most
  // `resident_window` documents are in flight — the hard memory bound.
  // The window must fit one full routing batch plus everything that can
  // sit downstream of the router (q_routed + upgraders + q_done + writer
  // reorder buffer), or the router could starve waiting for a document
  // the prefetcher is not allowed to admit.
  const std::size_t k = std::max<std::size_t>(1, engine_.config_.batch_size);
  const std::size_t min_window = k + 3 * cap + 2 * upgrade_workers + 8;
  const std::size_t resident_window =
      std::max(config_.max_resident_documents,
               config_.max_resident_documents > 0
                   ? min_window
                   : min_window + extract_workers + 8);
  sched::BoundedQueue<char> credits(resident_window);

  auto close_all = [&] {
    prefetched.close();
    extracted.close();
    routed.close();
    completed.close();
    credits.close();
  };

  // Guards the stage clocks and the first stage error. A stage that throws
  // closes every queue so its neighbors drain and exit instead of blocking.
  std::mutex shared_mutex;
  std::exception_ptr first_error;
  auto record_error = [&](std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(shared_mutex);
      if (!first_error) first_error = error;
    }
    close_all();
  };

  StageClock prefetch_clock, extract_clock, route_clock, upgrade_clock,
      write_clock;
  auto merge = [&shared_mutex](StageClock& into, const StageClock& from) {
    std::lock_guard<std::mutex> lock(shared_mutex);
    into.busy += from.busy;
    into.idle += from.idle;
    into.items += from.items;
  };

  // Extractions alive right now (extracted but not yet written) — the
  // memory-boundedness claim of the streaming design, tracked as evidence.
  std::atomic<std::size_t> resident{0};
  std::atomic<std::size_t> peak_resident{0};
  std::atomic<std::size_t> extractors_left{extract_workers};
  std::atomic<std::size_t> upgraders_left{upgrade_workers};

  // Shared-infrastructure hooks: a service can hand every run one worker
  // pool and one warm-model cache; standalone runs own theirs.
  sched::WarmModelCache local_cache(/*enabled=*/true);
  sched::WarmModelCache& cache =
      config_.warm_cache != nullptr ? *config_.warm_cache : local_cache;
  std::optional<sched::ThreadPool> local_pool;
  if (config_.pool == nullptr) {
    local_pool.emplace(extract_workers + upgrade_workers);
  }
  sched::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : *local_pool;
  std::atomic<bool> saw_cancel{false};

  // ---- Stage 1: prefetch — pulls the source on a dedicated thread (the
  // moral equivalent of staging shards into node-local storage). ----------
  std::thread prefetcher([&] {
    StageClock clock;
    try {
      std::size_t index = 0;
      for (;;) {
        if (config_.cancel != nullptr &&
            config_.cancel->load(std::memory_order_relaxed)) {
          saw_cancel.store(true, std::memory_order_relaxed);
          break;  // stop admitting; everything in flight still drains
        }
        util::Stopwatch op;
        DocPtr doc;
        {
          obs::SpanGuard span("pipeline", "prefetch", "doc", index);
          doc = source.next();
        }
        clock.busy += op.seconds();
        if (!doc) break;
        op.reset();
        // Blocks while `resident_window` documents are in flight.
        if (!credits.push(0)) break;
        const bool pushed = prefetched.push(DocItem{index, std::move(doc)});
        clock.idle += op.seconds();
        if (!pushed) break;
        ++index;
        ++clock.items;
      }
    } catch (...) {
      record_error(std::current_exception());
    }
    prefetched.close();
    merge(prefetch_clock, clock);
  });

  // ---- Stage 2: parallel extraction workers on the shared pool. ----------
  std::vector<std::future<void>> worker_futures;
  worker_futures.reserve(extract_workers + upgrade_workers);
  for (std::size_t w = 0; w < extract_workers; ++w) {
    worker_futures.push_back(pool.submit([&] {
      StageClock clock;
      try {
        for (;;) {
          util::Stopwatch op;
          auto item = prefetched.pop();
          clock.idle += op.seconds();
          if (!item) break;
          op.reset();
          ExtractedItem out;
          out.index = item->index;
          out.doc = std::move(item->doc);
          {
            obs::SpanGuard span("pipeline", "extract", "doc", out.index);
            out.extraction = engine_.extractor_->parse(*out.doc);
            if (span.active()) {
              std::size_t bytes = 0;
              for (const auto& page : out.extraction.pages) {
                bytes += page.size();
              }
              span.arg("bytes", bytes);
            }
          }
          const std::size_t now = ++resident;
          std::size_t seen = peak_resident.load();
          while (now > seen &&
                 !peak_resident.compare_exchange_weak(seen, now)) {
          }
          clock.busy += op.seconds();
          op.reset();
          const bool pushed = extracted.push(std::move(out));
          clock.idle += op.seconds();
          if (!pushed) {
            prefetched.close();  // downstream gone: unblock the prefetcher
            break;
          }
          ++clock.items;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      merge(extract_clock, clock);
      if (extractors_left.fetch_sub(1) == 1) extracted.close();
    }));
  }

  // ---- Stage 3: sliding-window router. Per-batch floor(alpha*k) budget
  // semantics need k *consecutive* documents, so out-of-order extractions
  // are buffered here until each window is contiguous, then routed as one
  // batch — identical decisions to the barrier path, without waiting for
  // the whole corpus. ------------------------------------------------------
  std::thread router([&] {
    StageClock clock;
    try {
      std::map<std::size_t, ExtractedItem> out_of_order;
      std::vector<ExtractedItem> window;  // contiguous run from `base`
      window.reserve(k);
      std::size_t base = 0;  // global index of window.front()
      bool downstream_open = true;

      auto flush_window = [&] {
        if (window.empty()) return;
        std::vector<const doc::Document*> docs(window.size());
        std::vector<const parsers::ParseResult*> extractions(window.size());
        for (std::size_t i = 0; i < window.size(); ++i) {
          docs[i] = window[i].doc.get();
          extractions[i] = &window[i].extraction;
        }
        std::vector<RouteDecision> decisions(window.size());
        // One budget read per window: every document in the window is
        // routed under the same effective alpha, and the controller's
        // scale can never split a batch's floor(alpha*k) accounting.
        double alpha = engine_.config().alpha;
        if (config_.alpha_scale != nullptr) {
          alpha *= std::clamp(
              config_.alpha_scale->load(std::memory_order_relaxed), 0.0, 1.0);
        }
        util::Stopwatch work;
        {
          obs::SpanGuard span("pipeline", "route.window", "base", base, "docs",
                              window.size());
          engine_.route_window(docs.data(), extractions.data(), window.size(),
                               base, alpha, decisions.data());
        }
        clock.busy += work.seconds();
        for (std::size_t i = 0; i < window.size(); ++i) {
          DoneItem out;
          out.index = window[i].index;
          out.doc = std::move(window[i].doc);
          out.extraction = std::move(window[i].extraction);
          out.decision = std::move(decisions[i]);
          util::Stopwatch op;
          const bool pushed = routed.push(std::move(out));
          clock.idle += op.seconds();
          if (!pushed) {
            downstream_open = false;
            break;
          }
          ++clock.items;
        }
        base += window.size();
        window.clear();
      };

      while (downstream_open) {
        util::Stopwatch op;
        auto item = extracted.pop();
        clock.idle += op.seconds();
        if (!item) break;
        util::Stopwatch work;
        out_of_order.emplace(item->index, std::move(*item));
        for (auto it = out_of_order.find(base + window.size());
             it != out_of_order.end();
             it = out_of_order.find(base + window.size())) {
          window.push_back(std::move(it->second));
          out_of_order.erase(it);
          if (window.size() == k) {
            clock.busy += work.seconds();
            flush_window();
            work.reset();
            if (!downstream_open) break;
          }
        }
        clock.busy += work.seconds();
      }
      if (downstream_open) flush_window();  // the final partial batch
    } catch (...) {
      record_error(std::current_exception());
    }
    extracted.close();  // unblock extractors if we exited early
    routed.close();
    merge(route_clock, clock);
  });

  // ---- Stage 4: budgeted upgrades on warm models (one resident model per
  // worker slot, loaded once — paper §5.2). --------------------------------
  for (std::size_t g = 0; g < upgrade_workers; ++g) {
    worker_futures.push_back(pool.submit([&] {
      StageClock clock;
      try {
        for (;;) {
          util::Stopwatch op;
          auto item = routed.pop();
          clock.idle += op.seconds();
          if (!item) break;
          op.reset();
          if (item->decision.chosen == parsers::ParserKind::kNougat) {
            obs::SpanGuard span("pipeline", "upgrade", "doc", item->index);
            cache.get_or_load(
                "nougat", [] { return std::make_shared<int>(0); },
                engine_.nougat_->model_load_seconds());
            item->upgrade = engine_.nougat_->parse(*item->doc);
            if (span.active() && item->upgrade.has_value()) {
              std::size_t bytes = 0;
              for (const auto& page : item->upgrade->pages) {
                bytes += page.size();
              }
              span.arg("bytes", bytes);
            }
          }
          clock.busy += op.seconds();
          op.reset();
          const bool pushed = completed.push(std::move(*item));
          clock.idle += op.seconds();
          if (!pushed) {
            routed.close();  // downstream gone: unblock the router
            break;
          }
          ++clock.items;
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      merge(upgrade_clock, clock);
      if (upgraders_left.fetch_sub(1) == 1) completed.close();
    }));
  }

  // ---- Stage 5: order-restoring writer — emits each record through the
  // sink the moment every earlier document has been emitted. ---------------
  std::thread writer([&] {
    StageClock clock;
    try {
      std::map<std::size_t, DoneItem> out_of_order;
      std::size_t next = 0;
      for (;;) {
        util::Stopwatch op;
        auto item = completed.pop();
        clock.idle += op.seconds();
        if (!item) break;
        op.reset();
        obs::SpanGuard span("pipeline", "write.emit", "first", next);
        std::size_t emitted = 0;
        out_of_order.emplace(item->index, std::move(*item));
        for (auto it = out_of_order.find(next); it != out_of_order.end();
             it = out_of_order.find(next)) {
          DoneItem done = std::move(it->second);
          out_of_order.erase(it);
          stats.extraction_cpu_seconds += done.extraction.cost.cpu_seconds;
          const io::ParseRecord record = engine_.make_record(
              *done.doc, done.decision, done.extraction,
              done.upgrade ? &*done.upgrade : nullptr, stats);
          --resident;
          credits.pop();  // return the admission credit
          sink(next, record, done.decision);
          ++stats.total_docs;
          ++next;
          ++clock.items;
          ++emitted;
          if (config_.on_progress) config_.on_progress(stats.total_docs);
        }
        span.arg("docs", emitted);
        clock.busy += op.seconds();
      }
    } catch (...) {
      record_error(std::current_exception());
    }
    merge(write_clock, clock);
  });

  prefetcher.join();
  router.join();
  writer.join();
  for (auto& f : worker_futures) f.get();
  if (first_error) std::rethrow_exception(first_error);

  stats.classifier_cpu_seconds = engine_.per_doc_classifier_seconds() *
                                 static_cast<double>(stats.total_docs);

  auto fill = [](StageStats& out, const StageClock& clock,
                 std::size_t peak_queue_depth) {
    out.busy_seconds = clock.busy;
    out.idle_seconds = clock.idle;
    out.items = clock.items;
    out.peak_queue_depth = peak_queue_depth;
  };
  stats.pipeline.streaming = true;
  stats.pipeline.cancelled = saw_cancel.load(std::memory_order_relaxed);
  stats.pipeline.queue_capacity = cap;
  stats.pipeline.resident_window = resident_window;
  stats.pipeline.peak_resident_extractions = peak_resident.load();
  fill(stats.pipeline.prefetch, prefetch_clock, prefetched.peak_size());
  fill(stats.pipeline.extract, extract_clock, extracted.peak_size());
  fill(stats.pipeline.route, route_clock, routed.peak_size());
  fill(stats.pipeline.upgrade, upgrade_clock, completed.peak_size());
  fill(stats.pipeline.write, write_clock, 0);
  stats.wall_seconds = wall.seconds();
  stats.simd_tier = simd::active_tier_name();
  run_span.arg("docs", stats.total_docs);
  return stats;
}

EngineStats Pipeline::run_to_jsonl(DocumentSource& source,
                                   std::ostream& os) const {
  io::JsonlWriter writer(os);
  return run(source, [&writer](std::size_t, const io::ParseRecord& record,
                               const RouteDecision&) {
    writer.write(record);
  });
}

RunOutput Pipeline::run_collect(const std::vector<doc::Document>& docs) const {
  RunOutput output;
  output.records.assign(docs.size(), {});
  output.decisions.assign(docs.size(), {});
  VectorSource source(docs);
  output.stats = run(source, [&output](std::size_t index,
                                       const io::ParseRecord& record,
                                       const RouteDecision& decision) {
    output.records[index] = record;
    output.decisions[index] = decision;
  });
  return output;
}

}  // namespace adaparse::core
