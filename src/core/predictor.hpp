// CLS III — the learned per-parser accuracy predictor (paper Fig. 2,
// Appendix A).
//
// Given the default parser's extracted text (plus title/metadata), predicts
// the BLEU each of the six parsers would achieve on the document. Training
// follows the paper's recipe: (1) supervised fine-tuning on (text, BLEU
// vector) pairs; (2) DPO post-training on human preference pairs via a
// LoRA-style low-rank adapter; the adapted scores drive parser selection.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "doc/document.hpp"
#include "ml/dpo.hpp"
#include "ml/encoder.hpp"
#include "ml/linear.hpp"
#include "parsers/parser.hpp"

namespace adaparse::core {

/// One training example: featurizable inputs + the per-parser BLEU targets.
struct RegressionExample {
  std::string text;    ///< default parser's (first-page) output
  std::string title;
  doc::Metadata metadata;
  std::vector<double> bleu;  ///< one entry per ParserKind, in kind order
};

class AccuracyPredictor {
 public:
  explicit AccuracyPredictor(ml::EncoderPtr encoder);

  /// Step 1: supervised fit on the regression corpus.
  void fit(std::span<const RegressionExample> examples,
           const ml::TrainOptions& options = {});

  /// Step 2: DPO post-training. Each tuple is (featurizable inputs of the
  /// document, preferred parser, rejected parser).
  struct Preference {
    std::string text;
    std::string title;
    doc::Metadata metadata;
    parsers::ParserKind winner{};
    parsers::ParserKind loser{};
  };
  void apply_dpo(std::span<const Preference> preferences,
                 const ml::DpoOptions& options = {});

  /// Predicted BLEU (or DPO-adjusted score) per parser, in kind order.
  std::vector<double> predict(std::string_view extracted_text,
                              std::string_view title,
                              const doc::Metadata& metadata) const;
  std::vector<double> predict(const RegressionExample& example) const;

  /// Per-parser R^2 on a held-out set (paper: ~40% PyMuPDF, ~46.5% Nougat).
  std::vector<double> r_squared(
      std::span<const RegressionExample> examples) const;

  const ml::TextEncoder& encoder() const { return *encoder_; }
  bool has_dpo() const { return adapter_ != nullptr; }
  /// Simulated inference cost per document (encoder + head).
  double inference_cost_seconds() const {
    return encoder_->inference_cost_seconds();
  }

 private:
  ml::SparseVec featurize(std::string_view text, std::string_view title,
                          const doc::Metadata& metadata) const;

  ml::EncoderPtr encoder_;
  ml::MultiOutputRegressor head_;
  std::unique_ptr<ml::DpoAdapter> adapter_;
};

}  // namespace adaparse::core
