#include "core/cls2.hpp"

#include <string>

#include "ml/feature_hash.hpp"

namespace adaparse::core {

ml::SparseVec Cls2Improver::featurize(const doc::Metadata& meta) {
  ml::SparseVec v;
  constexpr std::uint64_t kSalt = 0xC152;
  v.push_back(ml::hash_categorical("publisher",
                                   doc::publisher_name(meta.publisher), kDim,
                                   kSalt));
  v.push_back(
      ml::hash_categorical("domain", doc::domain_name(meta.domain), kDim, kSalt));
  v.push_back(
      ml::hash_categorical("format", doc::format_name(meta.format), kDim, kSalt));
  v.push_back(ml::hash_categorical("producer",
                                   doc::producer_name(meta.producer), kDim,
                                   kSalt));
  // Year bucketed by 3 to avoid one-feature-per-year sparsity.
  v.push_back(ml::hash_categorical("year3", std::to_string(meta.year / 3), kDim,
                                   kSalt));
  v.push_back(ml::hash_categorical("subcat", std::to_string(meta.subcategory),
                                   kDim, kSalt));
  v.push_back(ml::hash_categorical("pages4",
                                   std::to_string(meta.num_pages / 4), kDim,
                                   kSalt));
  ml::compact(v);
  ml::l2_normalize(v);
  return v;
}

void Cls2Improver::fit(std::span<const doc::Metadata> metas,
                       std::span<const int> labels,
                       const ml::TrainOptions& options) {
  std::vector<ml::SparseVec> inputs;
  inputs.reserve(metas.size());
  for (const auto& meta : metas) inputs.push_back(featurize(meta));
  model_.fit(inputs, labels, options);
}

double Cls2Improver::improvement_probability(const doc::Metadata& meta) const {
  return model_.predict_proba(featurize(meta));
}

bool Cls2Improver::improvement_likely(const doc::Metadata& meta,
                                      double threshold) const {
  return improvement_probability(meta) >= threshold;
}

}  // namespace adaparse::core
