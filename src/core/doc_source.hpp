// Streaming document sources — where the pipeline pulls its input from.
//
// The paper's engine never holds the corpus in memory: shards are staged
// into node-local storage and documents flow through the stages one at a
// time. DocumentSource abstracts that ingress so the same Pipeline drives
//   - an in-memory corpus           (VectorSource, zero-copy),
//   - a packed shard archive        (ShardSource, paper §6.1 staging), or
//   - a lazily generated stream     (GeneratorSource — corpora far larger
//                                    than RAM, one resident document at a
//                                    time on the producer side).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "doc/document.hpp"
#include "doc/generator.hpp"
#include "io/shard.hpp"

namespace adaparse::core {

/// Pull-based document stream. next() is called from exactly one thread
/// (the pipeline's prefetch stage), so implementations need no locking.
class DocumentSource {
 public:
  virtual ~DocumentSource() = default;

  /// Pulls the next document; nullptr = end of stream.
  virtual std::shared_ptr<const doc::Document> next() = 0;

  /// Total documents if known; 0 = unknown/unbounded (sizing hint only —
  /// the pipeline never relies on it).
  virtual std::size_t size_hint() const { return 0; }
};

/// Zero-copy view over an in-memory corpus. The vector must outlive every
/// pipeline run using this source (documents are aliased, not copied).
class VectorSource final : public DocumentSource {
 public:
  explicit VectorSource(const std::vector<doc::Document>& docs)
      : docs_(&docs) {}

  std::shared_ptr<const doc::Document> next() override {
    if (next_ >= docs_->size()) return nullptr;
    // Aliasing shared_ptr: no ownership, no copy.
    return std::shared_ptr<const doc::Document>(
        std::shared_ptr<const doc::Document>(), &(*docs_)[next_++]);
  }

  std::size_t size_hint() const override { return docs_->size(); }

 private:
  const std::vector<doc::Document>* docs_;
  std::size_t next_ = 0;
};

/// Owning variant of VectorSource for corpora materialized on behalf of a
/// caller who keeps nothing (e.g. documents parsed out of a wire request):
/// the source itself keeps the documents alive for the whole run.
class OwnedVectorSource final : public DocumentSource {
 public:
  explicit OwnedVectorSource(std::vector<doc::Document> docs)
      : docs_(std::move(docs)) {}

  std::shared_ptr<const doc::Document> next() override {
    if (next_ >= docs_.size()) return nullptr;
    // Aliasing shared_ptr into our own vector: valid because the pipeline
    // finishes (and drops every document reference) before the source dies.
    return std::shared_ptr<const doc::Document>(
        std::shared_ptr<const doc::Document>(), &docs_[next_++]);
  }

  std::size_t size_hint() const override { return docs_.size(); }

 private:
  std::vector<doc::Document> docs_;
  std::size_t next_ = 0;
};

/// Generates documents on demand from a CorpusGenerator — the "millions of
/// documents that don't fit in RAM" ingress: only the documents currently
/// in flight through the pipeline are resident.
class GeneratorSource final : public DocumentSource {
 public:
  explicit GeneratorSource(doc::GeneratorConfig config);

  std::shared_ptr<const doc::Document> next() override;
  std::size_t size_hint() const override { return count_; }

 private:
  doc::CorpusGenerator generator_;
  std::size_t count_;
  std::size_t next_ = 0;
};

/// Streams documents out of a packed shard archive (io::ShardReader over a
/// blob produced by io::pack_corpus_shard). Entries are decoded lazily,
/// one document per next() call.
class ShardSource final : public DocumentSource {
 public:
  /// Throws std::runtime_error on a malformed shard.
  explicit ShardSource(std::string blob);

  std::shared_ptr<const doc::Document> next() override;
  std::size_t size_hint() const override { return reader_.count(); }

 private:
  io::ShardReader reader_;
  std::size_t next_ = 0;
};

}  // namespace adaparse::core
