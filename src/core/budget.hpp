// The alpha-budget optimizer (paper §4.1 and Appendix C).
//
// With the parser cohort reduced to {PyMuPDF, Nougat}, the constrained
// accuracy-maximization problem reduces to: sort documents by the expected
// accuracy improvement of Nougat over PyMuPDF and hand the top floor(α n)
// to Nougat. AdaParse applies this per batch (floor(α k), k=256), trading a
// provably small optimality gap for streaming operation; this header
// implements the exact global solution, the per-batch approximation, and
// the alpha derivation from a wall-clock budget.
#pragma once

#include <cstddef>
#include <vector>

namespace adaparse::core {

/// Picks the indices of the floor(alpha*n) entries with the largest
/// predicted gain (gain = predicted Nougat accuracy - predicted PyMuPDF
/// accuracy). Ties broken by lower index. Entries with non-positive gain
/// are still eligible — the constraint is a cap, not a target — unless
/// `require_positive_gain` is set (engine default: upgrading a document the
/// model expects to get *worse* wastes GPU time).
std::vector<std::size_t> select_budgeted(const std::vector<double>& gains,
                                         double alpha,
                                         bool require_positive_gain = true);

/// Per-batch selection: splits [0, n) into consecutive batches of size k
/// and applies select_budgeted within each. Returns global indices.
std::vector<std::size_t> select_budgeted_batched(
    const std::vector<double>& gains, double alpha, std::size_t batch_size,
    bool require_positive_gain = true);

/// Derives the largest admissible alpha from a total compute budget
/// (Appendix C):  alpha <= (T - n*T_cheap) / (n * (T_expensive - T_cheap)).
/// Clamped to [0, 1]; returns 0 when even the cheap parser exceeds T.
double alpha_for_budget(double total_budget_seconds, std::size_t n,
                        double t_cheap_avg, double t_expensive_avg);

/// Sum of gains captured by a selection (the objective value relative to
/// all-cheap parsing); used to measure the per-batch optimality gap.
double selection_objective(const std::vector<double>& gains,
                           const std::vector<std::size_t>& selected);

}  // namespace adaparse::core
