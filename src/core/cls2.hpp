// CLS II — metadata-driven improvement classifier (paper Fig. 2).
//
// For documents whose extraction is valid, CLS II predicts from metadata
// (authoring tool, year, format, page count, ...) whether another parser is
// likely to improve parse quality significantly. "Unlikely" accepts the
// extracted text immediately — the common, cheap path.
#pragma once

#include <span>
#include <vector>

#include "doc/document.hpp"
#include "ml/linear.hpp"
#include "ml/sparse.hpp"

namespace adaparse::core {

/// Logistic model over hashed metadata features.
class Cls2Improver {
 public:
  static constexpr std::uint32_t kDim = 1 << 10;

  Cls2Improver() : model_(kDim) {}

  /// Featurizes metadata (categoricals hashed, year bucketed).
  static ml::SparseVec featurize(const doc::Metadata& meta);

  /// Trains from (metadata, improvement achievable) labels. Label 1 means
  /// some parser beat the extraction BLEU by more than the margin used when
  /// the dataset was built.
  void fit(std::span<const doc::Metadata> metas, std::span<const int> labels,
           const ml::TrainOptions& options = {});

  /// Probability that a better parse is available.
  double improvement_probability(const doc::Metadata& meta) const;

  /// Binary decision at the given threshold.
  bool improvement_likely(const doc::Metadata& meta,
                          double threshold = 0.5) const;

 private:
  ml::LogisticRegression model_;
};

}  // namespace adaparse::core
