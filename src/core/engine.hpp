// The AdaParse engine (paper §5): adaptive parser routing under a compute
// budget, in both published variants.
//
//   AdaParse (FT):  CLS I + CLS II fused into one fast routine (fastText
//                   features + metadata classifier); improvement-likely
//                   documents go straight to Nougat. No LLM inference.
//   AdaParse (LLM): CLS I, then the SciBERT-sim accuracy predictor (CLS
//                   III, optionally DPO-aligned) selects per document;
//                   Nougat assignments are budgeted per batch (floor(α·k)).
//
// The engine exposes three layers: route() (decisions only — used by the
// scaling simulations), run() (full execution through the streaming
// pipeline with warm-started GPU models, producing JSONL-ready records),
// and plan_tasks() (cluster-simulator task specs for Figure 5).
// run_barrier() keeps the original four-stage barrier-synchronized
// execution as the equivalence/throughput baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/cls1.hpp"
#include "core/cls2.hpp"
#include "core/predictor.hpp"
#include "hpc/cluster.hpp"
#include "io/jsonl.hpp"
#include "parsers/parser.hpp"

namespace adaparse::sched {
class ThreadPool;
}  // namespace adaparse::sched

namespace adaparse::core {

class Pipeline;

enum class Variant : std::uint8_t { kFastText, kLlm };
const char* variant_name(Variant v);

struct EngineConfig {
  Variant variant = Variant::kLlm;
  /// Fraction of documents (per batch) allowed to use the high-quality
  /// parser. The paper's evaluation fixes alpha = 5%.
  double alpha = 0.05;
  /// Budget batch size (paper App. C: k = 256).
  std::size_t batch_size = 256;
  /// CLS II probability threshold for "improvement likely" (FT variant).
  double cls2_threshold = 0.5;
  /// Worker threads for run(); 0 = hardware concurrency.
  std::size_t threads = 0;
  Cls1Rules cls1_rules;
};

/// Routing outcome for one document.
struct RouteDecision {
  std::size_t doc_index = 0;
  parsers::ParserKind chosen = parsers::ParserKind::kPyMuPdf;
  bool cls1_valid = true;
  double predicted_gain = 0.0;  ///< Nougat-over-PyMuPDF predicted gain
  double predicted_accuracy = 0.0;  ///< predictor's score for chosen parser
  std::string trail;            ///< e.g. "cls1:valid|cls3:gain=0.12|nougat"
};

/// Timing/throughput observability for one pipeline stage.
struct StageStats {
  double busy_seconds = 0.0;  ///< time spent doing the stage's work
  double idle_seconds = 0.0;  ///< time blocked on queue pop/push
  std::size_t items = 0;      ///< items the stage completed
  std::size_t peak_queue_depth = 0;  ///< high-water mark of the stage's
                                     ///< output queue (0 for the sink)
};

/// Observability of the streaming pipeline behind run(). Default-initialized
/// (streaming = false) when the output came from run_barrier().
struct PipelineStats {
  bool streaming = false;          ///< produced by the streaming pipeline
  /// True when a cooperative cancel stopped admission early (the run still
  /// drained and emitted every admitted document).
  bool cancelled = false;
  std::size_t queue_capacity = 0;  ///< per-stage bound (backpressure window)
  /// Effective admission-credit window: documents in flight (admitted but
  /// not yet written) never exceed this, regardless of corpus size.
  std::size_t resident_window = 0;
  /// Peak number of extractions resident at once (extracted but not yet
  /// written); <= resident_window by construction.
  std::size_t peak_resident_extractions = 0;
  StageStats prefetch, extract, route, upgrade, write;
};

struct EngineStats {
  std::size_t total_docs = 0;
  std::size_t cls1_invalid = 0;
  std::size_t routed_to_nougat = 0;
  std::size_t accepted_extraction = 0;
  std::size_t failed_docs = 0;       ///< unreadable inputs
  double classifier_cpu_seconds = 0.0;  ///< simulated selector cost
  double extraction_cpu_seconds = 0.0;
  double nougat_gpu_seconds = 0.0;
  double wall_seconds = 0.0;         ///< real wall-clock of run()
  /// SIMD dispatch tier the text hot path ran on ("scalar"/"sse2"/"avx2").
  std::string simd_tier;
  PipelineStats pipeline;            ///< streaming-run observability
};

struct RunOutput {
  std::vector<io::ParseRecord> records;     ///< one per document, input order
  std::vector<RouteDecision> decisions;     ///< one per document, input order
  EngineStats stats;
};

class AdaParseEngine {
 public:
  /// `predictor` is required for the LLM variant (CLS III); `improver` is
  /// required for the FT variant (fused CLS I/II) and optional otherwise.
  AdaParseEngine(EngineConfig config,
                 std::shared_ptr<const AccuracyPredictor> predictor,
                 std::shared_ptr<const Cls2Improver> improver);

  /// Routes every document (no parsing of routed targets — extraction runs
  /// once, as it must, since CLS I/III read its output). Extraction uses
  /// the same parallel path as run().
  std::vector<RouteDecision> route(
      const std::vector<doc::Document>& docs) const;

  /// Full execution through the streaming pipeline (core::Pipeline):
  /// prefetch → extract → route → upgrade → write over bounded queues.
  /// Records/decisions are byte-identical to run_barrier().
  RunOutput run(const std::vector<doc::Document>& docs) const;

  /// The original barrier-staged execution (extract everything, then route
  /// everything, then upgrade, then assemble). Kept as the reference
  /// implementation for equivalence tests and the bench_pipeline baseline.
  RunOutput run_barrier(const std::vector<doc::Document>& docs) const;

  /// Cluster-simulator tasks implied by a routing (for Figure 5 sweeps).
  std::vector<hpc::TaskSpec> plan_tasks(
      const std::vector<doc::Document>& docs,
      const std::vector<RouteDecision>& decisions) const;

  /// Behavioral digest of the trained models: a hash of their predictions
  /// on a fixed probe input, which changes whenever the weights do. Two
  /// engines with equal config() and equal digest produce byte-identical
  /// runs — what the campaign layer's resume fingerprint needs.
  std::string model_digest() const;

  const EngineConfig& config() const { return config_; }

 private:
  friend class Pipeline;  ///< the streaming engine reuses the stage kernels

  /// Routes one window of `count` documents whose global indices start at
  /// `base_index`, applying the per-batch floor(alpha*k) budget. The
  /// pointer spans let the streaming pipeline route non-contiguous storage.
  /// `alpha` is explicit so callers under closed-loop control (the serve
  /// path's SLO guardian) can shrink the budget per window; batch paths
  /// always pass config().alpha.
  void route_window(const doc::Document* const* docs,
                    const parsers::ParseResult* const* extractions,
                    std::size_t count, std::size_t base_index, double alpha,
                    RouteDecision* out) const;

  /// Routes one contiguous batch given its extraction results.
  void route_batch(const std::vector<doc::Document>& docs,
                   const std::vector<parsers::ParseResult>& extractions,
                   std::size_t begin, std::size_t end,
                   std::vector<RouteDecision>& out) const;

  /// Runs the default extractor over every document on `pool` (the shared
  /// parallel-extraction path of route() and run_barrier()).
  std::vector<parsers::ParseResult> extract_all(
      const std::vector<doc::Document>& docs, sched::ThreadPool& pool) const;

  /// Assembles the JSONL record for one finished document and updates the
  /// per-document counters in `stats`. `upgrade` is null when no Nougat
  /// parse was attempted. Both execution paths share this, so their
  /// records are identical by construction.
  io::ParseRecord make_record(const doc::Document& document,
                              const RouteDecision& decision,
                              const parsers::ParseResult& extraction,
                              const parsers::ParseResult* upgrade,
                              EngineStats& stats) const;

  /// Simulated selector cost per document (CLS III inference vs CLS II).
  double per_doc_classifier_seconds() const;

  /// Worker-thread count implied by the config (0 = hardware concurrency).
  std::size_t worker_threads() const;

  EngineConfig config_;
  std::shared_ptr<const AccuracyPredictor> predictor_;
  std::shared_ptr<const Cls2Improver> improver_;
  parsers::ParserPtr extractor_;  ///< the default parser (SimPyMuPdf)
  parsers::ParserPtr nougat_;     ///< the high-quality parser
};

}  // namespace adaparse::core
