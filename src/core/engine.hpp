// The AdaParse engine (paper §5): adaptive parser routing under a compute
// budget, in both published variants.
//
//   AdaParse (FT):  CLS I + CLS II fused into one fast routine (fastText
//                   features + metadata classifier); improvement-likely
//                   documents go straight to Nougat. No LLM inference.
//   AdaParse (LLM): CLS I, then the SciBERT-sim accuracy predictor (CLS
//                   III, optionally DPO-aligned) selects per document;
//                   Nougat assignments are budgeted per batch (floor(α·k)).
//
// The engine exposes three layers: route() (decisions only — used by the
// scaling simulations), run() (full parallel execution on a thread pool
// with warm-started GPU models, producing JSONL-ready records), and
// plan_tasks() (cluster-simulator task specs for Figure 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/cls1.hpp"
#include "core/cls2.hpp"
#include "core/predictor.hpp"
#include "hpc/cluster.hpp"
#include "io/jsonl.hpp"
#include "parsers/parser.hpp"

namespace adaparse::core {

enum class Variant : std::uint8_t { kFastText, kLlm };
const char* variant_name(Variant v);

struct EngineConfig {
  Variant variant = Variant::kLlm;
  /// Fraction of documents (per batch) allowed to use the high-quality
  /// parser. The paper's evaluation fixes alpha = 5%.
  double alpha = 0.05;
  /// Budget batch size (paper App. C: k = 256).
  std::size_t batch_size = 256;
  /// CLS II probability threshold for "improvement likely" (FT variant).
  double cls2_threshold = 0.5;
  /// Worker threads for run(); 0 = hardware concurrency.
  std::size_t threads = 0;
  Cls1Rules cls1_rules;
};

/// Routing outcome for one document.
struct RouteDecision {
  std::size_t doc_index = 0;
  parsers::ParserKind chosen = parsers::ParserKind::kPyMuPdf;
  bool cls1_valid = true;
  double predicted_gain = 0.0;  ///< Nougat-over-PyMuPDF predicted gain
  double predicted_accuracy = 0.0;  ///< predictor's score for chosen parser
  std::string trail;            ///< e.g. "cls1:valid|cls3:gain=0.12|nougat"
};

struct EngineStats {
  std::size_t total_docs = 0;
  std::size_t cls1_invalid = 0;
  std::size_t routed_to_nougat = 0;
  std::size_t accepted_extraction = 0;
  std::size_t failed_docs = 0;       ///< unreadable inputs
  double classifier_cpu_seconds = 0.0;  ///< simulated selector cost
  double extraction_cpu_seconds = 0.0;
  double nougat_gpu_seconds = 0.0;
  double wall_seconds = 0.0;         ///< real wall-clock of run()
};

struct RunOutput {
  std::vector<io::ParseRecord> records;     ///< one per document, input order
  std::vector<RouteDecision> decisions;     ///< one per document, input order
  EngineStats stats;
};

class AdaParseEngine {
 public:
  /// `predictor` is required for the LLM variant (CLS III); `improver` is
  /// required for the FT variant (fused CLS I/II) and optional otherwise.
  AdaParseEngine(EngineConfig config,
                 std::shared_ptr<const AccuracyPredictor> predictor,
                 std::shared_ptr<const Cls2Improver> improver);

  /// Routes every document (no parsing of routed targets — extraction runs
  /// once, as it must, since CLS I/III read its output).
  std::vector<RouteDecision> route(
      const std::vector<doc::Document>& docs) const;

  /// Full parallel execution: extraction pool, batched routing, budgeted
  /// Nougat parses on warm models, JSONL-ready records.
  RunOutput run(const std::vector<doc::Document>& docs) const;

  /// Cluster-simulator tasks implied by a routing (for Figure 5 sweeps).
  std::vector<hpc::TaskSpec> plan_tasks(
      const std::vector<doc::Document>& docs,
      const std::vector<RouteDecision>& decisions) const;

  const EngineConfig& config() const { return config_; }

 private:
  /// Routes one contiguous batch given its extraction results.
  void route_batch(const std::vector<doc::Document>& docs,
                   const std::vector<parsers::ParseResult>& extractions,
                   std::size_t begin, std::size_t end,
                   std::vector<RouteDecision>& out) const;

  EngineConfig config_;
  std::shared_ptr<const AccuracyPredictor> predictor_;
  std::shared_ptr<const Cls2Improver> improver_;
  parsers::ParserPtr extractor_;  ///< the default parser (SimPyMuPdf)
  parsers::ParserPtr nougat_;     ///< the high-quality parser
};

}  // namespace adaparse::core
