#include "core/doc_source.hpp"

#include "io/doc_codec.hpp"
#include "util/json.hpp"

namespace adaparse::core {

GeneratorSource::GeneratorSource(doc::GeneratorConfig config)
    : generator_(config), count_(config.num_documents) {}

std::shared_ptr<const doc::Document> GeneratorSource::next() {
  if (next_ >= count_) return nullptr;
  return std::make_shared<const doc::Document>(
      generator_.generate_one(next_++));
}

ShardSource::ShardSource(std::string blob) : reader_(std::move(blob)) {}

std::shared_ptr<const doc::Document> ShardSource::next() {
  if (next_ >= reader_.count()) return nullptr;
  const auto& entry = reader_.entries()[next_++];
  return std::make_shared<const doc::Document>(
      io::document_from_json(util::Json::parse(entry.payload)));
}

}  // namespace adaparse::core
