#include "core/budget.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace adaparse::core {

std::vector<std::size_t> select_budgeted(const std::vector<double>& gains,
                                         double alpha,
                                         bool require_positive_gain) {
  const auto budget = static_cast<std::size_t>(
      std::floor(std::clamp(alpha, 0.0, 1.0) * static_cast<double>(gains.size())));
  if (budget == 0) return {};

  std::vector<std::size_t> order(gains.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable partial selection: largest gains first, index order on ties.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return gains[a] > gains[b];
                   });
  std::vector<std::size_t> selected;
  selected.reserve(budget);
  for (std::size_t i = 0; i < order.size() && selected.size() < budget; ++i) {
    if (require_positive_gain && gains[order[i]] <= 0.0) break;
    selected.push_back(order[i]);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<std::size_t> select_budgeted_batched(
    const std::vector<double>& gains, double alpha, std::size_t batch_size,
    bool require_positive_gain) {
  if (batch_size == 0) batch_size = 1;
  std::vector<std::size_t> selected;
  for (std::size_t begin = 0; begin < gains.size(); begin += batch_size) {
    const std::size_t end = std::min(gains.size(), begin + batch_size);
    const std::vector<double> slice(gains.begin() + static_cast<long>(begin),
                                    gains.begin() + static_cast<long>(end));
    for (std::size_t local : select_budgeted(slice, alpha,
                                             require_positive_gain)) {
      selected.push_back(begin + local);
    }
  }
  return selected;
}

double alpha_for_budget(double total_budget_seconds, std::size_t n,
                        double t_cheap_avg, double t_expensive_avg) {
  if (n == 0 || t_expensive_avg <= t_cheap_avg) return 0.0;
  const double nn = static_cast<double>(n);
  const double alpha =
      (total_budget_seconds - nn * t_cheap_avg) /
      (nn * (t_expensive_avg - t_cheap_avg));
  return std::clamp(alpha, 0.0, 1.0);
}

double selection_objective(const std::vector<double>& gains,
                           const std::vector<std::size_t>& selected) {
  double total = 0.0;
  for (std::size_t i : selected) total += gains[i];
  return total;
}

}  // namespace adaparse::core
