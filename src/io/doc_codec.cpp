#include "io/doc_codec.hpp"

#include <stdexcept>

#include "io/shard.hpp"

namespace adaparse::io {
namespace {

util::Json pages_to_json(const std::vector<std::string>& pages) {
  util::JsonArray arr;
  arr.reserve(pages.size());
  for (const auto& page : pages) arr.emplace_back(page);
  return util::Json(std::move(arr));
}

std::vector<std::string> pages_from_json(const util::Json& j) {
  std::vector<std::string> pages;
  pages.reserve(j.as_array().size());
  for (const auto& page : j.as_array()) pages.push_back(page.as_string());
  return pages;
}

int checked_enum(const util::Json& j, const char* field, int upper) {
  const int v = static_cast<int>(j.at(field).as_number());
  if (v < 0 || v >= upper) {
    throw std::runtime_error(std::string("document_from_json: ") + field +
                             " out of range");
  }
  return v;
}

}  // namespace

util::Json document_to_json(const doc::Document& document) {
  util::JsonObject obj;
  obj["id"] = document.id;
  obj["publisher"] = static_cast<int>(document.meta.publisher);
  obj["domain"] = static_cast<int>(document.meta.domain);
  obj["subcategory"] = document.meta.subcategory;
  obj["year"] = document.meta.year;
  obj["format"] = static_cast<int>(document.meta.format);
  obj["producer"] = static_cast<int>(document.meta.producer);
  obj["meta_pages"] = document.meta.num_pages;
  obj["title"] = document.meta.title;
  obj["groundtruth"] = pages_to_json(document.groundtruth_pages);
  obj["text_pages"] = pages_to_json(document.text_layer.pages);
  obj["text_fidelity"] = document.text_layer.fidelity;
  obj["text_present"] = document.text_layer.present;
  obj["born_digital"] = document.image_layer.born_digital;
  obj["rotation_deg"] = document.image_layer.rotation_deg;
  obj["blur_sigma"] = document.image_layer.blur_sigma;
  obj["contrast"] = document.image_layer.contrast;
  obj["compression"] = document.image_layer.compression;
  obj["layout_complexity"] = document.layout_complexity;
  obj["math_density"] = document.math_density;
  obj["chem_density"] = document.chem_density;
  obj["seed"] = std::to_string(document.seed);
  obj["corrupted"] = document.corrupted;
  return util::Json(std::move(obj));
}

doc::Document document_from_json(const util::Json& j) {
  doc::Document document;
  document.id = j.at("id").as_string();
  document.meta.publisher = static_cast<doc::Publisher>(
      checked_enum(j, "publisher", static_cast<int>(doc::kNumPublishers)));
  document.meta.domain = static_cast<doc::Domain>(
      checked_enum(j, "domain", static_cast<int>(doc::kNumDomains)));
  document.meta.subcategory = static_cast<int>(j.at("subcategory").as_number());
  document.meta.year = static_cast<int>(j.at("year").as_number());
  document.meta.format = static_cast<doc::PdfFormat>(
      checked_enum(j, "format", static_cast<int>(doc::kNumFormats)));
  document.meta.producer = static_cast<doc::ProducerTool>(
      checked_enum(j, "producer", static_cast<int>(doc::kNumProducers)));
  document.meta.num_pages = static_cast<int>(j.at("meta_pages").as_number());
  document.meta.title = j.at("title").as_string();
  document.groundtruth_pages = pages_from_json(j.at("groundtruth"));
  document.text_layer.pages = pages_from_json(j.at("text_pages"));
  document.text_layer.fidelity = j.at("text_fidelity").as_number();
  document.text_layer.present = j.at("text_present").as_bool();
  document.image_layer.born_digital = j.at("born_digital").as_bool();
  document.image_layer.rotation_deg = j.at("rotation_deg").as_number();
  document.image_layer.blur_sigma = j.at("blur_sigma").as_number();
  document.image_layer.contrast = j.at("contrast").as_number();
  document.image_layer.compression = j.at("compression").as_number();
  document.layout_complexity = j.at("layout_complexity").as_number();
  document.math_density = j.at("math_density").as_number();
  document.chem_density = j.at("chem_density").as_number();
  document.seed = std::stoull(j.at("seed").as_string());
  document.corrupted = j.at("corrupted").as_bool();
  return document;
}

std::string pack_corpus_shard(const std::vector<doc::Document>& docs) {
  ShardWriter writer;
  for (const auto& document : docs) {
    writer.add(document.id, document_to_json(document).dump());
  }
  return writer.finish();
}

std::vector<doc::Document> unpack_corpus_shard(const std::string& blob) {
  ShardReader reader(blob);
  std::vector<doc::Document> docs;
  docs.reserve(reader.count());
  for (const auto& entry : reader.entries()) {
    docs.push_back(document_from_json(util::Json::parse(entry.payload)));
  }
  return docs;
}

}  // namespace adaparse::io
