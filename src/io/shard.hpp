// Shard archives: many small documents packed into few large files.
//
// Paper §6.1: "we aggregate and chunk input files into a set of compressed
// ZIP archives and transfer them to node-local RAM storage" to avoid
// hammering Lustre with small-file I/O. This module implements that
// pattern: a simple length-prefixed archive with a trailing index, plus an
// in-memory variant the cluster simulator uses to model staging costs.
// (No actual compression codec is shipped offline, so entries are stored
// with a run-length pre-pass that stands in for DEFLATE; the I/O pattern —
// one large sequential file per shard — is what matters for the system.)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaparse::io {

/// One archived entry.
struct ShardEntry {
  std::string name;
  std::string payload;
};

/// Builds a shard in memory and serializes it to a single contiguous blob.
class ShardWriter {
 public:
  void add(std::string name, std::string payload);
  std::size_t count() const { return entries_.size(); }
  /// Total payload bytes added (pre-encoding).
  std::size_t payload_bytes() const { return payload_bytes_; }

  /// Serializes: [magic][n][entries: name_len,name,data_len,data...][index].
  std::string finish() const;

 private:
  std::vector<ShardEntry> entries_;
  std::size_t payload_bytes_ = 0;
};

/// Reads a serialized shard; validates magic and lengths.
class ShardReader {
 public:
  /// Throws std::runtime_error on malformed input.
  explicit ShardReader(std::string blob);

  std::size_t count() const { return entries_.size(); }
  const std::vector<ShardEntry>& entries() const { return entries_; }
  /// Looks an entry up by name.
  std::optional<std::string_view> find(std::string_view name) const;

 private:
  std::string blob_;
  std::vector<ShardEntry> entries_;
};

/// Run-length encoding used as the stand-in "compression" codec.
std::string rle_encode(std::string_view s);
std::string rle_decode(std::string_view s);

/// Splits `names` into shards of at most `shard_bytes` payload each, greedy
/// in order; returns shard boundaries as index ranges [begin, end).
std::vector<std::pair<std::size_t, std::size_t>> plan_shards(
    const std::vector<std::size_t>& payload_sizes, std::size_t shard_bytes);

}  // namespace adaparse::io
