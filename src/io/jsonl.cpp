#include "io/jsonl.hpp"

#include <istream>
#include <ostream>

namespace adaparse::io {

util::Json ParseRecord::to_json() const {
  util::JsonObject obj;
  obj["id"] = document_id;
  obj["parser"] = parser;
  obj["text"] = text;
  obj["predicted_accuracy"] = predicted_accuracy;
  obj["route"] = route;
  obj["pages"] = pages;
  obj["pages_retrieved"] = pages_retrieved;
  return util::Json(std::move(obj));
}

ParseRecord ParseRecord::from_json(const util::Json& j) {
  ParseRecord r;
  r.document_id = j.at("id").as_string();
  r.parser = j.at("parser").as_string();
  r.text = j.at("text").as_string();
  r.predicted_accuracy = j.at("predicted_accuracy").as_number();
  r.route = j.at("route").as_string();
  r.pages = static_cast<int>(j.at("pages").as_number());
  r.pages_retrieved = static_cast<int>(j.at("pages_retrieved").as_number());
  return r;
}

void JsonlWriter::write(const ParseRecord& record) {
  os_ << record.to_json().dump() << '\n';
  ++count_;
}

std::vector<ParseRecord> read_jsonl(std::istream& is) {
  std::vector<ParseRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    records.push_back(ParseRecord::from_json(util::Json::parse(line)));
  }
  return records;
}

}  // namespace adaparse::io
