// Document (de)serialization — the on-disk form of a corpus.
//
// The streaming pipeline can ingest documents from a shard archive instead
// of RAM (paper §6.1: inputs are staged as packed archives in node-local
// storage). This codec defines the entry payload: one compact JSON object
// per document carrying every field, so a ShardSource round-trips corpora
// exactly — including the per-document RNG seed that makes every
// (parser, document) pair deterministic.
#pragma once

#include <string>
#include <vector>

#include "doc/document.hpp"
#include "util/json.hpp"

namespace adaparse::io {

/// Serializes every Document field (seed encoded as a decimal string so
/// 64-bit values survive JSON's double-precision numbers).
util::Json document_to_json(const doc::Document& document);

/// Inverse of document_to_json; throws std::runtime_error on malformed or
/// out-of-range fields.
doc::Document document_from_json(const util::Json& j);

/// Packs a corpus into one shard blob (entry name = document id, payload =
/// compact document JSON). Readable by ShardReader / core::ShardSource.
std::string pack_corpus_shard(const std::vector<doc::Document>& docs);

/// Inverse of pack_corpus_shard: decodes every document in a shard blob,
/// in entry order. Throws std::runtime_error on a malformed shard or
/// malformed entry payloads (the campaign runner treats that as a corrupt
/// shard file and re-stages it).
std::vector<doc::Document> unpack_corpus_shard(const std::string& blob);

}  // namespace adaparse::io
