// Small filesystem helpers for durable campaign state.
//
// The campaign runner journals progress to disk and must never leave a
// half-written shard or output file visible to a resumed run: every file
// is written to a temporary sibling and renamed into place (rename is
// atomic on POSIX filesystems). Reads return nullopt rather than throwing
// so callers can treat a missing file as "not yet produced".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace adaparse::io {

/// Reads a whole file into memory; nullopt if it cannot be opened.
std::optional<std::string> read_file(const std::string& path);

/// Writes `bytes` to `path` via a temporary sibling + rename, so a reader
/// (or a resumed run) never observes a partially written file. The temp
/// file is fsync'd before the rename and the parent directory after it, so
/// the rename is a durable commit point (not just an atomic one) — a power
/// cut can lose the whole write, never replace good bytes with bad. Throws
/// std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Total successful fsyncs issued by write_file_atomic since process
/// start — a test hook asserting the durability path is actually
/// exercised (each call syncs the temp file and its parent directory).
std::uint64_t fsync_count_for_testing();

/// FNV-1a over a byte string — the integrity checksum the campaign layer
/// records for shard outputs and manifest lines.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace adaparse::io
