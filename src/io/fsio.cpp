#include "io/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace adaparse::io {
namespace {

std::atomic<std::uint64_t> fsync_count{0};

/// fsync with EINTR retry; counts every successful sync for the test hook.
bool fsync_fd(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) fsync_count.fetch_add(1, std::memory_order_relaxed);
  return rc == 0;
}

bool write_fully(int fd, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Syncs the directory holding `path`, making the rename itself durable.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // not fatal: the data itself is already synced
  fsync_fd(fd);
  ::close(fd);
}

}  // namespace

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  // Unique per-call temp name: two threads atomically writing the same
  // path (e.g. a primary attempt and its hedge both re-staging one corrupt
  // shard) must not race on a shared temp file — whoever renames last
  // wins, and with deterministic content both outcomes are identical.
  static std::atomic<unsigned long> sequence{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(sequence.fetch_add(1) + 1);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw std::runtime_error("write_file_atomic: cannot open " + tmp);
  }
  // The ordering that makes rename a true commit point: data must be on
  // disk *before* the new name appears (fsync the temp file), and the name
  // swap itself must survive a crash (fsync the parent directory after the
  // rename). Skipping either step lets a power cut leave the final path
  // referring to an empty or half-written file.
  if (!write_fully(fd, bytes) || !fsync_fd(fd)) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: write failed " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename failed " + path);
  }
  fsync_parent_dir(path);
}

std::uint64_t fsync_count_for_testing() {
  return fsync_count.load(std::memory_order_relaxed);
}

std::uint64_t fnv1a(std::string_view bytes) { return util::hash64(bytes); }

}  // namespace adaparse::io
