#include "io/fsio.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace adaparse::io {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  // Unique per-call temp name: two threads atomically writing the same
  // path (e.g. a primary attempt and its hedge both re-staging one corrupt
  // shard) must not race on a shared temp file — whoever renames last
  // wins, and with deterministic content both outcomes are identical.
  static std::atomic<unsigned long> sequence{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(sequence.fetch_add(1) + 1);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write_file_atomic: write failed " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename failed " + path);
  }
}

std::uint64_t fnv1a(std::string_view bytes) { return util::hash64(bytes); }

}  // namespace adaparse::io
