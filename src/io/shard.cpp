#include "io/shard.hpp"

#include <cstring>
#include <stdexcept>

namespace adaparse::io {
namespace {

constexpr std::uint32_t kMagic = 0xADA90001;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

std::uint32_t get_u32(std::string_view s, std::size_t& pos) {
  if (pos + 4 > s.size()) {
    throw std::runtime_error("shard: truncated (u32)");
  }
  std::uint32_t v = 0;
  std::memcpy(&v, s.data() + pos, 4);
  pos += 4;
  return v;
}

std::string_view get_bytes(std::string_view s, std::size_t& pos,
                           std::size_t n) {
  if (pos + n > s.size()) {
    throw std::runtime_error("shard: truncated (bytes)");
  }
  const auto out = s.substr(pos, n);
  pos += n;
  return out;
}

}  // namespace

std::string rle_encode(std::string_view s) {
  // Format: pairs of (count byte 1..255, char). Worst case 2x; typical text
  // with whitespace runs compresses slightly — enough to exercise the
  // encode/decode path the way DEFLATE would.
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    std::size_t run = 1;
    while (i + run < s.size() && s[i + run] == c && run < 255) ++run;
    out += static_cast<char>(run);
    out += c;
    i += run;
  }
  return out;
}

std::string rle_decode(std::string_view s) {
  if (s.size() % 2 != 0) {
    throw std::runtime_error("rle: odd-length input");
  }
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const auto run = static_cast<unsigned char>(s[i]);
    if (run == 0) throw std::runtime_error("rle: zero run length");
    out.append(run, s[i + 1]);
  }
  return out;
}

void ShardWriter::add(std::string name, std::string payload) {
  payload_bytes_ += payload.size();
  entries_.push_back({std::move(name), std::move(payload)});
}

std::string ShardWriter::finish() const {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& entry : entries_) {
    const std::string encoded = rle_encode(entry.payload);
    put_u32(out, static_cast<std::uint32_t>(entry.name.size()));
    out += entry.name;
    put_u32(out, static_cast<std::uint32_t>(encoded.size()));
    out += encoded;
  }
  return out;
}

ShardReader::ShardReader(std::string blob) : blob_(std::move(blob)) {
  std::size_t pos = 0;
  if (get_u32(blob_, pos) != kMagic) {
    throw std::runtime_error("shard: bad magic");
  }
  const std::uint32_t n = get_u32(blob_, pos);
  entries_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t name_len = get_u32(blob_, pos);
    const auto name = get_bytes(blob_, pos, name_len);
    const std::uint32_t data_len = get_u32(blob_, pos);
    const auto encoded = get_bytes(blob_, pos, data_len);
    entries_.push_back({std::string(name), rle_decode(encoded)});
  }
  if (pos != blob_.size()) {
    throw std::runtime_error("shard: trailing bytes");
  }
}

std::optional<std::string_view> ShardReader::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return std::string_view(entry.payload);
  }
  return std::nullopt;
}

std::vector<std::pair<std::size_t, std::size_t>> plan_shards(
    const std::vector<std::size_t>& payload_sizes, std::size_t shard_bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> shards;
  std::size_t begin = 0, acc = 0;
  for (std::size_t i = 0; i < payload_sizes.size(); ++i) {
    if (acc > 0 && acc + payload_sizes[i] > shard_bytes) {
      shards.emplace_back(begin, i);
      begin = i;
      acc = 0;
    }
    acc += payload_sizes[i];
  }
  if (begin < payload_sizes.size()) {
    shards.emplace_back(begin, payload_sizes.size());
  }
  return shards;
}

}  // namespace adaparse::io
