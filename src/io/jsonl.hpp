// JSONL output records — AdaParse's output format (paper Fig. 2: parsed
// text is written to storage as JSONL).
//
// Each record carries the document id, the parser that produced the accepted
// text, the text itself, and the routing decision trail, so downstream data
// curation can filter by provenance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace adaparse::io {

/// One parsed-document record.
struct ParseRecord {
  std::string document_id;
  std::string parser;          ///< name of the parser whose output was kept
  std::string text;            ///< accepted full text
  double predicted_accuracy = 0.0;  ///< selector's score for the chosen parser
  std::string route;           ///< routing trail, e.g. "cls1:valid,cls2:keep"
  int pages = 0;
  int pages_retrieved = 0;

  util::Json to_json() const;
  static ParseRecord from_json(const util::Json& j);
};

/// Append-oriented JSONL writer over any ostream.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}
  void write(const ParseRecord& record);
  std::size_t count() const { return count_; }

 private:
  std::ostream& os_;
  std::size_t count_ = 0;
};

/// Parses a whole JSONL document (used by tests and the examples).
std::vector<ParseRecord> read_jsonl(std::istream& is);

}  // namespace adaparse::io
