// Frozen seed implementations of the text hot path.
//
// The classification/encoding/scoring hot path was rewritten to be
// single-pass and (near-)zero-allocation. These are the original multi-pass,
// allocation-heavy implementations, kept verbatim as ground truth:
//
//  - the equivalence test suite (tests/hotpath_test.cpp) asserts the
//    optimized paths produce byte-identical TextFeatures / SparseVec /
//    scores, which in turn pins routing decisions and engine output;
//  - bench_micro runs both versions side by side and reports the speedup
//    in BENCH_micro.json.
//
// Do not "optimize" this file; its only job is to stay identical to the
// seed behavior.
#pragma once

#include <string_view>
#include <span>
#include <string>

#include "metrics/scores.hpp"
#include "ml/feature_hash.hpp"
#include "text/features.hpp"

namespace adaparse::reference {

/// Seed `text::compute_features`: one independent pass per feature family
/// (~10 traversals), tokenizing into owned strings.
text::TextFeatures compute_features_seed(std::string_view s);

/// Seed `ml::hash_text`: lowercases the whole body into a copy, tokenizes it
/// into a second vector of strings, re-hashes each token once per n-gram
/// order, and accumulates through std::unordered_map.
ml::SparseVec hash_text_seed(std::string_view text,
                             const ml::HashOptions& options);

/// Seed `metrics::bleu`: tokenizes both sides into owned strings and
/// re-hashes every token once per n-gram order.
double bleu_seed(std::string_view candidate, std::string_view reference);

/// Seed `metrics::rouge`: tokenizes both sides into owned strings, then
/// copies tokens again in block sampling.
double rouge_seed(std::string_view candidate, std::string_view reference);

/// Seed `metrics::score_document`: unreserved page concatenation and a full
/// token vector allocated just to count tokens.
metrics::DocumentScores score_document_seed(
    std::span<const std::string> candidate_pages,
    std::span<const std::string> reference_pages);

}  // namespace adaparse::reference
