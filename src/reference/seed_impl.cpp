// Verbatim seed implementations. Everything here is self-contained on
// purpose: the helpers below are copies of the seed's <cctype>-based
// tokenizer and detectors, NOT the charclass-table versions the optimized
// hot path uses — so a table-construction bug cannot hide by affecting
// both sides of the equivalence tests, and the *_Seed benchmarks time the
// seed's real allocation and traversal behavior.
#include "reference/seed_impl.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "metrics/bleu.hpp"
#include "metrics/edit_distance.hpp"
#include "util/rng.hpp"

namespace adaparse::reference {
namespace {

// ------------------------------------------------------ seed tokenizer ----

bool is_word_char(unsigned char c) {
  return std::isalnum(c) != 0 || c == '-' || c == '\'' || c == '_';
}

std::vector<std::string> tokenize_seed(std::string_view s) {
  std::vector<std::string> tokens;
  tokens.reserve(s.size() / 6 + 1);
  std::size_t i = 0;
  while (i < s.size()) {
    const auto c = static_cast<unsigned char>(s[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (is_word_char(c)) {
      std::size_t j = i + 1;
      while (j < s.size() && is_word_char(static_cast<unsigned char>(s[j]))) {
        ++j;
      }
      tokens.emplace_back(s.substr(i, j - i));
      i = j;
    } else {
      tokens.emplace_back(1, s[i]);
      ++i;
    }
  }
  return tokens;
}

std::vector<std::string> split_whitespace_seed(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string to_lower_seed(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_alpha_seed(std::string_view token) {
  if (token.empty()) return false;
  for (unsigned char c : token) {
    if (std::isalpha(c) == 0) return false;
  }
  return true;
}

// ------------------------------------------------------ seed detectors ----

bool is_vowel(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'a': case 'e': case 'i': case 'o': case 'u': case 'y':
      return true;
    default:
      return false;
  }
}

std::size_t longest_consonant_run(std::string_view token) {
  std::size_t best = 0, cur = 0;
  for (char c : token) {
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 && !is_vowel(c)) {
      best = std::max(best, ++cur);
    } else {
      cur = 0;
    }
  }
  return best;
}

bool is_common_bigram(char a, char b) {
  static const bool* table = [] {
    static bool t[26 * 26] = {};
    static const char* kBigrams[] = {
        "th", "he", "in", "er", "an", "re", "on", "at", "en", "nd", "ti",
        "es", "or", "te", "of", "ed", "is", "it", "al", "ar", "st", "to",
        "nt", "ng", "se", "ha", "as", "ou", "io", "le", "ve", "co", "me",
        "de", "hi", "ri", "ro", "ic", "ne", "ea", "ra", "ce", "li", "ch",
        "ll", "be", "ma", "si", "om", "ur", "ca", "el", "ta", "la", "ns",
        "di", "fo", "ho", "pe", "ec", "pr", "no", "ct", "us", "ac", "ot",
        "il", "tr", "ly", "nc", "et", "ut", "ss", "so", "rs", "un", "lo",
        "wa", "ge", "ie", "wh", "ee", "wi", "em", "ad", "ol", "rt", "po",
        "we", "na", "ul", "ni", "ts", "mo", "ow", "pa", "im", "mi", "ai",
        "sh", "ir", "su", "id", "os", "iv", "ia", "am", "fi", "ci", "vi",
        "pl", "ig", "tu", "ev", "ld", "ry", "mp", "fe", "bl", "ab", "gh",
        "ty", "op", "wo", "sa", "ay", "ex", "ke", "ui", "pt", "do", "ua",
        "uc", "qu", "ef", "ff", "ap", "ub", "bo", "rm", "va", "lu", "ue",
        "od", "ls", "ob", "bs", "rv", "ib", "bu", "ys", "lt", "tw", "sc",
        "ks", "ms", "ds", "ph", "gr", "cl", "fl", "sp", "pu", "cu", "vo",
        "ga", "bi", "du", "fu", "mu", "nu", "ru", "hy", "my", "by", "dy",
        "gy", "av", "ov", "uv", "aw", "ew", "ey", "oy", "oc", "og", "ug",
        "eg", "ag", "ip", "up", "ep", "oi", "au", "eu", "ei", "yp", "ym",
        "yn", "ya", "cy", "fy", "gi", "go", "ja", "jo", "ki", "ko", "ku",
        "oa", "oe", "oo", nullptr};
    for (const char** p = kBigrams; *p != nullptr; ++p) {
      const char* bg = *p;
      if (bg[0] >= 'a' && bg[0] <= 'z' && bg[1] >= 'a' && bg[1] <= 'z') {
        t[(bg[0] - 'a') * 26 + (bg[1] - 'a')] = true;
      }
    }
    return t;
  }();
  const auto la = static_cast<char>(std::tolower(static_cast<unsigned char>(a)));
  const auto lb = static_cast<char>(std::tolower(static_cast<unsigned char>(b)));
  if (la < 'a' || la > 'z' || lb < 'a' || lb > 'z') return false;
  return table[(la - 'a') * 26 + (lb - 'a')];
}

double common_bigram_fraction(std::string_view token) {
  if (token.size() < 2) return 1.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i + 1 < token.size(); ++i) {
    if (is_common_bigram(token[i], token[i + 1])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(token.size() - 1);
}

bool is_smiles_char(char c) {
  switch (c) {
    case '=': case '#': case '(': case ')': case '[': case ']':
    case '@': case '+': case '-': case '/': case '\\':
      return true;
    default:
      return std::isupper(static_cast<unsigned char>(c)) != 0 ||
             std::isdigit(static_cast<unsigned char>(c)) != 0 ||
             c == 'c' || c == 'n' || c == 'o' || c == 's';
  }
}

std::size_t latex_artifact_count_seed(std::string_view s) {
  std::size_t count = 0;
  long brace_balance = 0;
  std::size_t dollars = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\\' && i + 1 < s.size() &&
        std::isalpha(static_cast<unsigned char>(s[i + 1])) != 0) {
      ++count;
    } else if (c == '{') {
      ++brace_balance;
    } else if (c == '}') {
      --brace_balance;
    } else if (c == '$') {
      ++dollars;
    } else if (c == '^' || c == '_') {
      if (i + 1 < s.size() && s[i + 1] == '{') ++count;
    }
  }
  count += static_cast<std::size_t>(std::abs(brace_balance));
  count += dollars % 2;
  count += dollars / 2;
  return count;
}

std::size_t smiles_like_count_seed(std::string_view s) {
  std::size_t count = 0;
  for (const auto& token : split_whitespace_seed(s)) {
    if (token.size() < 6) continue;
    std::size_t smiles_chars = 0, ring_or_bond = 0, upper = 0;
    for (char c : token) {
      if (!is_smiles_char(c)) {
        smiles_chars = 0;
        break;
      }
      ++smiles_chars;
      if (c == '=' || c == '#' || c == '(' || c == ')' || c == '[' ||
          c == ']') {
        ++ring_or_bond;
      }
      if (std::isupper(static_cast<unsigned char>(c)) != 0) ++upper;
    }
    if (smiles_chars == token.size() && ring_or_bond >= 2 && upper >= 2) {
      ++count;
    }
  }
  return count;
}

double scrambled_token_ratio_seed(std::string_view s) {
  std::size_t alpha_tokens = 0, scrambled = 0;
  for (const auto& token : split_whitespace_seed(s)) {
    if (token.size() < 4 || !is_alpha_seed(token)) continue;
    ++alpha_tokens;
    if (longest_consonant_run(token) > 4) {
      ++scrambled;
      continue;
    }
    std::size_t case_flips = 0;
    for (std::size_t i = 1; i < token.size(); ++i) {
      const bool prev_up =
          std::isupper(static_cast<unsigned char>(token[i - 1])) != 0;
      const bool cur_up =
          std::isupper(static_cast<unsigned char>(token[i])) != 0;
      if (prev_up != cur_up && i > 1) ++case_flips;
    }
    if (case_flips >= 3) {
      ++scrambled;
      continue;
    }
    if (token.size() >= 6 && common_bigram_fraction(token) < 0.55) {
      ++scrambled;
    }
  }
  if (alpha_tokens == 0) return 0.0;
  return static_cast<double>(scrambled) / static_cast<double>(alpha_tokens);
}

double whitespace_ratio_seed(std::string_view s) {
  if (s.empty()) return 0.0;
  std::size_t ws = 0;
  for (unsigned char c : s) {
    if (std::isspace(c) != 0) ++ws;
  }
  return static_cast<double>(ws) / static_cast<double>(s.size());
}

double alpha_ratio_seed(std::string_view s) {
  if (s.empty()) return 0.0;
  std::size_t n = 0;
  for (unsigned char c : s) {
    if (std::isalpha(c) != 0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(s.size());
}

double digit_ratio_seed(std::string_view s) {
  if (s.empty()) return 0.0;
  std::size_t n = 0;
  for (unsigned char c : s) {
    if (std::isdigit(c) != 0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(s.size());
}

double non_ascii_ratio_seed(std::string_view s) {
  if (s.empty()) return 0.0;
  std::size_t n = 0;
  for (unsigned char c : s) {
    if (c < 0x20 || c > 0x7E) {
      if (c != '\n' && c != '\t' && c != '\r') ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(s.size());
}

std::size_t longest_char_run_seed(std::string_view s) {
  std::size_t best = 0, cur = 0;
  char prev = '\0';
  for (char c : s) {
    cur = (c == prev) ? cur + 1 : 1;
    best = std::max(best, cur);
    prev = c;
  }
  return best;
}

double char_entropy_seed(std::string_view s) {
  if (s.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (unsigned char c : s) ++counts[c];
  double h = 0.0;
  const auto n = static_cast<double>(s.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] == 0) continue;
    const double p = static_cast<double>(counts[c]) / n;
    h -= p * std::log2(p);
  }
  return h;
}

// --------------------------------------------------------- seed n-grams ----

using NgramCountsSeed = std::unordered_map<std::uint64_t, std::uint32_t>;

std::uint64_t ngram_key_seed(std::span<const std::string> tokens,
                             std::size_t begin, std::size_t n) {
  std::uint64_t h = 0x243F6A8885A308D3ULL ^ n;
  for (std::size_t i = 0; i < n; ++i) {
    h = util::mix64(h, util::hash64(tokens[begin + i]));
  }
  return h;
}

/// Seed n-gram counting: re-hashes every token at every position for every
/// order.
NgramCountsSeed count_ngrams_seed(std::span<const std::string> tokens,
                                  std::size_t n) {
  NgramCountsSeed counts;
  if (n == 0 || tokens.size() < n) return counts;
  counts.reserve(tokens.size());
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    ++counts[ngram_key_seed(tokens, i, n)];
  }
  return counts;
}

std::uint64_t overlap_seed(const NgramCountsSeed& a, const NgramCountsSeed& b) {
  const NgramCountsSeed& small = a.size() <= b.size() ? a : b;
  const NgramCountsSeed& large = a.size() <= b.size() ? b : a;
  std::uint64_t matches = 0;
  for (const auto& [key, count] : small) {
    auto it = large.find(key);
    if (it != large.end()) {
      matches += std::min(count, it->second);
    }
  }
  return matches;
}

std::vector<std::string> block_sample_seed(
    std::span<const std::string> tokens, std::size_t cap) {
  if (tokens.size() <= cap) {
    return {tokens.begin(), tokens.end()};
  }
  const std::size_t block = 64;
  const std::size_t num_blocks = std::max<std::size_t>(1, cap / block);
  const double stride =
      static_cast<double>(tokens.size()) / static_cast<double>(num_blocks);
  std::vector<std::string> out;
  out.reserve(num_blocks * block);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto start = static_cast<std::size_t>(static_cast<double>(b) * stride);
    const std::size_t end = std::min(tokens.size(), start + block);
    for (std::size_t i = start; i < end; ++i) out.push_back(tokens[i]);
  }
  return out;
}

std::size_t lcs_length_seed(std::span<const std::string> a,
                            std::span<const std::string> b) {
  if (a.size() < b.size()) return lcs_length_seed(b, a);
  if (b.empty()) return 0;
  std::vector<std::uint32_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::uint32_t bucket(std::uint64_t h, std::uint32_t dim) {
  return static_cast<std::uint32_t>((h ^ (h >> 32)) & (dim - 1));
}

}  // namespace

text::TextFeatures compute_features_seed(std::string_view s) {
  text::TextFeatures f;
  f.char_count = static_cast<double>(s.size());
  const auto tokens = split_whitespace_seed(s);
  f.token_count = static_cast<double>(tokens.size());
  if (!tokens.empty()) {
    std::size_t total_len = 0;
    for (const auto& t : tokens) total_len += t.size();
    f.avg_token_len =
        static_cast<double>(total_len) / static_cast<double>(tokens.size());
  }
  f.alpha_ratio = alpha_ratio_seed(s);
  f.digit_ratio = digit_ratio_seed(s);
  f.whitespace_ratio = whitespace_ratio_seed(s);
  f.non_ascii_ratio = non_ascii_ratio_seed(s);
  f.scrambled_ratio = scrambled_token_ratio_seed(s);
  const double per_kchar =
      s.empty() ? 0.0 : 1000.0 / static_cast<double>(s.size());
  f.latex_density =
      static_cast<double>(latex_artifact_count_seed(s)) * per_kchar;
  f.smiles_density =
      static_cast<double>(smiles_like_count_seed(s)) * per_kchar;
  f.entropy = char_entropy_seed(s);
  f.longest_run = static_cast<double>(longest_char_run_seed(s));
  return f;
}

ml::SparseVec hash_text_seed(std::string_view text,
                             const ml::HashOptions& options) {
  if (text.size() > options.max_chars) {
    text = text.substr(0, options.max_chars);
  }
  std::unordered_map<std::uint32_t, float> counts;

  // Word n-grams over lowercased tokens.
  const auto lowered = to_lower_seed(text);
  const auto tokens = tokenize_seed(lowered);
  for (int n = 1; n <= options.word_ngrams; ++n) {
    const auto order = static_cast<std::size_t>(n);
    if (tokens.size() < order) break;
    for (std::size_t i = 0; i + order <= tokens.size(); ++i) {
      std::uint64_t h = util::mix64(options.salt, 0x517CC1B7ULL + order);
      for (std::size_t k = 0; k < order; ++k) {
        h = util::mix64(h, util::hash64(tokens[i + k]));
      }
      counts[bucket(h, options.dim)] += 1.0F;
    }
  }

  // Character n-grams over the raw (un-lowercased) text.
  if (options.char_ngrams > 0) {
    for (int n = options.char_ngram_min; n <= options.char_ngrams; ++n) {
      const auto order = static_cast<std::size_t>(n);
      if (text.size() < order) break;
      for (std::size_t i = 0; i + order <= text.size(); ++i) {
        const std::uint64_t h =
            util::mix64(options.salt ^ 0xC4A3ULL,
                        util::mix64(order, util::hash64(text.substr(i, order))));
        counts[bucket(h, options.dim)] += 0.5F;
      }
    }
  }

  ml::SparseVec v;
  v.reserve(counts.size());
  for (const auto& [index, count] : counts) {
    v.push_back({index, static_cast<float>(std::log1p(count))});
  }
  ml::compact(v);
  ml::l2_normalize(v);
  return v;
}

double bleu_seed(std::string_view candidate, std::string_view reference) {
  const auto cand = tokenize_seed(candidate);
  const auto ref = tokenize_seed(reference);
  const metrics::BleuOptions options;

  if (cand.empty() || ref.empty()) return 0.0;

  double log_sum = 0.0;
  bool any_order_scored = false;
  for (std::size_t n = 1; n <= options.max_order; ++n) {
    if (cand.size() < n) {
      const double p = options.smoothing_k > 0.0
                           ? options.smoothing_k / (options.smoothing_k + 1.0)
                           : 0.0;
      if (p <= 0.0) return 0.0;
      log_sum += std::log(p);
      any_order_scored = true;
      continue;
    }
    const auto cand_counts = count_ngrams_seed(cand, n);
    const auto ref_counts = count_ngrams_seed(ref, n);
    const auto matches = overlap_seed(cand_counts, ref_counts);
    const auto possible = cand.size() - n + 1;
    double p;
    if (matches > 0) {
      p = static_cast<double>(matches) / static_cast<double>(possible);
    } else if (options.smoothing_k > 0.0) {
      p = options.smoothing_k /
          (static_cast<double>(possible) + options.smoothing_k);
    } else {
      return 0.0;
    }
    log_sum += std::log(p);
    any_order_scored = true;
  }
  if (!any_order_scored) return 0.0;

  const auto c = static_cast<double>(cand.size());
  const auto r = static_cast<double>(ref.size());
  const double brevity_penalty = c >= r ? 1.0 : std::exp(1.0 - r / c);
  const double score =
      brevity_penalty * std::exp(log_sum / static_cast<double>(options.max_order));
  return std::clamp(score, 0.0, 1.0);
}

double rouge_seed(std::string_view candidate, std::string_view reference) {
  const auto cand_tokens = tokenize_seed(candidate);
  const auto ref_tokens = tokenize_seed(reference);
  if (cand_tokens.empty() || ref_tokens.empty()) return 0.0;
  const std::size_t max_tokens = 4000;
  const auto cand = block_sample_seed(cand_tokens, max_tokens);
  const auto ref = block_sample_seed(ref_tokens, max_tokens);
  const std::size_t lcs = lcs_length_seed(cand, ref);
  const double precision =
      cand.empty() ? 0.0
                   : static_cast<double>(lcs) / static_cast<double>(cand.size());
  const double recall =
      ref.empty() ? 0.0
                  : static_cast<double>(lcs) / static_cast<double>(ref.size());
  return (precision + recall) > 0.0
             ? 2.0 * precision * recall / (precision + recall)
             : 0.0;
}

metrics::DocumentScores score_document_seed(
    std::span<const std::string> candidate_pages,
    std::span<const std::string> reference_pages) {
  metrics::DocumentScores scores;
  if (reference_pages.empty()) {
    scores.coverage = candidate_pages.empty() ? 1.0 : 0.0;
    return scores;
  }

  std::size_t retrieved = 0;
  std::string candidate, reference;
  for (std::size_t p = 0; p < reference_pages.size(); ++p) {
    if (p < candidate_pages.size() && !candidate_pages[p].empty()) {
      ++retrieved;
      if (!candidate.empty()) candidate += '\n';
      candidate += candidate_pages[p];
    }
    if (!reference.empty()) reference += '\n';
    reference += reference_pages[p];
  }
  scores.coverage = static_cast<double>(retrieved) /
                    static_cast<double>(reference_pages.size());
  scores.bleu = bleu_seed(candidate, reference);
  scores.rouge = rouge_seed(candidate, reference);
  scores.car = metrics::character_accuracy(candidate, reference);
  scores.tokens = split_whitespace_seed(candidate).size();
  return scores;
}

}  // namespace adaparse::reference
