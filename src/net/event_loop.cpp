#include "net/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace adaparse::net {

EventLoop::EventLoop() {
  epoll_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  add(wake_read_.get(), kReadable, [this](std::uint32_t) {
    drain_wake_pipe();
  });
}

EventLoop::~EventLoop() = default;

std::uint32_t EventLoop::to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & kReadable) events |= EPOLLIN;
  if (interest & kWritable) events |= EPOLLOUT;
  return events;
}

void EventLoop::add(int fd, std::uint32_t interest, Callback callback) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw std::runtime_error(std::string("epoll_ctl(ADD): ") +
                             std::strerror(errno));
  }
  entries_[fd] = Entry{std::move(callback), next_generation_++};
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw std::runtime_error(std::string("epoll_ctl(MOD): ") +
                             std::strerror(errno));
  }
}

void EventLoop::remove(int fd) {
  // The fd may already be closed by the caller; EBADF/ENOENT are fine.
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  entries_.erase(fd);
}

void EventLoop::drain_wake_pipe() {
  std::array<char, 64> sink;
  while (true) {
    const ssize_t n = ::read(wake_read_.get(), sink.data(), sink.size());
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || static_cast<std::size_t>(n) < sink.size()) break;
  }
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::poll(std::chrono::milliseconds timeout) {
  std::array<epoll_event, 64> events;
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events.data(),
                     static_cast<int>(events.size()),
                     static_cast<int>(timeout.count()));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    throw std::runtime_error(std::string("epoll_wait: ") +
                             std::strerror(errno));
  }
  // Capture generations first: a callback may remove (or close + re-add)
  // any fd in this batch, and the stale event must then be dropped.
  struct Pending {
    int fd;
    std::uint32_t ready;
    std::uint64_t generation;
  };
  std::array<Pending, 64> pending;
  int live = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = entries_.find(fd);
    if (it == entries_.end()) continue;
    const std::uint32_t raw = events[static_cast<std::size_t>(i)].events;
    std::uint32_t ready = 0;
    if (raw & EPOLLIN) ready |= kReadable;
    if (raw & EPOLLOUT) ready |= kWritable;
    if (raw & (EPOLLERR | EPOLLHUP)) ready |= kError;
    pending[static_cast<std::size_t>(live++)] =
        Pending{fd, ready, it->second.generation};
  }
  for (int i = 0; i < live; ++i) {
    const Pending& p = pending[static_cast<std::size_t>(i)];
    const auto it = entries_.find(p.fd);
    if (it == entries_.end() || it->second.generation != p.generation) {
      continue;  // removed (or replaced) by an earlier callback
    }
    it->second.callback(p.ready);
  }
  run_posted();
}

void EventLoop::run(std::chrono::milliseconds max_wait,
                    const std::function<void()>& tick) {
  stop_ = false;
  while (!stop_) {
    poll(max_wait);
    if (tick) tick();
  }
}

void EventLoop::stop() {
  post([this] { stop_ = true; });
}

void EventLoop::wake() {
  const char token = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_.get(), &token, 1);
    if (n >= 0 || errno != EINTR) break;  // EAGAIN = already pending; fine
  }
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

}  // namespace adaparse::net
