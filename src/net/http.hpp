// Incremental HTTP/1.1 request parsing + response serialization.
//
// The parser is a push-style state machine built for a non-blocking event
// loop: feed it whatever bytes arrived, it consumes as much as it can and
// reports kNeedMore / kComplete / kError. It handles requests torn at any
// byte boundary, pipelined requests (consume() stops at the end of one
// message; the caller resets and feeds the remainder), Content-Length and
// chunked bodies, and enforces the header/body limits production servers
// need (431 Request Header Fields Too Large, 413 Content Too Large).
//
// Deliberately out of scope (this is an API front end, not a general web
// server): multipart bodies, compression, HTTP/2, trailer *use* (trailers
// are parsed and discarded), and request targets in absolute-URI form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adaparse::net::http {

/// Parser limits; exceeding one fails the request with the right status.
struct Limits {
  std::size_t max_request_line = 8192;
  /// Total bytes of the header block (all field lines).
  std::size_t max_header_bytes = 16384;
  std::size_t max_headers = 100;
  std::size_t max_body_bytes = 4u << 20;
};

/// One parsed request. Header names are lowercased at parse time (HTTP
/// field names are case-insensitive); values keep their bytes.
struct Request {
  std::string method;
  std::string target;   ///< origin-form, e.g. "/v1/jobs/7?verbose=1"
  int version_minor = 1;  ///< 1 for HTTP/1.1, 0 for HTTP/1.0
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Resolved keep-alive semantics (version default + Connection header).
  bool keep_alive = true;

  /// First header value for `name` (lowercase), or nullptr.
  const std::string* header(std::string_view name) const;
  /// Target path without the query string.
  std::string_view path() const;
};

enum class ParseStatus : std::uint8_t {
  kNeedMore,  ///< consumed everything given; request incomplete
  kComplete,  ///< one full request parsed; unconsumed bytes are pipelined
  kError,     ///< malformed or over-limit; see error()
};

/// Parse failure, pre-mapped to the HTTP status the server should answer
/// with (400 bad syntax, 413 body too large, 431 headers too large,
/// 501 unsupported transfer-encoding, 505 bad version).
struct ParseError {
  int status = 400;
  std::string message;
};

class RequestParser {
 public:
  explicit RequestParser(Limits limits = {});

  /// Consumes bytes from `data`. Returns the parse status; `*consumed`
  /// (always set) is how many bytes were used — on kComplete the caller
  /// re-feeds the remainder after reset() (pipelining).
  ParseStatus consume(std::string_view data, std::size_t* consumed);

  /// The parsed request (valid after kComplete; moved-from after reset).
  Request& request() { return request_; }
  const ParseError& error() const { return error_; }

  /// Re-arms for the next request on the same connection.
  void reset();

 private:
  enum class State : std::uint8_t {
    kRequestLine,
    kHeaders,
    kBody,        // Content-Length
    kChunkSize,   // chunked: size line
    kChunkData,
    kChunkDataCrlf,
    kTrailers,    // chunked: trailer section (parsed, discarded)
    kComplete,
    kError,
  };

  ParseStatus fail(int status, std::string message);
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  /// Resolves framing (Content-Length vs chunked) once headers end.
  bool finish_headers();

  Limits limits_;
  State state_ = State::kRequestLine;
  std::string buffer_;  ///< partial line / header block accumulator
  Request request_;
  ParseError error_;
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;   ///< Content-Length remaining
  std::size_t chunk_remaining_ = 0;
  bool has_content_length_ = false;
  bool chunked_ = false;
};

/// Serializes a response head: status line + headers + blank line.
/// `headers` are emitted in order, verbatim.
std::string response_head(
    int status,
    const std::vector<std::pair<std::string, std::string>>& headers);

/// The reason phrase for the status codes this server emits.
const char* status_reason(int status);

/// One chunked-transfer-encoding frame for `payload` (empty payload is
/// skipped by callers — a zero-size chunk would terminate the body).
std::string chunk(std::string_view payload);

/// The terminal chunk ("0\r\n\r\n").
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

}  // namespace adaparse::net::http
