// TCP sockets for the network front end — the thin, RAII layer over the
// BSD socket API that net::EventLoop and the HTTP server build on.
//
// Everything here is zero-dependency POSIX: an owning fd handle, a
// listener that binds/accepts non-blocking connections, and EINTR-safe
// read/write helpers that report "would block" distinctly from EOF and
// hard errors, because a non-blocking event loop must treat those three
// outcomes completely differently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace adaparse::net {

/// Owning file-descriptor handle (close-on-destroy, move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();  ///< closes if valid (EINTR-safe)

 private:
  int fd_ = -1;
};

/// Outcome of a non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  kOk,          ///< >= 1 byte transferred
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK — retry when the loop says ready
  kEof,         ///< read: orderly peer shutdown (write never returns this)
  kError,       ///< hard error (ECONNRESET, EPIPE, ...); errno preserved
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
  int error = 0;  ///< errno for kError
};

/// Reads once into `buf` (EINTR retried). Non-blocking fds report
/// kWouldBlock instead of blocking.
IoResult read_some(int fd, char* buf, std::size_t len);
/// Writes once from `data` (EINTR retried; SIGPIPE suppressed via
/// MSG_NOSIGNAL so a reset peer surfaces as kError/EPIPE, not a signal).
IoResult write_some(int fd, std::string_view data);

/// Sets O_NONBLOCK; throws std::runtime_error on failure.
void set_nonblocking(int fd);
/// Disables Nagle (TCP_NODELAY) — streamed JSONL lines should not wait
/// out a 40 ms delayed-ACK interaction. Best-effort.
void set_tcp_nodelay(int fd);

/// A bound, listening TCP socket (IPv4). Accepted connections come back
/// non-blocking with TCP_NODELAY set.
class TcpListener {
 public:
  /// Binds `address:port` (port 0 = kernel-assigned; see port()) with
  /// SO_REUSEADDR and listens. Throws std::runtime_error on failure.
  TcpListener(const std::string& address, std::uint16_t port,
              int backlog = 128);

  int fd() const { return fd_.get(); }
  std::uint16_t port() const { return port_; }
  const std::string& address() const { return address_; }

  /// Accepts one pending connection; invalid Fd when none pending
  /// (EAGAIN) or on a transient accept error.
  Fd accept_nonblocking();

 private:
  Fd fd_;
  std::string address_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to `address:port` (test/bench clients). Throws
/// std::runtime_error on failure. The returned fd is blocking.
Fd connect_blocking(const std::string& address, std::uint16_t port);

}  // namespace adaparse::net
