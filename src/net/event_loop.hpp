// net::EventLoop — a single-threaded epoll readiness loop.
//
// The HTTP front end multiplexes every connection over one loop thread:
// sockets are registered with an interest mask (readable/writable) and a
// callback; the loop parks in epoll_wait and dispatches callbacks as the
// kernel reports readiness (level-triggered — a callback that does not
// drain is simply called again, so there is no edge-notification
// bookkeeping to get wrong). Cross-thread interaction goes through two
// thread-safe entry points only: wake(), which interrupts the current
// epoll_wait (the job-progress notification path), and post(), which
// queues a closure to run on the loop thread (how the server thread asks
// the loop to shut down). Everything else — add/modify/remove, the
// callbacks themselves — must happen on the loop thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"

namespace adaparse::net {

class EventLoop {
 public:
  /// Interest/readiness bits (a callback's `events` argument is the
  /// readiness subset, plus kError on EPOLLERR/EPOLLHUP).
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;

  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();   ///< throws std::runtime_error if epoll/pipe setup fails
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask. The fd stays owned by the
  /// caller. Loop thread only (or before run()).
  void add(int fd, std::uint32_t interest, Callback callback);
  /// Updates the interest mask of a registered fd. Loop thread only.
  void set_interest(int fd, std::uint32_t interest);
  /// Deregisters `fd`; safe to call from inside its own callback (the
  /// dispatch pass checks liveness before every delivery).
  void remove(int fd);

  /// Runs until stop(). `max_wait` bounds one epoll_wait so periodic
  /// work (the caller's tick callback) runs even when no fd fires.
  void run(std::chrono::milliseconds max_wait,
           const std::function<void()>& tick = {});
  /// One dispatch iteration (tests drive the loop step by step).
  void poll(std::chrono::milliseconds timeout);

  /// Asks run() to return after the current iteration. Thread-safe.
  void stop();
  /// Interrupts the current epoll_wait. Thread-safe, coalescing.
  void wake();
  /// Queues `fn` to run on the loop thread next iteration. Thread-safe.
  void post(std::function<void()> fn);

  std::size_t watched_fds() const { return entries_.size(); }

 private:
  void drain_wake_pipe();
  void run_posted();
  static std::uint32_t to_epoll(std::uint32_t interest);

  Fd epoll_;
  Fd wake_read_;
  Fd wake_write_;
  /// Registered fds. Generation counters make remove() safe mid-dispatch:
  /// an event captured for a closed (or re-added) fd is dropped.
  struct Entry {
    Callback callback;
    std::uint64_t generation = 0;
  };
  std::unordered_map<int, Entry> entries_;
  std::uint64_t next_generation_ = 1;
  bool stop_ = false;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace adaparse::net
