#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace adaparse::net::http {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// RFC 9110 token characters (method and header-name alphabet).
bool is_token_char(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!is_token_char(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

const std::string* Request::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string_view Request::path() const {
  const std::string_view t(target);
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

RequestParser::RequestParser(Limits limits) : limits_(limits) {}

void RequestParser::reset() {
  state_ = State::kRequestLine;
  buffer_.clear();
  request_ = Request{};
  error_ = ParseError{};
  header_bytes_ = 0;
  body_expected_ = 0;
  chunk_remaining_ = 0;
  has_content_length_ = false;
  chunked_ = false;
}

ParseStatus RequestParser::fail(int status, std::string message) {
  state_ = State::kError;
  error_ = ParseError{status, std::move(message)};
  return ParseStatus::kError;
}

bool RequestParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method) || method.size() > 24) {
    fail(400, "malformed method");
    return false;
  }
  if (target.empty() || target.front() != '/') {
    fail(400, "request target must be origin-form");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    fail(505, "unsupported HTTP version");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header field");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!is_token(name)) {
    // Covers the smuggling-prone obs-fold / space-before-colon cases too.
    fail(400, "malformed header name");
    return false;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    fail(431, "too many header fields");
    return false;
  }
  request_.headers.emplace_back(to_lower(name),
                                std::string(trim(line.substr(colon + 1))));
  return true;
}

bool RequestParser::finish_headers() {
  const std::string* te = request_.header("transfer-encoding");
  const std::string* cl = request_.header("content-length");
  if (te && cl) {
    // Ambiguous framing is the classic request-smuggling vector; reject.
    fail(400, "both Transfer-Encoding and Content-Length");
    return false;
  }
  // Duplicate framing headers are the other smuggling vector: a proxy
  // that honors the field we ignore desynchronizes from us (RFC 9112
  // requires rejecting conflicting Content-Length; we reject repeats
  // outright, conflicting or not).
  std::size_t te_fields = 0;
  std::size_t cl_fields = 0;
  for (const auto& [key, value] : request_.headers) {
    (void)value;
    if (key == "transfer-encoding") ++te_fields;
    if (key == "content-length") ++cl_fields;
  }
  if (te_fields > 1 || cl_fields > 1) {
    fail(400, te_fields > 1 ? "duplicate Transfer-Encoding"
                            : "duplicate Content-Length");
    return false;
  }
  if (te) {
    if (!iequals(trim(*te), "chunked")) {
      fail(501, "unsupported Transfer-Encoding: " + *te);
      return false;
    }
    chunked_ = true;
  } else if (cl) {
    const std::string_view v = *cl;
    if (v.empty() ||
        !std::all_of(v.begin(), v.end(), [](unsigned char c) {
          return std::isdigit(c);
        }) ||
        v.size() > 15) {
      fail(400, "malformed Content-Length");
      return false;
    }
    std::size_t n = 0;
    for (const char c : v) n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > limits_.max_body_bytes) {
      fail(413, "request body exceeds limit");
      return false;
    }
    has_content_length_ = true;
    body_expected_ = n;
  }

  // Keep-alive: HTTP/1.1 defaults on, HTTP/1.0 defaults off; an explicit
  // Connection header overrides either way.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* conn = request_.header("connection")) {
    if (iequals(trim(*conn), "close")) {
      request_.keep_alive = false;
    } else if (iequals(trim(*conn), "keep-alive")) {
      request_.keep_alive = true;
    }
  }

  if (chunked_) {
    state_ = State::kChunkSize;
  } else if (body_expected_ > 0) {
    state_ = State::kBody;
  } else {
    state_ = State::kComplete;
  }
  return true;
}

ParseStatus RequestParser::consume(std::string_view data,
                                   std::size_t* consumed) {
  *consumed = 0;
  if (state_ == State::kError) return ParseStatus::kError;
  if (state_ == State::kComplete) return ParseStatus::kComplete;

  while (true) {
    const std::string_view rest = data.substr(*consumed);
    switch (state_) {
      case State::kRequestLine:
      case State::kHeaders:
      case State::kChunkSize:
      case State::kChunkDataCrlf:
      case State::kTrailers: {
        // Line-oriented states: accumulate until '\n', enforcing the
        // relevant size limit on the partial line as it grows, so an
        // attacker cannot buffer unbounded bytes by never sending one.
        const std::size_t nl = rest.find('\n');
        const std::size_t take =
            nl == std::string_view::npos ? rest.size() : nl + 1;
        buffer_.append(rest.substr(0, take));
        *consumed += take;
        const bool line_done = nl != std::string_view::npos;

        if (state_ == State::kRequestLine) {
          if (buffer_.size() > limits_.max_request_line) {
            return fail(431, "request line too long");
          }
        } else if (state_ == State::kHeaders ||
                   state_ == State::kTrailers) {
          if (header_bytes_ + buffer_.size() > limits_.max_header_bytes) {
            return fail(431, "header block exceeds limit");
          }
        } else if (buffer_.size() > 256) {  // chunk-size / CRLF lines
          return fail(400, "malformed chunk framing");
        }
        if (!line_done) return ParseStatus::kNeedMore;

        std::string_view line(buffer_);
        line.remove_suffix(1);  // '\n'
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

        switch (state_) {
          case State::kRequestLine:
            if (line.empty()) break;  // tolerate leading blank lines
            if (!parse_request_line(line)) return ParseStatus::kError;
            state_ = State::kHeaders;
            break;
          case State::kHeaders:
            header_bytes_ += buffer_.size();
            if (line.empty()) {
              if (!finish_headers()) return ParseStatus::kError;
            } else if (!parse_header_line(line)) {
              return ParseStatus::kError;
            }
            break;
          case State::kChunkSize: {
            std::size_t size = 0;
            std::size_t i = 0;
            for (; i < line.size(); ++i) {
              const unsigned char c =
                  static_cast<unsigned char>(line[i]);
              int digit;
              if (std::isdigit(c)) {
                digit = c - '0';
              } else if (c >= 'a' && c <= 'f') {
                digit = c - 'a' + 10;
              } else if (c >= 'A' && c <= 'F') {
                digit = c - 'A' + 10;
              } else {
                break;
              }
              if (size > (limits_.max_body_bytes >> 4)) {
                return fail(413, "request body exceeds limit");
              }
              size = size * 16 + static_cast<std::size_t>(digit);
            }
            if (i == 0 || (i < line.size() && line[i] != ';')) {
              return fail(400, "malformed chunk size");
            }
            if (request_.body.size() + size > limits_.max_body_bytes) {
              return fail(413, "request body exceeds limit");
            }
            chunk_remaining_ = size;
            state_ = size == 0 ? State::kTrailers : State::kChunkData;
            break;
          }
          case State::kChunkDataCrlf:
            if (!line.empty()) {
              return fail(400, "malformed chunk terminator");
            }
            state_ = State::kChunkSize;
            break;
          case State::kTrailers:
            header_bytes_ += buffer_.size();
            if (line.empty()) state_ = State::kComplete;
            break;
          default:
            break;
        }
        buffer_.clear();
        break;
      }

      case State::kBody: {
        const std::size_t want = body_expected_ - request_.body.size();
        const std::size_t take = std::min(want, rest.size());
        request_.body.append(rest.substr(0, take));
        *consumed += take;
        if (request_.body.size() < body_expected_) {
          return ParseStatus::kNeedMore;
        }
        state_ = State::kComplete;
        break;
      }

      case State::kChunkData: {
        const std::size_t take = std::min(chunk_remaining_, rest.size());
        request_.body.append(rest.substr(0, take));
        chunk_remaining_ -= take;
        *consumed += take;
        if (chunk_remaining_ > 0) return ParseStatus::kNeedMore;
        state_ = State::kChunkDataCrlf;
        break;
      }

      case State::kComplete:
        return ParseStatus::kComplete;
      case State::kError:
        return ParseStatus::kError;
    }
    if (state_ == State::kComplete) return ParseStatus::kComplete;
    if (*consumed >= data.size()) return ParseStatus::kNeedMore;
  }
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string response_head(
    int status,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out;
  out.reserve(128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string chunk(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  char size_buf[17];
  std::size_t n = payload.size();
  int i = 16;
  size_buf[16] = '\0';
  do {
    size_buf[--i] = "0123456789abcdef"[n & 0xF];
    n >>= 4;
  } while (n != 0);
  out.append(&size_buf[i]);
  out += "\r\n";
  out += payload;
  out += "\r\n";
  return out;
}

}  // namespace adaparse::net::http
