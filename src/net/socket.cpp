#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace adaparse::net {

void Fd::reset() {
  if (fd_ < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // always releases it, so retrying would race a concurrent open. Close
  // once and move on.
  ::close(fd_);
  fd_ = -1;
}

IoResult read_some(int fd, char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoStatus::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

IoResult write_some(int fd, std::string_view data) {
  for (;;) {
    const ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") +
                             std::strerror(errno));
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

TcpListener::TcpListener(const std::string& address, std::uint16_t port,
                         int backlog)
    : address_(address) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(address, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw std::runtime_error("bind " + address + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) < 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    throw std::runtime_error(std::string("getsockname: ") +
                             std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  set_nonblocking(fd.get());
  fd_ = std::move(fd);
}

Fd TcpListener::accept_nonblocking() {
  for (;;) {
    const int fd =
        ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      set_tcp_nodelay(fd);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    // EAGAIN: drained. Anything else (ECONNABORTED, EMFILE, ...) is a
    // per-connection transient; the listener itself stays healthy.
    return Fd();
  }
}

Fd connect_blocking(const std::string& address, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr = make_addr(address, port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_tcp_nodelay(fd.get());
      return fd;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error("connect " + address + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
}

}  // namespace adaparse::net
