// Jobs — the unit of work a serve::ParseService multiplexes.
//
// A job is one tenant's parse request: a DocumentSource plus the
// EngineConfig to run it under, with a priority (within the tenant) and an
// optional deadline (across tenants: deadline-near jobs are boosted by the
// scheduler). The service executes a job as a sequence of document slices
// through the shared streaming pipeline, so many jobs interleave on one
// worker pool; the handle exposes the full lifecycle
//
//   queued -> running -> completed | cancelled | failed
//                \-> rejected (admission controller, never queued)
//
// plus incremental result retrieval: records stream into the handle in
// strict input order as their slice completes, and take_results() drains
// whatever has accumulated since the last call.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/doc_source.hpp"
#include "core/engine.hpp"
#include "io/jsonl.hpp"
#include "serve/job_spec.hpp"

namespace adaparse::serve {

class ParseService;

enum class JobState : std::uint8_t {
  kQueued,     ///< admitted, waiting for its next slice to be scheduled
  kRunning,    ///< at least one slice executed, more remain
  kCompleted,  ///< source exhausted, every record emitted
  kCancelled,  ///< cooperatively stopped; partial results retained
  kRejected,   ///< refused by the admission controller, never queued
  kFailed,     ///< a slice threw; error() carries the message
};

/// The state's wire name ("queued", "running", ...) — part of the /v1
/// API vocabulary; these strings are frozen (see tests/http_test.cpp).
const char* job_state_name(JobState state);
/// Inverse of job_state_name; nullopt for any unknown spelling.
std::optional<JobState> job_state_parse(std::string_view name);
bool job_state_terminal(JobState state);

/// One parse request as submitted by a tenant: the serializable spec plus
/// an optional in-process document source. When `source` is null the
/// service materializes one from spec.make_source() (the wire path always
/// does this); a non-null source overrides the spec's documents section.
struct JobRequest {
  JobSpec spec;
  std::unique_ptr<core::DocumentSource> source;
};

/// One finished document, exactly as the engine would have produced it in
/// a standalone run of the same corpus/config. `index` is the document's
/// position in the job's source.
struct JobRecord {
  std::size_t index = 0;
  io::ParseRecord record;
  core::RouteDecision decision;
};

/// Point-in-time view of a job's lifecycle.
struct JobProgress {
  JobState state = JobState::kQueued;
  std::size_t docs_completed = 0;
  /// The source's size hint at submission (0 = unknown/unbounded).
  std::size_t docs_total_hint = 0;
  /// Seconds from submission to the first scheduled slice (0 until then).
  double queue_wait_seconds = 0.0;
  /// Seconds from submission to the terminal state (0 while active).
  double latency_seconds = 0.0;
};

/// Shared handle to a submitted job. Thread-safe; the service writes
/// results and state transitions, any number of client threads may poll,
/// wait, drain results, or cancel.
class ParseJob {
 public:
  using Clock = std::chrono::steady_clock;

  std::uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  const core::EngineConfig& engine_config() const { return engine_config_; }
  int priority() const { return priority_; }
  std::optional<Clock::time_point> deadline() const { return deadline_; }

  JobState state() const;
  JobProgress progress() const;
  /// Rejection reason (kRejected) or slice error message (kFailed).
  std::string error() const;

  /// Requests cooperative cancellation: the current slice stops admitting
  /// documents (in-flight ones drain into the results), and the job is
  /// terminal at its next scheduling point. Already-retrieved and pending
  /// results are retained. No-op on terminal jobs.
  void cancel();

  /// Drains every record accumulated since the last call, in input order.
  std::vector<JobRecord> take_results();

  /// Blocks until the job reaches a terminal state.
  void wait() const;
  /// Waits up to `timeout`; true iff the job is terminal on return.
  bool wait_for(std::chrono::steady_clock::duration timeout) const;

  /// Engine statistics aggregated over every executed slice.
  core::EngineStats stats() const;

  /// Installs a progress hook invoked (outside the job lock) whenever new
  /// records land in the handle or the job reaches a terminal state. Used
  /// by the HTTP layer to wake its event loop instead of polling; pass
  /// nullptr to clear. The hook must be cheap and must not call back into
  /// the job or service.
  void set_notify(std::function<void()> fn);

 private:
  friend class ParseService;

  ParseJob(std::uint64_t id, JobRequest request, Clock::time_point now);

  // ---- immutable after construction ----
  std::uint64_t id_;
  std::string tenant_;
  core::EngineConfig engine_config_;
  int priority_;
  std::optional<Clock::time_point> deadline_;
  Clock::time_point submitted_;
  std::size_t total_hint_ = 0;

  // ---- service-side execution state (dispatcher-only, unsynchronized) ----
  std::unique_ptr<core::DocumentSource> source_;
  std::unique_ptr<core::AdaParseEngine> engine_;
  std::size_t docs_pulled_ = 0;  ///< documents drawn from the source so far
  /// Documents this job charges against the resident-work watermark
  /// (max(1, size hint)); released when the job reaches a terminal state.
  std::size_t resident_estimate_ = 0;

  // ---- shared state ----
  std::atomic<bool> cancel_{false};
  /// Set by ParseService::set_job_paused (connection backpressure): a
  /// paused job's slices stop being scheduled; already-running slices
  /// finish normally.
  std::atomic<bool> paused_{false};
  /// Progress hook (see set_notify); shared_ptr so a concurrent
  /// set_notify(nullptr) cannot free it mid-call.
  std::shared_ptr<const std::function<void()>> notify_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobState state_ = JobState::kQueued;
  std::string error_;
  std::deque<JobRecord> pending_;  ///< emitted but not yet taken
  std::size_t docs_completed_ = 0;
  core::EngineStats stats_;  ///< summed over slices
  Clock::time_point started_;
  Clock::time_point finished_;
  bool started_set_ = false;
  bool finished_set_ = false;
};

using JobHandle = std::shared_ptr<ParseJob>;

}  // namespace adaparse::serve
