#include "serve/control/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adaparse::serve::control {

const char* level_name(Level level) {
  switch (level) {
    case Level::kNormal:
      return "normal";
    case Level::kBudgetShrink:
      return "budget-shrink";
    case Level::kHedgeOff:
      return "hedge-off";
    case Level::kAdmissionTight:
      return "admission-tight";
  }
  return "unknown";
}

const char* action_name(Action action) {
  switch (action) {
    case Action::kHold:
      return "hold";
    case Action::kEscalate:
      return "escalate";
    case Action::kRestore:
      return "restore";
  }
  return "unknown";
}

SloController::SloController(ControlConfig config) : config_(config) {
  config_.recover_fraction = std::clamp(config_.recover_fraction, 0.0, 1.0);
  config_.breach_ticks_to_escalate =
      std::max<std::size_t>(1, config_.breach_ticks_to_escalate);
  config_.clear_ticks_to_restore =
      std::max<std::size_t>(1, config_.clear_ticks_to_restore);
  config_.queue_low = std::min(config_.queue_low, config_.queue_high);
  // Fixed at construction so the breach/clear comparison is pure integer
  // arithmetic — replay cannot drift on floating-point rounding.
  clear_p95_micros_ = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(config_.slo_p95_micros) *
                 config_.recover_fraction));
}

double SloController::alpha_scale_for(const ControlConfig& config,
                                      Level level) {
  switch (level) {
    case Level::kNormal:
      return 1.0;
    case Level::kBudgetShrink:
      return std::clamp(config.alpha_scale_l1, 0.0, 1.0);
    case Level::kHedgeOff:
      return std::clamp(config.alpha_scale_l2, 0.0, 1.0);
    case Level::kAdmissionTight:
      return std::clamp(config.alpha_scale_l3, 0.0, 1.0);
  }
  return 1.0;
}

double SloController::admission_scale_for(const ControlConfig& config,
                                          Level level) {
  return level >= Level::kAdmissionTight
             ? std::clamp(config.admission_scale, 0.0, 1.0)
             : 1.0;
}

double SloController::alpha_scale() const {
  return alpha_scale_for(config_, level_);
}

double SloController::admission_scale() const {
  return admission_scale_for(config_, level_);
}

bool SloController::breached(const SensorReading& reading) const {
  if (reading.window_count > 0 && reading.p95_micros > config_.slo_p95_micros) {
    return true;
  }
  return reading.queued_jobs > config_.queue_high;
}

bool SloController::cleared(const SensorReading& reading) const {
  // An empty window is "no evidence of breach", not "healthy" — it clears
  // only together with a drained queue, so a stalled service (nothing
  // completing, queue pinned) cannot restore itself.
  const bool latency_clear =
      reading.window_count == 0 || reading.p95_micros < clear_p95_micros_;
  return latency_clear && reading.queued_jobs <= config_.queue_low;
}

Decision SloController::step(const SensorReading& reading) {
  ++ticks_seen_;
  if (ticks_since_transition_ !=
      std::numeric_limits<std::uint64_t>::max()) {
    ++ticks_since_transition_;
  }

  Decision decision;
  const bool is_breach = breached(reading);
  const bool is_clear = !is_breach && cleared(reading);

  if (is_breach) {
    ++breach_streak_;
    clear_streak_ = 0;
  } else if (is_clear) {
    ++clear_streak_;
    breach_streak_ = 0;
  } else {
    // Dead band: inside the hysteresis gap on either signal. Resetting
    // both streaks here is what makes the band an oscillation damper —
    // noise straddling a threshold never accumulates into a transition.
    breach_streak_ = 0;
    clear_streak_ = 0;
  }

  if (is_breach && level_ < Level::kAdmissionTight &&
      breach_streak_ >= config_.breach_ticks_to_escalate) {
    level_ = static_cast<Level>(static_cast<std::uint8_t>(level_) + 1);
    ++transitions_up_;
    breach_streak_ = 0;
    ticks_since_transition_ = 0;
    has_transitioned_ = true;
    decision.action = Action::kEscalate;
    decision.reason = reading.window_count > 0 &&
                              reading.p95_micros > config_.slo_p95_micros
                          ? "p95-breach"
                          : "queue-breach";
  } else if (is_clear && level_ > Level::kNormal &&
             clear_streak_ >= config_.clear_ticks_to_restore &&
             (!has_transitioned_ ||
              ticks_since_transition_ >= config_.cooldown_ticks)) {
    level_ = static_cast<Level>(static_cast<std::uint8_t>(level_) - 1);
    ++transitions_down_;
    clear_streak_ = 0;
    ticks_since_transition_ = 0;
    decision.action = Action::kRestore;
    decision.reason = "recovered";
  } else {
    decision.action = Action::kHold;
    if (is_breach) {
      decision.reason =
          level_ == Level::kAdmissionTight ? "hold:floor" : "hold:breach";
    } else if (is_clear) {
      if (level_ == Level::kNormal) {
        decision.reason = "hold";
      } else if (has_transitioned_ &&
                 ticks_since_transition_ < config_.cooldown_ticks) {
        decision.reason = "hold:cooldown";
      } else {
        decision.reason = "hold:clear-streak";
      }
    } else {
      decision.reason = "hold:dead-band";
    }
  }

  decision.level = level_;
  return decision;
}

}  // namespace adaparse::serve::control
