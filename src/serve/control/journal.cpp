#include "serve/control/journal.hpp"

#include <stdexcept>

#include "io/fsio.hpp"
#include "util/json.hpp"

namespace adaparse::serve::control {
namespace {

std::uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw std::runtime_error("decision log: empty u64 field");
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("decision log: bad u64 field");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Same sealing discipline as the campaign manifest: CRC = FNV-1a over the
/// object's dump without the crc field (std::map keys keep it canonical).
std::string seal_line(util::JsonObject obj) {
  const std::string body = util::Json(obj).dump();
  obj["crc"] = std::to_string(io::fnv1a(body));
  return util::Json(std::move(obj)).dump();
}

std::optional<util::JsonObject> open_line(const std::string& line) {
  util::Json parsed;
  try {
    parsed = util::Json::parse(line);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (!parsed.is_object()) return std::nullopt;
  util::JsonObject obj = parsed.as_object();
  const auto crc_it = obj.find("crc");
  if (crc_it == obj.end() || !crc_it->second.is_string()) return std::nullopt;
  const std::string stored = crc_it->second.as_string();
  obj.erase(crc_it);
  try {
    if (parse_u64(stored) != io::fnv1a(util::Json(obj).dump())) {
      return std::nullopt;
    }
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  return obj;
}

std::size_t as_size(const util::Json& v) {
  return static_cast<std::size_t>(v.as_number());
}

util::JsonObject to_object(const ControlConfig& config) {
  util::JsonObject obj;
  obj["type"] = "config";
  obj["slo_p95_micros"] = std::to_string(config.slo_p95_micros);
  obj["recover_fraction"] = config.recover_fraction;
  obj["queue_high"] = config.queue_high;
  obj["queue_low"] = config.queue_low;
  obj["breach_ticks"] = config.breach_ticks_to_escalate;
  obj["clear_ticks"] = config.clear_ticks_to_restore;
  obj["cooldown_ticks"] = config.cooldown_ticks;
  obj["alpha_scale_l1"] = config.alpha_scale_l1;
  obj["alpha_scale_l2"] = config.alpha_scale_l2;
  obj["alpha_scale_l3"] = config.alpha_scale_l3;
  obj["admission_scale"] = config.admission_scale;
  obj["protected_priority"] = config.protected_priority;
  return obj;
}

ControlConfig config_from(const util::Json& record) {
  ControlConfig config;
  config.slo_p95_micros = parse_u64(record.at("slo_p95_micros").as_string());
  config.recover_fraction = record.at("recover_fraction").as_number();
  config.queue_high = as_size(record.at("queue_high"));
  config.queue_low = as_size(record.at("queue_low"));
  config.breach_ticks_to_escalate = as_size(record.at("breach_ticks"));
  config.clear_ticks_to_restore = as_size(record.at("clear_ticks"));
  config.cooldown_ticks = as_size(record.at("cooldown_ticks"));
  config.alpha_scale_l1 = record.at("alpha_scale_l1").as_number();
  config.alpha_scale_l2 = record.at("alpha_scale_l2").as_number();
  config.alpha_scale_l3 = record.at("alpha_scale_l3").as_number();
  config.admission_scale = record.at("admission_scale").as_number();
  config.protected_priority =
      static_cast<int>(record.at("protected_priority").as_number());
  return config;
}

util::JsonObject to_object(const TickRecord& record) {
  util::JsonObject obj;
  obj["type"] = "tick";
  obj["tick"] = std::to_string(record.reading.tick);
  // p95 travels as integer microseconds: exact through JSON, and the only
  // latency representation the controller ever compares against.
  obj["p95_micros"] = std::to_string(record.reading.p95_micros);
  obj["window"] = record.reading.window_count;
  obj["queued"] = record.reading.queued_jobs;
  obj["running"] = record.reading.running_jobs;
  obj["resident"] = record.reading.resident_documents;
  obj["action"] = action_name(record.action);
  obj["level"] = static_cast<std::size_t>(record.level);
  obj["reason"] = record.reason;
  return obj;
}

TickRecord tick_from(const util::Json& record) {
  TickRecord tick;
  tick.reading.tick = parse_u64(record.at("tick").as_string());
  tick.reading.p95_micros = parse_u64(record.at("p95_micros").as_string());
  tick.reading.window_count = as_size(record.at("window"));
  tick.reading.queued_jobs = as_size(record.at("queued"));
  tick.reading.running_jobs = as_size(record.at("running"));
  tick.reading.resident_documents = as_size(record.at("resident"));
  const std::string& action = record.at("action").as_string();
  if (action == "hold") {
    tick.action = Action::kHold;
  } else if (action == "escalate") {
    tick.action = Action::kEscalate;
  } else if (action == "restore") {
    tick.action = Action::kRestore;
  } else {
    throw std::runtime_error("decision log: unknown action '" + action + "'");
  }
  const std::size_t level = as_size(record.at("level"));
  if (level >= kLevelCount) {
    throw std::runtime_error("decision log: ladder level out of range");
  }
  tick.level = static_cast<Level>(level);
  tick.reason = record.at("reason").as_string();
  return tick;
}

}  // namespace

DecisionLog load_decision_log(const std::string& path) {
  DecisionLog log;
  const auto bytes = io::read_file(path);
  if (!bytes) return log;

  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < bytes->size()) {
    std::size_t end = bytes->find('\n', begin);
    if (end == std::string::npos) end = bytes->size();
    if (end > begin) lines.push_back(bytes->substr(begin, end - begin));
    begin = end + 1;
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto obj = open_line(lines[i]);
    if (!obj) {
      if (i + 1 == lines.size()) {
        log.dropped_torn_tail = true;  // classic torn append: drop the tail
        break;
      }
      throw std::runtime_error("decision log: corrupt record at line " +
                               std::to_string(i + 1) + " of " + path);
    }
    const util::Json record{*obj};
    const std::string& type = record.at("type").as_string();
    if (type == "config") {
      log.config = config_from(record);
    } else if (type == "tick") {
      log.ticks.push_back(tick_from(record));
    } else {
      throw std::runtime_error("decision log: unknown record type '" + type +
                               "'");
    }
  }
  return log;
}

DecisionJournal::DecisionJournal(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app), path_(path) {
  if (!out_) throw std::runtime_error("decision log: cannot open " + path);
}

void DecisionJournal::append(const ControlConfig& config) {
  append_line(seal_line(to_object(config)));
}

void DecisionJournal::append(const TickRecord& record) {
  append_line(seal_line(to_object(record)));
}

void DecisionJournal::append_line(const std::string& line) {
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
  out_.flush();
  if (!out_) throw std::runtime_error("decision log: append failed " + path_);
}

std::vector<TickRecord> replay(const ControlConfig& config,
                               const std::vector<SensorReading>& readings) {
  SloController controller(config);
  std::vector<TickRecord> ticks;
  ticks.reserve(readings.size());
  for (const SensorReading& reading : readings) {
    const Decision decision = controller.step(reading);
    TickRecord tick;
    tick.reading = reading;
    tick.action = decision.action;
    tick.level = decision.level;
    tick.reason = decision.reason;
    ticks.push_back(std::move(tick));
  }
  return ticks;
}

bool operator==(const SensorReading& a, const SensorReading& b) {
  return a.tick == b.tick && a.p95_micros == b.p95_micros &&
         a.window_count == b.window_count && a.queued_jobs == b.queued_jobs &&
         a.running_jobs == b.running_jobs &&
         a.resident_documents == b.resident_documents;
}

bool operator==(const TickRecord& a, const TickRecord& b) {
  return a.reading == b.reading && a.action == b.action &&
         a.level == b.level && a.reason == b.reason;
}

}  // namespace adaparse::serve::control
