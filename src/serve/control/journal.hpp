// The controller's flight recorder: a CRC-protected append-only decision
// log, framed exactly like the campaign manifest (one JSON object per
// line, each carrying a "crc" field = FNV-1a over the line serialized
// without it; a torn tail is dropped on load, mid-journal damage throws).
//
// A journal holds the controller config (first line) followed by one tick
// record per control tick: the sensor reading the controller saw and the
// decision it made. Because SloController is a pure function of (config,
// reading sequence) and every decision-relevant sensor field is an
// integer, `replay()` over the loaded readings reproduces the journaled
// decisions identically — the audit property the ROADMAP asks of the
// adaptive serve path.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "serve/control/controller.hpp"

namespace adaparse::serve::control {

/// One journaled control tick: what the controller saw and what it did.
struct TickRecord {
  SensorReading reading;
  Action action = Action::kHold;
  Level level = Level::kNormal;  ///< ladder level after the action
  std::string reason;
};

/// Everything replayed from a decision journal.
struct DecisionLog {
  std::optional<ControlConfig> config;
  std::vector<TickRecord> ticks;
  /// True when the journal ended in a torn line (dropped, as with the
  /// campaign manifest: the tick it described simply never happened).
  bool dropped_torn_tail = false;
};

/// Loads a journal. A missing file yields an empty log; a torn final line
/// is dropped; a malformed non-final line throws std::runtime_error.
DecisionLog load_decision_log(const std::string& path);

/// Append-only journal writer. Not thread-safe; the service's control tick
/// is the only writer. Each append flushes.
class DecisionJournal {
 public:
  explicit DecisionJournal(const std::string& path);

  void append(const ControlConfig& config);
  void append(const TickRecord& record);

 private:
  void append_line(const std::string& line);
  std::ofstream out_;
  std::string path_;
};

/// Feeds `readings` through a fresh SloController under `config` and
/// returns the re-derived tick records. A journaled run is replayable iff
/// this equals the journal's own tick records (tests assert exactly that).
std::vector<TickRecord> replay(const ControlConfig& config,
                               const std::vector<SensorReading>& readings);

bool operator==(const SensorReading& a, const SensorReading& b);
bool operator==(const TickRecord& a, const TickRecord& b);

}  // namespace adaparse::serve::control
