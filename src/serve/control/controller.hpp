// The SLO guardian: a closed-loop degradation ladder for the serve path.
//
// The paper's floor(alpha*k) accuracy budget is a static knob; under
// multi-tenant load a fixed budget either wastes quality headroom or lets
// the latency SLO collapse. SloController closes the loop: once per control
// tick it receives one atomically-snapshotted SensorReading (windowed p95
// job latency + queue/resident pressure, all from the same registry read)
// and walks a deterministic ladder of degradation levels:
//
//   L0 normal           full floor(alpha*k) budget, all mechanisms on
//   L1 budget-shrink    effective alpha scaled down (cheap parsers first)
//   L2 hedge-off        + deadline-hedged re-dispatch (EDF boost) suspended
//   L3 admission-tight  + admission watermarks tightened for below-
//                         protected-priority submissions
//
// Anti-oscillation is structural, not tuned: escalation requires a streak
// of consecutive breach ticks, restoration requires a streak of consecutive
// clear ticks AND a cooldown since the last transition, readings inside the
// hysteresis dead band (between the breach and clear thresholds) reset both
// streaks, and transitions move exactly one level at a time. The controller
// is a pure function of (config, reading sequence) — no clocks, no
// randomness — so a journaled run replays bit-identically (journal.hpp).
// Latencies cross the boundary as integer microseconds for the same reason.
//
// Batch/campaign runs never see this type: only serve::ParseService opts in
// via ServiceConfig, keeping the determinism boundary explicit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adaparse::serve::control {

/// Degradation ladder levels, in escalation order.
enum class Level : std::uint8_t {
  kNormal = 0,
  kBudgetShrink = 1,
  kHedgeOff = 2,
  kAdmissionTight = 3,
};

inline constexpr std::size_t kLevelCount = 4;
const char* level_name(Level level);

/// Ladder tuning. Everything the decision logic depends on lives here, so
/// journaling this struct (journal.hpp) makes a run replayable.
struct ControlConfig {
  /// The SLO: windowed p95 job latency must stay at or below this.
  std::uint64_t slo_p95_micros = 250000;
  /// Clear threshold = slo * recover_fraction. The band between the two is
  /// the hysteresis dead band: readings inside it reset both streaks.
  double recover_fraction = 0.7;
  /// Queue-depth pressure watermarks (queued jobs), with their own band.
  /// Queue pressure matters because a fully stalled service completes no
  /// jobs — the latency window goes empty and p95 alone would read healthy.
  std::size_t queue_high = 32;
  std::size_t queue_low = 8;
  /// Consecutive breach ticks before escalating one level.
  std::size_t breach_ticks_to_escalate = 2;
  /// Consecutive clear ticks before restoring one level.
  std::size_t clear_ticks_to_restore = 4;
  /// Minimum ticks since the *last* transition (either direction) before a
  /// restoration step may run. Escalation is deliberately not cooled down:
  /// shedding load late is worse than shedding it twice.
  std::size_t cooldown_ticks = 8;
  /// Effective-alpha multiplier at each degraded level (L0 is always 1).
  double alpha_scale_l1 = 0.5;
  double alpha_scale_l2 = 0.25;
  double alpha_scale_l3 = 0.0;
  /// Admission-watermark multiplier at kAdmissionTight for submissions
  /// below protected_priority; protected submissions keep full watermarks.
  double admission_scale = 0.5;
  int protected_priority = 1;
};

/// One control tick's sensor snapshot. All fields are sampled under a
/// single registry lock (MetricsRegistry::set_gauges_and_sample) so a
/// decision never mixes readings from different ticks.
struct SensorReading {
  std::uint64_t tick = 0;
  /// Exact p95 over job latencies completed since the previous tick;
  /// 0 when the window is empty (see window_count).
  std::uint64_t p95_micros = 0;
  std::size_t window_count = 0;  ///< jobs that reached a terminal state
  std::size_t queued_jobs = 0;
  std::size_t running_jobs = 0;
  std::size_t resident_documents = 0;
};

enum class Action : std::uint8_t { kHold = 0, kEscalate = 1, kRestore = 2 };
const char* action_name(Action action);

/// What one tick decided, and why.
struct Decision {
  Action action = Action::kHold;
  Level level = Level::kNormal;  ///< ladder level AFTER the action
  /// Machine-stable reason token, e.g. "p95-breach", "queue-breach",
  /// "recovered", "hold", "hold:cooldown", "hold:dead-band".
  std::string reason;
};

class SloController {
 public:
  explicit SloController(ControlConfig config);

  /// Consumes one sensor reading, possibly transitioning the ladder.
  /// Deterministic: equal configs fed equal reading sequences produce
  /// equal decision sequences.
  Decision step(const SensorReading& reading);

  Level level() const { return level_; }
  /// Effective-alpha multiplier implied by the current level.
  double alpha_scale() const;
  /// True from kHedgeOff upward: deadline-hedged re-dispatch suspended.
  bool hedge_suspended() const { return level_ >= Level::kHedgeOff; }
  /// Admission-watermark multiplier for below-protected-priority
  /// submissions (1.0 below kAdmissionTight).
  double admission_scale() const;

  std::size_t transitions_up() const { return transitions_up_; }
  std::size_t transitions_down() const { return transitions_down_; }
  std::uint64_t ticks_seen() const { return ticks_seen_; }
  const ControlConfig& config() const { return config_; }

  /// Level-effect helpers shared with tests and the service.
  static double alpha_scale_for(const ControlConfig& config, Level level);
  static double admission_scale_for(const ControlConfig& config, Level level);

 private:
  /// SLO breached: latency over the limit (when there is evidence) or the
  /// queue past its high watermark.
  bool breached(const SensorReading& reading) const;
  /// Fully clear: latency under the recover band (or no evidence) AND the
  /// queue at or under its low watermark.
  bool cleared(const SensorReading& reading) const;

  ControlConfig config_;
  std::uint64_t clear_p95_micros_ = 0;  ///< slo * recover_fraction, fixed
  Level level_ = Level::kNormal;
  std::size_t breach_streak_ = 0;
  std::size_t clear_streak_ = 0;
  std::uint64_t ticks_seen_ = 0;
  /// Ticks elapsed since the last transition; saturates. Starts "old"
  /// so the first restoration after boot is not artificially delayed.
  std::uint64_t ticks_since_transition_ = 0;
  bool has_transitioned_ = false;
  std::size_t transitions_up_ = 0;
  std::size_t transitions_down_ = 0;
};

}  // namespace adaparse::serve::control
