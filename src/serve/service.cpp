#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "core/pipeline.hpp"
#include "obs/trace.hpp"

namespace adaparse::serve {
namespace {

/// Serves at most `limit` documents from the job's source — the slice the
/// scheduler granted. Remembers whether the underlying stream ended so the
/// dispatcher can tell "slice full" from "job done".
class LimitSource final : public core::DocumentSource {
 public:
  LimitSource(core::DocumentSource& inner, std::size_t limit)
      : inner_(inner), limit_(limit) {}

  std::shared_ptr<const doc::Document> next() override {
    if (pulled_ >= limit_) return nullptr;
    auto doc = inner_.next();
    if (!doc) {
      exhausted_ = true;
      return nullptr;
    }
    ++pulled_;
    return doc;
  }

  std::size_t pulled() const { return pulled_; }
  bool exhausted() const { return exhausted_; }

 private:
  core::DocumentSource& inner_;
  std::size_t limit_;
  std::size_t pulled_ = 0;
  bool exhausted_ = false;
};

std::size_t resolve_pool_threads(const ServiceConfig& config) {
  std::size_t threads = config.pool_threads > 0
                            ? config.pool_threads
                            : std::max<std::size_t>(
                                  2, std::thread::hardware_concurrency());
  // Every concurrent slice needs its full worker complement (>= 1 extract
  // + 1 upgrade) runnable at once, or a pipeline stage could starve and
  // deadlock the slice — the shared-pool invariant of core::Pipeline.
  const std::size_t dispatchers =
      std::max<std::size_t>(1, config.dispatchers);
  return std::max(threads, 2 * dispatchers);
}

FairSchedulerConfig scheduler_config(const ServiceConfig& config) {
  FairSchedulerConfig sc;
  sc.quantum_docs = config.quantum_docs;
  sc.deadline_slack = config.deadline_slack;
  return sc;
}

void accumulate_stage(core::StageStats& into, const core::StageStats& slice) {
  into.busy_seconds += slice.busy_seconds;
  into.idle_seconds += slice.idle_seconds;
  into.items += slice.items;
  into.peak_queue_depth =
      std::max(into.peak_queue_depth, slice.peak_queue_depth);
}

void accumulate(core::EngineStats& into, const core::EngineStats& slice) {
  into.total_docs += slice.total_docs;
  into.cls1_invalid += slice.cls1_invalid;
  into.routed_to_nougat += slice.routed_to_nougat;
  into.accepted_extraction += slice.accepted_extraction;
  into.failed_docs += slice.failed_docs;
  into.classifier_cpu_seconds += slice.classifier_cpu_seconds;
  into.extraction_cpu_seconds += slice.extraction_cpu_seconds;
  into.nougat_gpu_seconds += slice.nougat_gpu_seconds;
  into.wall_seconds += slice.wall_seconds;
  into.pipeline.streaming = true;
  into.pipeline.cancelled |= slice.pipeline.cancelled;
  into.pipeline.queue_capacity = slice.pipeline.queue_capacity;
  into.pipeline.resident_window =
      std::max(into.pipeline.resident_window, slice.pipeline.resident_window);
  into.pipeline.peak_resident_extractions =
      std::max(into.pipeline.peak_resident_extractions,
               slice.pipeline.peak_resident_extractions);
  accumulate_stage(into.pipeline.prefetch, slice.pipeline.prefetch);
  accumulate_stage(into.pipeline.extract, slice.pipeline.extract);
  accumulate_stage(into.pipeline.route, slice.pipeline.route);
  accumulate_stage(into.pipeline.upgrade, slice.pipeline.upgrade);
  accumulate_stage(into.pipeline.write, slice.pipeline.write);
}

double seconds_between(ParseJob::Clock::time_point from,
                       ParseJob::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ParseService::ParseService(
    ServiceConfig config,
    std::shared_ptr<const core::AccuracyPredictor> predictor,
    std::shared_ptr<const core::Cls2Improver> improver)
    : config_(config),
      predictor_(std::move(predictor)),
      improver_(std::move(improver)),
      cache_(/*enabled=*/true),
      pool_(resolve_pool_threads(config)),
      scheduler_(scheduler_config(config)),
      started_at_(ParseJob::Clock::now()),
      wake_(256) {
  config_.dispatchers = std::max<std::size_t>(1, config_.dispatchers);
  config_.slice_batches = std::max<std::size_t>(1, config_.slice_batches);
  // Split the pool evenly across concurrent slices; favor extraction (the
  // paper's cheap-lane bulk) and keep one upgrade slot per slice unless
  // there is room for the pipeline's default of two.
  const std::size_t per_slice =
      std::max<std::size_t>(2, pool_.size() / config_.dispatchers);
  slice_upgrade_workers_ = per_slice >= 6 ? 2 : 1;
  slice_extract_workers_ = per_slice - slice_upgrade_workers_;

  cache_.set_retry_policy(config_.warm_cache_retry);
  if (!config_.fault_plan.model_load_faults.empty()) {
    // Scripted transient model-load failures: the first N cumulative load
    // attempts of a key fail, exercising the warm-cache retry path.
    cache_.set_load_failure_hook(
        [this](const std::string& key, std::size_t attempt) {
          return attempt <= config_.fault_plan.load_fail_attempts(key);
        });
  }

  // Controller and journal come up before any worker thread so a throwing
  // journal path cannot leak running dispatchers.
  if (config_.enable_slo_controller) {
    controller_ = std::make_unique<control::SloController>(config_.control);
    if (!config_.decision_journal_path.empty()) {
      journal_ = std::make_unique<control::DecisionJournal>(
          config_.decision_journal_path);
      journal_->append(controller_->config());  // the clamped config
    }
    ControlState state;
    state.enabled = true;
    metrics_.set_control_state(state);
  }

  dispatchers_.reserve(config_.dispatchers);
  for (std::size_t d = 0; d < config_.dispatchers; ++d) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
  if (controller_) {
    control_thread_ = std::thread([this] { control_loop(); });
  }
}

ParseService::~ParseService() { shutdown(); }

double ParseService::uptime_seconds() const {
  return std::chrono::duration<double>(ParseJob::Clock::now() - started_at_)
      .count();
}

std::size_t ParseService::slice_docs_for(const ParseJob& job) const {
  const std::size_t k =
      std::max<std::size_t>(1, job.engine_config().batch_size);
  return config_.slice_batches * k;
}

ScheduleItem ParseService::make_item(const JobHandle& job) const {
  ScheduleItem item;
  item.id = job->id();
  item.tenant = job->tenant();
  item.priority = job->priority();
  item.deadline = job->deadline();
  item.slice_cost = slice_docs_for(*job);
  item.job = job;
  return item;
}

JobHandle ParseService::submit(JobRequest request) {
  const auto now = ParseJob::Clock::now();
  const std::string tenant = request.spec.tenant;
  metrics_.on_submitted(tenant);

  // Wire path: no live source, so materialize one from the spec's
  // documents section. A bad spec becomes a rejection, not an exception —
  // the caller always gets a handle.
  std::string source_error;
  if (!request.source &&
      request.spec.documents != JobSpec::Documents::kNone) {
    try {
      request.source = request.spec.make_source();
    } catch (const std::exception& e) {
      source_error = std::string("spec: ") + e.what();
    }
  }

  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_job_id_++;
  }
  JobHandle job(new ParseJob(id, std::move(request), now));
  job->resident_estimate_ = std::max<std::size_t>(1, job->total_hint_);
  {
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      tracer.instant("serve", "job.submit", "id", id, "docs_hint",
                     job->total_hint_, tracer.intern(tenant));
    }
  }

  const auto reject = [&](std::string reason) {
    {
      std::lock_guard<std::mutex> lock(job->mutex_);
      job->state_ = JobState::kRejected;
      job->error_ = std::move(reason);
      job->finished_ = ParseJob::Clock::now();
      job->finished_set_ = true;
    }
    job->cv_.notify_all();
    metrics_.on_rejected(tenant);
    update_gauges();
    return job;
  };

  if (!source_error.empty()) return reject(std::move(source_error));
  if (!job->source_) return reject("no document source");
  try {
    job->engine_ = std::make_unique<core::AdaParseEngine>(
        job->engine_config_, predictor_, improver_);
  } catch (const std::exception& e) {
    return reject(std::string("engine: ") + e.what());
  }

  // Admission control: shed load once either watermark is exceeded, so
  // queue depth (and with it the queue-wait tail) stays bounded. At ladder
  // level admission-tight the SLO guardian scales the watermarks down for
  // submissions below the protected priority — load shedding starts at the
  // door, and protected tenants keep their full headroom.
  std::size_t max_queued = config_.max_queued_jobs;
  std::size_t max_resident = config_.max_resident_documents;
  if (controller_ && job->priority() < config_.control.protected_priority) {
    const double scale = admission_scale_.load(std::memory_order_relaxed);
    max_queued = static_cast<std::size_t>(
        static_cast<double>(max_queued) * scale);
    max_resident = static_cast<std::size_t>(
        static_cast<double>(max_resident) * scale);
  }
  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_ || stopping_.load(std::memory_order_relaxed)) {
      reject_reason = "service shutdown";
    } else if (scheduler_.queued() >= max_queued) {
      reject_reason = "admission: queued-jobs watermark";
    } else if (resident_docs_ + job->resident_estimate_ > max_resident) {
      reject_reason = "admission: resident-work watermark";
    } else {
      resident_docs_ += job->resident_estimate_;
      active_jobs_.emplace(job->id(), job);
      scheduler_.enqueue(make_item(job));
    }
  }
  if (!reject_reason.empty()) return reject(std::move(reject_reason));
  wake_.try_push(0);
  update_gauges();
  return job;
}

void ParseService::set_tenant_weight(const std::string& tenant,
                                     double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  scheduler_.set_weight(tenant, weight);
}

void ParseService::set_job_paused(const JobHandle& job, bool paused) {
  if (!job) return;
  job->paused_.store(paused, std::memory_order_relaxed);
  if (paused) {
    // The dispatchers' park pass (or the requeue path) moves the job out
    // of the scheduler at its next touch; nudge them so a queued job is
    // parked promptly rather than at the next natural wake.
    wake_.try_push(0);
    return;
  }
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = parked_.find(job->id());
    if (it != parked_.end()) {
      scheduler_.requeue(std::move(it->second));
      parked_.erase(it);
      resumed = true;
    }
  }
  if (resumed) wake_.try_push(0);
}

std::size_t ParseService::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_.queued();
}

std::size_t ParseService::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::size_t ParseService::resident_documents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_docs_;
}

std::size_t ParseService::parked_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parked_.size();
}

void ParseService::update_gauges() const {
  std::size_t queued, running, resident;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queued = scheduler_.queued();
    running = running_;
    resident = resident_docs_;
  }
  metrics_.set_gauges(queued, running, resident);
}

MetricsSnapshot ParseService::metrics() const {
  update_gauges();
  return metrics_.snapshot();
}

std::string ParseService::metrics_text() const {
  update_gauges();
  return metrics_.render_prometheus();
}

void ParseService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return scheduler_.empty() && running_ == 0; });
}

std::vector<std::uint64_t> ParseService::drain(
    std::chrono::milliseconds deadline) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (idle_cv_.wait_for(lock, deadline, [this] {
          return scheduler_.empty() && running_ == 0;
        })) {
      return {};
    }
  }
  // Deadline missed: cancel everything still outstanding. Cancellation is
  // cooperative — in-flight slices stop admitting documents and drain what
  // they already hold, queued jobs are reaped by the dispatchers — so the
  // follow-up wait is bounded by one slice's drain, not by the backlog.
  std::vector<JobHandle> outstanding;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outstanding.reserve(active_jobs_.size());
    for (const auto& [id, handle] : active_jobs_) {
      outstanding.push_back(handle);
    }
  }
  std::vector<std::uint64_t> unfinished;
  unfinished.reserve(outstanding.size());
  for (const JobHandle& job : outstanding) {
    if (job_state_terminal(job->state())) continue;  // beat us to the line
    unfinished.push_back(job->id());
    job->cancel();
  }
  wake_.try_push(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return scheduler_.empty() && running_ == 0; });
  }
  return unfinished;
}

void ParseService::stop_controller() {
  if (!control_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    control_stop_ = true;
  }
  control_cv_.notify_all();
  control_thread_.join();
}

void ParseService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_controller();
  stopping_.store(true, std::memory_order_relaxed);
  wake_.close();
  for (auto& dispatcher : dispatchers_) dispatcher.join();
  std::vector<ScheduleItem> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers = scheduler_.take_all();
    for (auto& [id, item] : parked_) leftovers.push_back(std::move(item));
    parked_.clear();
  }
  for (auto& item : leftovers) {
    finalize(item.job, JobState::kCancelled, "service shutdown");
  }
  pool_.shutdown();
  update_gauges();
}

std::vector<std::uint64_t> ParseService::shutdown(
    std::chrono::milliseconds deadline) {
  auto unfinished = drain(deadline);
  shutdown();
  return unfinished;
}

void ParseService::dispatcher_loop() {
  for (;;) {
    // The wake channel makes fresh submits immediate; its timeout bounds
    // how stale a shutdown or cancel check can get (satellite: pop_for).
    (void)wake_.pop_for(config_.dispatch_poll);
    if (stopping_.load(std::memory_order_relaxed)) return;

    // Reap jobs cancelled while still queued or parked: finalizing them
    // here (instead of when their fair-share turn would have come)
    // releases their admission capacity immediately, so cancelled work
    // cannot keep the watermarks tripped against other tenants. The same
    // pass parks queued jobs whose connection backpressured them
    // (set_job_paused) — cancel wins over pause.
    std::vector<ScheduleItem> reaped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reaped = scheduler_.take_if([](const ScheduleItem& item) {
        return item.job &&
               item.job->cancel_.load(std::memory_order_relaxed);
      });
      for (auto it = parked_.begin(); it != parked_.end();) {
        if (it->second.job &&
            it->second.job->cancel_.load(std::memory_order_relaxed)) {
          reaped.push_back(std::move(it->second));
          it = parked_.erase(it);
        } else {
          ++it;
        }
      }
      auto to_park = scheduler_.take_if([](const ScheduleItem& item) {
        return item.job &&
               item.job->paused_.load(std::memory_order_relaxed);
      });
      for (auto& item : to_park) {
        const std::uint64_t id = item.id;
        parked_.emplace(id, std::move(item));
      }
    }
    for (const auto& item : reaped) {
      finalize(item.job, JobState::kCancelled, "");
    }

    JobHandle job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto item = scheduler_.next(ParseJob::Clock::now());
      if (item) {
        job = std::move(item->job);
        ++running_;
      }
    }
    if (!job) continue;
    update_gauges();

    run_slice(job);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    idle_cv_.notify_all();
    update_gauges();
    // More work may be queued (including this job's next slice); keep the
    // dispatchers hot instead of waiting out the poll timeout.
    wake_.try_push(0);
  }
}

void ParseService::run_slice(const JobHandle& job) {
  ParseJob& j = *job;

  if (j.cancel_.load(std::memory_order_relaxed)) {
    finalize(job, JobState::kCancelled, "");
    return;
  }

  // First slice: queued -> running, and the queue-wait sample.
  {
    std::lock_guard<std::mutex> lock(j.mutex_);
    if (j.state_ == JobState::kQueued) {
      j.state_ = JobState::kRunning;
      j.started_ = ParseJob::Clock::now();
      j.started_set_ = true;
      metrics_.on_started(j.tenant_,
                          seconds_between(j.submitted_, j.started_));
    }
  }

  const std::size_t planned = slice_docs_for(j);
  const std::size_t base = j.docs_pulled_;
  LimitSource slice_source(*j.source_, planned);

  obs::SpanGuard slice_span("serve", "job.slice", "id", j.id());
  if (slice_span.active()) {
    slice_span.tag(obs::Tracer::instance().intern(j.tenant_));
  }

  core::PipelineConfig pipeline_config;
  pipeline_config.queue_capacity = config_.queue_capacity;
  pipeline_config.extract_workers = slice_extract_workers_;
  pipeline_config.upgrade_workers = slice_upgrade_workers_;
  pipeline_config.pool = &pool_;
  pipeline_config.warm_cache = &cache_;
  pipeline_config.cancel = &j.cancel_;
  // The SLO guardian's budget actuator: only controller-enabled services
  // set the hook, so everything else routes byte-identically.
  if (controller_) pipeline_config.alpha_scale = &alpha_scale_;
  const core::Pipeline pipeline(*j.engine_, pipeline_config);

  core::EngineStats slice_stats;
  bool failed = false;
  std::string error;
  // The sink runs on the slice's writer thread only, so this counter needs
  // no lock; the registry is charged once per slice, not per record (the
  // sink is the ordered-emit hot path, shared-mutex-free by design).
  std::size_t slice_docs_done = 0;
  try {
    slice_stats = pipeline.run(
        slice_source,
        [&](std::size_t index, const io::ParseRecord& record,
            const core::RouteDecision& decision) {
          const bool upgraded =
              decision.chosen == parsers::ParserKind::kNougat;
          JobRecord out;
          out.index = base + index;
          out.record = record;
          out.decision = decision;
          // Slice-local indices become corpus-global ones, matching what
          // a standalone run would have produced.
          out.decision.doc_index = base + decision.doc_index;
          std::shared_ptr<const std::function<void()>> notify;
          {
            std::lock_guard<std::mutex> lock(j.mutex_);
            j.pending_.push_back(std::move(out));
            ++j.docs_completed_;
            notify = j.notify_;
          }
          // Progress hook fires outside the job lock (it may wake an
          // event loop, which must never re-enter the job).
          if (notify) (*notify)();
          ++slice_docs_done;
          // Scripted latency spikes land on the writer thread, after the
          // record is safely delivered: the slice slows down end-to-end
          // (backpressuring its stages exactly like a genuinely slow
          // consumer) without ever losing a document.
          if (!config_.fault_plan.latency_spikes.empty()) {
            const auto delay = config_.fault_plan.delay_for(
                j.tenant_, upgraded, uptime_seconds());
            if (delay.count() > 0) std::this_thread::sleep_for(delay);
          }
        });
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown slice error";
  }
  slice_span.arg("docs", slice_docs_done);
  j.docs_pulled_ += slice_source.pulled();
  if (slice_docs_done > 0) {
    metrics_.on_docs_completed(j.tenant_, slice_docs_done);
  }
  if (!failed) {
    std::lock_guard<std::mutex> lock(j.mutex_);
    accumulate(j.stats_, slice_stats);
  }

  // Return unused credit for a short (usually final) slice.
  if (slice_source.pulled() < planned) {
    std::lock_guard<std::mutex> lock(mutex_);
    scheduler_.refund(j.tenant_, planned - slice_source.pulled());
  }

  if (failed) {
    finalize(job, JobState::kFailed, std::move(error));
  } else if (j.cancel_.load(std::memory_order_relaxed)) {
    finalize(job, JobState::kCancelled, "");
  } else if (slice_source.exhausted()) {
    finalize(job, JobState::kCompleted, "");
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    if (j.paused_.load(std::memory_order_relaxed)) {
      // Backpressured mid-job: the next slice waits for the connection to
      // drain instead of producing records nobody can take yet.
      parked_.emplace(j.id(), make_item(job));
    } else {
      scheduler_.requeue(make_item(job));
    }
  }
}

void ParseService::finalize(const JobHandle& job, JobState state,
                            std::string error) {
  ParseJob& j = *job;
  double latency;
  std::shared_ptr<const std::function<void()>> notify;
  {
    std::lock_guard<std::mutex> lock(j.mutex_);
    if (job_state_terminal(j.state_)) return;  // already settled
    j.state_ = state;
    j.error_ = std::move(error);
    j.finished_ = ParseJob::Clock::now();
    j.finished_set_ = true;
    latency = seconds_between(j.submitted_, j.finished_);
    notify = j.notify_;
  }
  j.cv_.notify_all();
  if (notify) (*notify)();
  {
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      tracer.instant("serve", "job.complete", "id", j.id(), "state",
                     static_cast<std::uint64_t>(state),
                     tracer.intern(job_state_name(state)));
    }
  }
  switch (state) {
    case JobState::kCompleted:
      metrics_.on_completed(j.tenant_, latency);
      break;
    case JobState::kCancelled:
      metrics_.on_cancelled(j.tenant_, latency);
      break;
    case JobState::kFailed:
      metrics_.on_failed(j.tenant_, latency);
      break;
    default:
      break;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    resident_docs_ -= std::min(resident_docs_, j.resident_estimate_);
    active_jobs_.erase(j.id());
  }
  idle_cv_.notify_all();
}

void ParseService::control_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait_for(lock, config_.control_tick,
                           [this] { return control_stop_; });
      if (control_stop_) return;
    }
    control_tick();
  }
}

void ParseService::control_tick() {
  // Sensor read: the live counters and the latency window leave the
  // registry under ONE lock (set_gauges_and_sample), so the p95 and the
  // queue depth in a reading are from the same instant.
  std::size_t queued, running, resident;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queued = scheduler_.queued();
    running = running_;
    resident = resident_docs_;
  }
  const ControlSample sample =
      metrics_.set_gauges_and_sample(queued, running, resident);

  control::SensorReading reading;
  reading.tick = ++control_ticks_;
  reading.p95_micros = sample.p95_micros;
  reading.window_count = sample.window_count;
  reading.queued_jobs = sample.queued_jobs;
  reading.running_jobs = sample.running_jobs;
  reading.resident_documents = sample.resident_documents;

  const control::Decision decision = controller_->step(reading);

  // Actuate. The atomics are the lock-free hot-path reads (route-window
  // flush, admission check); the hedge switch rides the service mutex the
  // scheduler already lives under.
  alpha_scale_.store(controller_->alpha_scale(), std::memory_order_relaxed);
  admission_scale_.store(controller_->admission_scale(),
                         std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scheduler_.set_deadline_boost_enabled(!controller_->hedge_suspended());
  }

  ControlState state;
  state.enabled = true;
  state.level = static_cast<std::size_t>(controller_->level());
  state.level_name = control::level_name(controller_->level());
  state.alpha_scale = controller_->alpha_scale();
  state.transitions_up = controller_->transitions_up();
  state.transitions_down = controller_->transitions_down();
  state.ticks = controller_->ticks_seen();
  metrics_.set_control_state(state);

  if (journal_) {
    control::TickRecord record;
    record.reading = reading;
    record.action = decision.action;
    record.level = decision.level;
    record.reason = decision.reason;
    journal_->append(record);
  }

  if (decision.action != control::Action::kHold) {
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      tracer.instant("serve", "control.transition", "level", state.level,
                     "up",
                     decision.action == control::Action::kEscalate ? 1 : 0,
                     tracer.intern(decision.reason));
    }
  }
}

}  // namespace adaparse::serve
