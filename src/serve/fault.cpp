#include "serve/fault.hpp"

namespace adaparse::serve {

std::chrono::milliseconds FaultPlan::delay_for(std::string_view tenant,
                                               bool upgraded,
                                               double uptime_seconds) const {
  std::chrono::milliseconds total{0};
  for (const LatencySpike& spike : latency_spikes) {
    if (!spike.tenant.empty() && spike.tenant != tenant) continue;
    if (uptime_seconds < spike.from_seconds ||
        uptime_seconds >= spike.until_seconds) {
      continue;
    }
    total += spike.per_doc_delay;
    if (upgraded) total += spike.per_upgrade_delay;
  }
  return total;
}

std::size_t FaultPlan::load_fail_attempts(std::string_view key) const {
  std::size_t attempts = 0;
  for (const ModelLoadFault& fault : model_load_faults) {
    if (fault.key == key) attempts += fault.fail_attempts;
  }
  return attempts;
}

bool FaultPlan::empty() const {
  return latency_spikes.empty() && model_load_faults.empty() &&
         slow_consumers.empty() && bursts.empty();
}

}  // namespace adaparse::serve
