#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace adaparse::serve {

namespace {
constexpr double kMinWeight = 0.01;
}  // namespace

FairScheduler::FairScheduler(FairSchedulerConfig config) : config_(config) {
  config_.quantum_docs = std::max<std::size_t>(1, config_.quantum_docs);
}

void FairScheduler::set_weight(const std::string& tenant, double weight) {
  weights_[tenant] = std::max(kMinWeight, weight);
}

double FairScheduler::weight(const std::string& tenant) const {
  return weight_locked(tenant);
}

double FairScheduler::weight_locked(const std::string& tenant) const {
  const auto it = weights_.find(tenant);
  return it != weights_.end() ? it->second : 1.0;
}

void FairScheduler::insert(ScheduleItem item, bool front_of_priority_class) {
  Tenant& t = tenants_.try_emplace(item.tenant).first->second;
  if (t.items.empty()) rotation_.push_back(item.tenant);
  // Queues are ordered by priority (descending), FIFO within a class; a
  // requeued (mid-run) job goes to the front of its class so it finishes
  // before the tenant's next job of the same priority starts.
  const int p = item.priority;
  auto pos = front_of_priority_class
                 ? std::find_if(t.items.begin(), t.items.end(),
                                [p](const ScheduleItem& existing) {
                                  return existing.priority <= p;
                                })
                 : std::find_if(t.items.begin(), t.items.end(),
                                [p](const ScheduleItem& existing) {
                                  return existing.priority < p;
                                });
  if (item.deadline) ++deadline_queued_;
  t.items.insert(pos, std::move(item));
  ++queued_;
}

void FairScheduler::enqueue(ScheduleItem item) {
  insert(std::move(item), /*front_of_priority_class=*/false);
}

void FairScheduler::requeue(ScheduleItem item) {
  insert(std::move(item), /*front_of_priority_class=*/true);
}

void FairScheduler::drop_from_rotation(const std::string& tenant) {
  const auto it = std::find(rotation_.begin(), rotation_.end(), tenant);
  if (it == rotation_.end()) return;
  const auto idx = static_cast<std::size_t>(it - rotation_.begin());
  if (idx == cursor_) visit_granted_ = false;  // that visit is over
  rotation_.erase(it);
  if (rotation_.empty()) {
    cursor_ = 0;
    return;
  }
  if (idx < cursor_) --cursor_;
  if (cursor_ >= rotation_.size()) cursor_ = 0;
}

void FairScheduler::after_pop(const std::string& tenant, Tenant& t) {
  --queued_;
  if (t.items.empty()) {
    // Classic DRR resets an idling tenant's counter, but only the credit
    // side: debt from deadline boosts must survive the empty/requeue cycle
    // a single sliced job goes through constantly, or boost debt would be
    // wiped before it is ever repaid.
    t.deficit = std::min(t.deficit, 0.0);
    drop_from_rotation(tenant);
  }
}

std::optional<ScheduleItem> FairScheduler::next(TimePoint now) {
  if (queued_ == 0) return std::nullopt;

  // ---- Deadline boost: earliest deadline within the slack window. A
  // boost *borrows* future fair-share capacity, and the borrowing is
  // bounded: once a tenant's debt would exceed its borrow cap the item is
  // no longer boosted (it stays eligible through the normal rotation), so
  // stamping tight deadlines on everything cannot starve other tenants. ----
  // skip the scan for deadline-free workloads or while the SLO guardian
  // has the boost suspended (degradation level >= hedge-off)
  if (deadline_queued_ > 0 && deadline_boost_enabled_) {
    Tenant* urgent_tenant = nullptr;
    std::deque<ScheduleItem>::iterator urgent_it;
    const std::string* urgent_name = nullptr;
    const TimePoint horizon = now + config_.deadline_slack;
    for (auto& [name, t] : tenants_) {
      const double borrow_cap = 2.0 *
                                static_cast<double>(config_.quantum_docs) *
                                weight_locked(name);
      for (auto it = t.items.begin(); it != t.items.end(); ++it) {
        if (!it->deadline || *it->deadline > horizon) continue;
        if (t.deficit - static_cast<double>(it->slice_cost) < -borrow_cap) {
          continue;  // borrow allowance exhausted: no more jumping the line
        }
        if (urgent_tenant == nullptr ||
            *it->deadline < *urgent_it->deadline) {
          urgent_tenant = &t;
          urgent_it = it;
          urgent_name = &name;
        }
      }
    }
    if (urgent_tenant != nullptr) {
      ScheduleItem item = std::move(*urgent_it);
      urgent_tenant->items.erase(urgent_it);
      // Urgency is not free capacity: the slice still spends tenant
      // credit, possibly driving the deficit negative until the rotation
      // repays it.
      urgent_tenant->deficit -= static_cast<double>(item.slice_cost);
      --deadline_queued_;
      after_pop(*urgent_name, *urgent_tenant);
      auto& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        tracer.instant("serve", "sched.grant", "id", item.id, "boost", 1,
                       tracer.intern(item.tenant));
      }
      return item;
    }
  }

  // ---- Deficit round-robin. Each *visit* (the cursor opening a tenant's
  // service opportunity) grants quantum * weight credit exactly once; the
  // tenant then dispatches slices until its credit no longer covers the
  // next one, at which point the cursor moves on and the leftover credit
  // carries to its next visit. The once-per-visit grant is load-bearing:
  // granting on every call would let the tenant under the cursor mint
  // credit forever, and granting only on cursor *movement* starves a
  // tenant that re-enters the rotation under a parked cursor (a single
  // job being requeued between slices does exactly that). Every full
  // rotation grants every backlogged tenant fresh credit, so the loop
  // always terminates with a dispatch. ----
  for (;;) {
    const std::string tenant = rotation_[cursor_];
    Tenant& t = tenants_[tenant];
    const double w = weight_locked(tenant);
    const double cost = static_cast<double>(t.items.front().slice_cost);
    if (!visit_granted_) {
      visit_granted_ = true;
      t.deficit += static_cast<double>(config_.quantum_docs) * w;
      // Cap banked credit so a lone busy tenant cannot hoard an unbounded
      // burst against tenants that arrive later.
      t.deficit = std::min(
          t.deficit,
          cost + 2.0 * static_cast<double>(config_.quantum_docs) * w);
    }
    if (t.deficit >= cost) {
      ScheduleItem item = std::move(t.items.front());
      t.items.pop_front();
      t.deficit -= cost;
      if (item.deadline) --deadline_queued_;
      after_pop(tenant, t);
      if (cursor_ >= rotation_.size()) cursor_ = 0;
      auto& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        tracer.instant("serve", "sched.grant", "id", item.id, "boost", 0,
                       tracer.intern(item.tenant));
      }
      return item;
    }
    // Opportunity over: leftover credit carries; next tenant's visit opens.
    cursor_ = (cursor_ + 1) % rotation_.size();
    visit_granted_ = false;
  }
}

void FairScheduler::refund(const std::string& tenant, std::size_t docs) {
  const auto it = tenants_.find(tenant);
  // Only meaningful while the tenant still has backlog: an idle tenant's
  // deficit was reset on empty and stays reset.
  if (it == tenants_.end() || it->second.items.empty()) return;
  it->second.deficit += static_cast<double>(docs);
}

bool FairScheduler::remove(std::uint64_t id) {
  for (auto& [name, t] : tenants_) {
    const auto it =
        std::find_if(t.items.begin(), t.items.end(),
                     [id](const ScheduleItem& item) { return item.id == id; });
    if (it == t.items.end()) continue;
    if (it->deadline) --deadline_queued_;
    t.items.erase(it);
    after_pop(name, t);
    return true;
  }
  return false;
}

std::vector<ScheduleItem> FairScheduler::take_all() {
  std::vector<ScheduleItem> all;
  all.reserve(queued_);
  for (auto& [name, t] : tenants_) {
    for (auto& item : t.items) all.push_back(std::move(item));
    t.items.clear();
    t.deficit = 0.0;
  }
  rotation_.clear();
  cursor_ = 0;
  visit_granted_ = false;
  queued_ = 0;
  deadline_queued_ = 0;
  return all;
}

}  // namespace adaparse::serve
