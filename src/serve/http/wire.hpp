// The /v1 wire schemas — every JSON shape the HTTP front end emits.
//
// Builders are pure functions over plain values (never over live ParseJob
// handles), so tests can golden-pin the exact serialized bytes. The three
// response families:
//
//   * error envelope   {"error":{"code":"...","message":"..."}}  (uniform
//     across every non-2xx response);
//   * job status       {"id":...,"tenant":...,"state":...,...}   (GET and
//     DELETE on /v1/jobs/{id});
//   * stream lines     one JSON object per JSONL line on POST /v1/parse:
//     a created line, one record line per document (in input order), and
//     a final done line.
//
// JobState wire names come from job_state_name() — frozen vocabulary.
#pragma once

#include <cstdint>
#include <string>

#include "serve/job.hpp"
#include "util/json.hpp"

namespace adaparse::serve::http {

/// {"error":{"code":code,"message":message}}
util::Json error_envelope(const std::string& code,
                          const std::string& message);

/// Flat job-status object for GET/DELETE /v1/jobs/{id}.
util::Json job_status_json(std::uint64_t id, const std::string& tenant,
                           const JobProgress& progress,
                           const std::string& error);

/// First stream line: {"job":{"id":...,"tenant":...,"docs_total_hint":...}}
util::Json stream_created_line(std::uint64_t id, const std::string& tenant,
                               std::size_t docs_total_hint);

/// Per-document stream line: {"index":i,"record":{...io::ParseRecord...}}
util::Json stream_record_line(const JobRecord& record);

/// Final stream line:
/// {"done":{"state":...,"docs_completed":...,"error":...}}
util::Json stream_done_line(JobState state, std::size_t docs_completed,
                            const std::string& error);

/// How a ParseService rejection reason maps onto the wire.
struct RejectStatus {
  int http_status;
  const char* code;
};

/// Admission sheds -> 429 over_capacity, shutdown -> 503 shutting_down,
/// bad specs (and anything else) -> 400 invalid_request.
RejectStatus classify_reject(const std::string& reason);

}  // namespace adaparse::serve::http
