// serve::http::HttpServer — the /v1 network front end for ParseService.
//
// One net::EventLoop thread multiplexes every connection; the service's
// own dispatcher threads do the parsing work and wake the loop through
// ParseJob::set_notify as records land. Routes:
//
//   POST   /v1/parse     JobSpec JSON in, streamed JSONL out (one line
//                        per record, in input order, chunked transfer
//                        encoding) — records appear as slices complete,
//                        byte-identical to a standalone engine run.
//   GET    /v1/jobs/{id} job status (state/progress/error).
//   DELETE /v1/jobs/{id} cooperative cancel; answers with the status.
//   GET    /metrics      service exposition + adaparse_http_* families.
//
// Every non-2xx response carries the uniform error envelope
// {"error":{"code","message"}}.
//
// Backpressure: a connection whose client reads slowly accumulates
// buffered response bytes; at write_high_watermark the server parks the
// job's slice scheduling (ParseService::set_job_paused), and resumes once
// the buffer drains under write_low_watermark. A slow reader therefore
// costs its own job's admission reservation — never unbounded server
// memory, never the worker pool. A connection that drops mid-stream
// cancels its job.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/job_spec.hpp"
#include "serve/service.hpp"

namespace adaparse::serve::http {

struct HttpServerConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see HttpServer::port)
  net::http::Limits limits;
  /// Accepts beyond this are closed immediately (connection shedding).
  std::size_t max_connections = 256;
  /// Buffered-response-bytes watermark that pauses the connection's job.
  std::size_t write_high_watermark = 256 * 1024;
  /// Drain level that resumes a paused job.
  std::size_t write_low_watermark = 64 * 1024;
  /// Upper bound on one epoll wait — the loop's housekeeping cadence.
  std::chrono::milliseconds idle_poll{50};
  /// Directory that `documents.shard_file` specs arriving over the wire
  /// resolve against. Empty (the default) answers such specs with 403:
  /// a remote client must never get to name arbitrary server paths.
  /// When set, the path is canonicalized and confined to this root, must
  /// be a regular file, and is read on a helper thread — never on the
  /// event loop. The in-process API (JobRequest) is unaffected.
  std::string shard_root;
  /// Largest shard file the wire path will load (413 beyond this).
  std::size_t max_shard_bytes = 256 * 1024 * 1024;
};

class HttpServer {
 public:
  /// Binds the listener and starts the loop thread; throws
  /// std::runtime_error if the bind fails.
  HttpServer(ParseService& service, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Closes the listener and every connection (cancelling in-flight
  /// streamed jobs) and joins the loop thread. Idempotent.
  void stop();

  /// The bound port (resolved when config.port was 0).
  std::uint16_t port() const { return listener_.port(); }
  const std::string& address() const { return listener_.address(); }
  std::size_t open_connections() const {
    return open_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    net::Fd fd;
    /// Accept-order token: fd numbers recycle, so async completions
    /// (shard loads) re-identify the connection by (fd, serial).
    std::uint64_t serial = 0;
    net::http::RequestParser parser;
    std::string inbuf;   ///< received, not yet parsed (pipelining)
    std::string outbuf;  ///< serialized, not yet written
    std::uint32_t interest = 0;
    bool want_close = false;  ///< close once outbuf drains
    bool read_eof = false;
    /// Active streamed response; while set, pipelined requests wait in
    /// inbuf.
    JobHandle job;
    bool job_paused = false;
    /// A shard load owns the connection (like job, but pre-submit).
    bool shard_pending = false;
    bool stream_keep_alive = false;
    bool stream_chunked = true;
    std::chrono::steady_clock::time_point request_start;

    explicit Connection(net::Fd socket) : fd(std::move(socket)) {}
  };

  /// One queued documents.shard_file load; resolved and read on
  /// shard_thread_, completed back on the loop thread.
  struct ShardLoad {
    int fd = -1;
    std::uint64_t serial = 0;
    JobSpec spec;
    bool keep_alive = false;
    bool chunked = true;
  };

  /// Shared between the server and every notify hook it hands out: the
  /// hooks hold a weak_ptr and re-check `loop` under the mutex, so a
  /// dispatcher thread that copied a hook just before shutdown can never
  /// wake a destroyed event loop.
  struct WakeToken {
    std::mutex mutex;
    net::EventLoop* loop = nullptr;  ///< nulled in stop(), post-join
  };

  // All of these run on the loop thread.
  void on_accept();
  void on_event(int fd, std::uint32_t events);
  void process_input(Connection& conn);
  void dispatch(Connection& conn, net::http::Request request);
  void handle_parse(Connection& conn, const net::http::Request& request);
  /// Submits the spec (with `source` overriding the spec's documents
  /// section when non-null) and begins the stream or sends the rejection.
  void start_parse_job(Connection& conn, JobSpec spec,
                       std::unique_ptr<core::DocumentSource> source,
                       bool keep_alive, bool chunked);
  /// Runs on shard_thread_: confines + reads queued shard files off the
  /// event loop, then posts finish_shard_load back onto it.
  void shard_loader_loop();
  /// Confined bounded read of one wire shard. Returns false with the
  /// error triple filled in on any resolution/size/type failure.
  bool load_shard_blob(const std::string& name, std::string* blob,
                       int* status, std::string* code,
                       std::string* message) const;
  void finish_shard_load(ShardLoad load,
                         std::unique_ptr<core::DocumentSource> source,
                         int error_status, const std::string& error_code,
                         const std::string& error_message);
  void handle_job(Connection& conn, const net::http::Request& request);
  void handle_metrics(Connection& conn, const net::http::Request& request);
  void begin_stream(Connection& conn, JobHandle job, bool keep_alive,
                    bool chunked);
  /// Moves ready records (and, when terminal, the done line) into outbuf,
  /// pausing the job at the high watermark.
  void pump_stream(Connection& conn);
  void end_stream(Connection& conn);
  void append_stream_payload(Connection& conn, const std::string& payload);
  void send_response(Connection& conn, const char* route, int status,
                     const std::string& content_type, std::string body,
                     bool keep_alive);
  void send_error(Connection& conn, const char* route, int status,
                  const std::string& code, const std::string& message,
                  bool keep_alive);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  /// `disconnected` = the peer vanished (EOF/reset): an in-flight
  /// streamed job is cancelled.
  void close_connection(int fd, bool disconnected);
  void tick();
  void shutdown_on_loop();
  void count_request(const char* route, int status);
  /// Evicts the oldest terminal jobs once the id registry outgrows its
  /// cap, so a long-lived server's status history stays bounded.
  void trim_jobs();

  ParseService& service_;
  HttpServerConfig config_;
  net::TcpListener listener_;
  net::EventLoop loop_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  /// Jobs submitted through this server, by id — what GET/DELETE
  /// /v1/jobs/{id} resolves against. Ordered so trim_jobs evicts oldest
  /// first. Loop thread only.
  std::map<std::uint64_t, JobHandle> jobs_;
  std::uint64_t next_serial_ = 1;  ///< loop thread only
  std::atomic<std::size_t> open_count_{0};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;  ///< serializes stop(): only one caller joins
  std::shared_ptr<WakeToken> wake_token_ = std::make_shared<WakeToken>();

  /// Wire-shard loading (only when config.shard_root is set).
  std::string shard_root_;  ///< canonicalized; empty = wire shards 403
  std::mutex shard_mutex_;
  std::condition_variable shard_cv_;
  std::deque<ShardLoad> shard_queue_;
  bool shard_stop_ = false;
  std::thread shard_thread_;

  // adaparse_http_* families, appended to GET /metrics after the
  // service's own exposition.
  obs::Registry registry_;
  obs::Counter& connections_total_;
  obs::Counter& connections_shed_;
  obs::Gauge& connections_open_;
  obs::Counter& bytes_received_;
  obs::Counter& bytes_sent_;
  obs::Counter& backpressure_pauses_;
  obs::Counter& disconnect_cancels_;
  obs::Quantile& request_latency_;

  std::thread thread_;  ///< last member: joins before anything else dies
};

}  // namespace adaparse::serve::http
