// serve::http::HttpServer — the /v1 network front end for ParseService.
//
// One net::EventLoop thread multiplexes every connection; the service's
// own dispatcher threads do the parsing work and wake the loop through
// ParseJob::set_notify as records land. Routes:
//
//   POST   /v1/parse     JobSpec JSON in, streamed JSONL out (one line
//                        per record, in input order, chunked transfer
//                        encoding) — records appear as slices complete,
//                        byte-identical to a standalone engine run.
//   GET    /v1/jobs/{id} job status (state/progress/error).
//   DELETE /v1/jobs/{id} cooperative cancel; answers with the status.
//   GET    /metrics      service exposition + adaparse_http_* families.
//
// Every non-2xx response carries the uniform error envelope
// {"error":{"code","message"}}.
//
// Backpressure: a connection whose client reads slowly accumulates
// buffered response bytes; at write_high_watermark the server parks the
// job's slice scheduling (ParseService::set_job_paused), and resumes once
// the buffer drains under write_low_watermark. A slow reader therefore
// costs its own job's admission reservation — never unbounded server
// memory, never the worker pool. A connection that drops mid-stream
// cancels its job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace adaparse::serve::http {

struct HttpServerConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see HttpServer::port)
  net::http::Limits limits;
  /// Accepts beyond this are closed immediately (connection shedding).
  std::size_t max_connections = 256;
  /// Buffered-response-bytes watermark that pauses the connection's job.
  std::size_t write_high_watermark = 256 * 1024;
  /// Drain level that resumes a paused job.
  std::size_t write_low_watermark = 64 * 1024;
  /// Upper bound on one epoll wait — the loop's housekeeping cadence.
  std::chrono::milliseconds idle_poll{50};
};

class HttpServer {
 public:
  /// Binds the listener and starts the loop thread; throws
  /// std::runtime_error if the bind fails.
  HttpServer(ParseService& service, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Closes the listener and every connection (cancelling in-flight
  /// streamed jobs) and joins the loop thread. Idempotent.
  void stop();

  /// The bound port (resolved when config.port was 0).
  std::uint16_t port() const { return listener_.port(); }
  const std::string& address() const { return listener_.address(); }
  std::size_t open_connections() const {
    return open_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    net::Fd fd;
    net::http::RequestParser parser;
    std::string inbuf;   ///< received, not yet parsed (pipelining)
    std::string outbuf;  ///< serialized, not yet written
    std::uint32_t interest = 0;
    bool want_close = false;  ///< close once outbuf drains
    bool read_eof = false;
    /// Active streamed response; while set, pipelined requests wait in
    /// inbuf.
    JobHandle job;
    bool job_paused = false;
    bool stream_keep_alive = false;
    bool stream_chunked = true;
    std::chrono::steady_clock::time_point request_start;

    explicit Connection(net::Fd socket) : fd(std::move(socket)) {}
  };

  // All of these run on the loop thread.
  void on_accept();
  void on_event(int fd, std::uint32_t events);
  void process_input(Connection& conn);
  void dispatch(Connection& conn, net::http::Request request);
  void handle_parse(Connection& conn, const net::http::Request& request);
  void handle_job(Connection& conn, const net::http::Request& request);
  void handle_metrics(Connection& conn, const net::http::Request& request);
  void begin_stream(Connection& conn, JobHandle job, bool keep_alive,
                    bool chunked);
  /// Moves ready records (and, when terminal, the done line) into outbuf,
  /// pausing the job at the high watermark.
  void pump_stream(Connection& conn);
  void end_stream(Connection& conn);
  void append_stream_payload(Connection& conn, const std::string& payload);
  void send_response(Connection& conn, const char* route, int status,
                     const std::string& content_type, std::string body,
                     bool keep_alive);
  void send_error(Connection& conn, const char* route, int status,
                  const std::string& code, const std::string& message,
                  bool keep_alive);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  /// `disconnected` = the peer vanished (EOF/reset): an in-flight
  /// streamed job is cancelled.
  void close_connection(int fd, bool disconnected);
  void tick();
  void shutdown_on_loop();
  void count_request(const char* route, int status);
  /// Evicts the oldest terminal jobs once the id registry outgrows its
  /// cap, so a long-lived server's status history stays bounded.
  void trim_jobs();

  ParseService& service_;
  HttpServerConfig config_;
  net::TcpListener listener_;
  net::EventLoop loop_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  /// Jobs submitted through this server, by id — what GET/DELETE
  /// /v1/jobs/{id} resolves against. Ordered so trim_jobs evicts oldest
  /// first. Loop thread only.
  std::map<std::uint64_t, JobHandle> jobs_;
  std::atomic<std::size_t> open_count_{0};
  std::atomic<bool> stopped_{false};

  // adaparse_http_* families, appended to GET /metrics after the
  // service's own exposition.
  obs::Registry registry_;
  obs::Counter& connections_total_;
  obs::Counter& connections_shed_;
  obs::Gauge& connections_open_;
  obs::Counter& bytes_received_;
  obs::Counter& bytes_sent_;
  obs::Counter& backpressure_pauses_;
  obs::Counter& disconnect_cancels_;
  obs::Quantile& request_latency_;

  std::thread thread_;  ///< last member: joins before anything else dies
};

}  // namespace adaparse::serve::http
