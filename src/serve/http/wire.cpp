#include "serve/http/wire.hpp"

namespace adaparse::serve::http {

util::Json error_envelope(const std::string& code,
                          const std::string& message) {
  util::JsonObject inner;
  inner["code"] = code;
  inner["message"] = message;
  util::JsonObject out;
  out["error"] = util::Json(std::move(inner));
  return util::Json(std::move(out));
}

util::Json job_status_json(std::uint64_t id, const std::string& tenant,
                           const JobProgress& progress,
                           const std::string& error) {
  util::JsonObject out;
  out["id"] = static_cast<std::int64_t>(id);
  out["tenant"] = tenant;
  out["state"] = job_state_name(progress.state);
  out["docs_completed"] = progress.docs_completed;
  out["docs_total_hint"] = progress.docs_total_hint;
  out["queue_wait_seconds"] = progress.queue_wait_seconds;
  out["latency_seconds"] = progress.latency_seconds;
  out["error"] = error;
  return util::Json(std::move(out));
}

util::Json stream_created_line(std::uint64_t id, const std::string& tenant,
                               std::size_t docs_total_hint) {
  util::JsonObject job;
  job["id"] = static_cast<std::int64_t>(id);
  job["tenant"] = tenant;
  job["docs_total_hint"] = docs_total_hint;
  util::JsonObject out;
  out["job"] = util::Json(std::move(job));
  return util::Json(std::move(out));
}

util::Json stream_record_line(const JobRecord& record) {
  util::JsonObject out;
  out["index"] = record.index;
  out["record"] = record.record.to_json();
  return util::Json(std::move(out));
}

util::Json stream_done_line(JobState state, std::size_t docs_completed,
                            const std::string& error) {
  util::JsonObject done;
  done["state"] = job_state_name(state);
  done["docs_completed"] = docs_completed;
  done["error"] = error;
  util::JsonObject out;
  out["done"] = util::Json(std::move(done));
  return util::Json(std::move(out));
}

RejectStatus classify_reject(const std::string& reason) {
  if (reason.rfind("admission:", 0) == 0) {
    return {429, "over_capacity"};
  }
  if (reason == "service shutdown") {
    return {503, "shutting_down"};
  }
  return {400, "invalid_request"};
}

}  // namespace adaparse::serve::http
